#!/usr/bin/env python
"""Persisting, reloading, and visually inspecting a trained tangle.

Runs a short specializing-DAG session, saves the full DAG (structure +
every model's weights) to one ``.npz``, reloads it, and produces the
analysis artifacts an operator would want: shape statistics, the derived
client graph with Louvain communities, and a Graphviz rendering colored
by data cluster (the paper's Figure 4, from real data).

Run:  python examples/tangle_forensics.py
"""

from pathlib import Path

from repro.dag import load_tangle, save_tangle, tangle_statistics, to_dot
from repro.data import make_fmnist_clustered
from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.metrics import analyze_specialization
from repro.nn import zoo

OUT_DIR = Path("results/forensics")


def main() -> None:
    dataset = make_fmnist_clustered(num_clients=9, samples_per_client=40, seed=7)
    sim = TangleLearning(
        dataset,
        lambda rng: zoo.build_fmnist_cnn(rng, image_size=14, size="small"),
        TrainingConfig(local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.1),
        DagConfig(alpha=10.0),
        clients_per_round=6,
        seed=0,
    )
    sim.run(10)

    saved = save_tangle(sim.tangle, OUT_DIR / "session")
    print(f"saved tangle ({len(sim.tangle)} transactions) -> {saved}")

    tangle = load_tangle(saved)
    stats = tangle_statistics(tangle)
    print("\nDAG statistics:")
    for key, value in stats.items():
        print(f"  {key:>18}: {value}")

    report = analyze_specialization(tangle, dataset.cluster_labels(), seed=0)
    print("\ncommunities recovered from the reloaded DAG:")
    for community in sorted(set(report.partition.values())):
        members = sorted(c for c, p in report.partition.items() if p == community)
        truths = {dataset.cluster_labels()[m] for m in members}
        print(f"  community {community}: clients {members} "
              f"(true clusters: {sorted(truths)})")

    dot_path = OUT_DIR / "tangle.dot"
    dot_path.write_text(to_dot(tangle, cluster_labels=dataset.cluster_labels()))
    print(f"\nGraphviz rendering -> {dot_path}")
    print("  (render with: dot -Tsvg results/forensics/tangle.dot -o tangle.svg)")

    # Models from the DAG are immediately usable after reload — and they
    # are *specialized*: a tip issued by a same-cluster client serves
    # client 0 far better than a foreign cluster's tip.
    labels = dataset.cluster_labels()
    client = dataset.clients[0]
    print(f"\nreloaded tip models evaluated on client 0 (cluster {labels[0]}):")
    for tip in tangle.tips():
        issuer = tangle.get(tip).issuer
        sim.model.set_weights(tangle.get(tip).model_weights)
        _, accuracy = sim.model.evaluate(client.x_test, client.y_test)
        marker = "<-- same cluster" if labels[issuer] == labels[0] else ""
        print(f"  {tip:>10} (issuer cluster {labels[issuer]}): "
              f"{accuracy:.2f} {marker}")


if __name__ == "__main__":
    main()
