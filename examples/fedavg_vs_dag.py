#!/usr/bin/env python
"""FedAvg vs FedProx vs the Specializing DAG on heterogeneous clients.

Uses the FedProx synthetic(0.5, 0.5) dataset — every client has its own
softmax-regression optimum, the classic stress test for federated
averaging.  Reproduces the Figures 10/11 comparison: the decentralized
DAG matches or beats the centralized baselines without any server.

Run:  python examples/fedavg_vs_dag.py
"""

import numpy as np

from repro.data import make_fedprox_synthetic
from repro.fl import (
    DagConfig,
    FedAvgServer,
    FedProxServer,
    TangleLearning,
    TrainingConfig,
)
from repro.nn import zoo

ROUNDS = 15


def main() -> None:
    dataset = make_fedprox_synthetic(
        alpha=0.5, beta=0.5, num_clients=15, mean_samples=40, seed=0
    )
    builder = lambda rng: zoo.build_logistic_regression(rng)
    config = TrainingConfig(
        local_epochs=1, local_batches=10, batch_size=10, learning_rate=0.05
    )

    fedavg = FedAvgServer(dataset, builder, config, clients_per_round=8, seed=0)
    fedprox = FedProxServer(
        dataset, builder, config, clients_per_round=8, seed=0, mu=0.5
    )
    dag = TangleLearning(
        dataset, builder, config, DagConfig(alpha=10.0),
        clients_per_round=8, seed=0,
    )

    print(f"{'round':>5} | {'FedAvg':>14} | {'FedProx':>14} | {'DAG':>14}")
    print(f"{'':>5} | {'acc':>6} {'loss':>7} | {'acc':>6} {'loss':>7} | {'acc':>6} {'loss':>7}")
    for round_index in range(ROUNDS):
        ra = fedavg.run_round()
        rp = fedprox.run_round()
        rd = dag.run_round()
        if round_index % 3 == 0 or round_index == ROUNDS - 1:
            print(
                f"{round_index:>5} | {ra.mean_accuracy:>6.3f} {ra.mean_loss:>7.3f} "
                f"| {rp.mean_accuracy:>6.3f} {rp.mean_loss:>7.3f} "
                f"| {rd.mean_accuracy:>6.3f} {rd.mean_loss:>7.3f}"
            )

    def late(history, attr):
        return float(np.mean([getattr(r, attr) for r in history[-5:]]))

    print("\nlast-5-round averages:")
    for name, algo in (("FedAvg", fedavg), ("FedProx", fedprox), ("DAG", dag)):
        print(
            f"  {name:<8} accuracy {late(algo.history, 'mean_accuracy'):.3f}  "
            f"loss {late(algo.history, 'mean_loss'):.3f}  "
            f"client spread {late(algo.history, 'accuracy_std'):.3f}"
        )
    print(
        "\nThe DAG serves every client a model adapted to its own data, so\n"
        "its mean accuracy beats the single global model — the paper's\n"
        "Figures 10 and 11."
    )


if __name__ == "__main__":
    main()
