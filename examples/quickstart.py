#!/usr/bin/env python
"""Quickstart: decentralized federated learning on a DAG in ~30 lines.

Nine clients hold handwritten digits from three disjoint class clusters
({0-3}, {4-6}, {7-9}).  Each round, active clients walk the tangle with
the accuracy-biased random walk, average the two selected tip models,
train locally, and publish.  Watch the accuracy rise and — without any
clustering code in the protocol — the approval graph organize into the
three data clusters.

Run:  python examples/quickstart.py
"""

from repro.data import make_fmnist_clustered
from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.metrics import analyze_specialization
from repro.nn import zoo


def main() -> None:
    dataset = make_fmnist_clustered(num_clients=9, samples_per_client=40, seed=7)
    print(f"dataset: {dataset.summary()}")

    sim = TangleLearning(
        dataset,
        model_builder=lambda rng: zoo.build_fmnist_cnn(rng, image_size=14, size="small"),
        train_config=TrainingConfig(
            local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.1
        ),
        dag_config=DagConfig(alpha=10.0),
        clients_per_round=6,
        seed=0,
    )

    print(f"{'round':>5} {'accuracy':>9} {'reference':>10} {'published':>10} {'tangle':>7}")
    for _ in range(12):
        record = sim.run_round()
        reference = sum(record.reference_accuracy.values()) / len(
            record.reference_accuracy
        )
        print(
            f"{record.round_index:>5} {record.mean_accuracy:>9.3f} "
            f"{reference:>10.3f} {len(record.published):>10} {len(sim.tangle):>7}"
        )

    report = analyze_specialization(sim.tangle, dataset.cluster_labels(), seed=0)
    print("\nimplicit specialization (no clustering ran inside the protocol):")
    print(f"  approval pureness : {report.pureness:.2f} (random base {report.base_pureness:.2f})")
    print(f"  modularity        : {report.modularity:.2f}")
    print(f"  inferred clusters : {report.num_partitions}")
    print(f"  misclassification : {report.misclassification:.2f}")
    print(f"  client -> cluster : {report.partition}")


if __name__ == "__main__":
    main()
