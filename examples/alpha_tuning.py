#!/usr/bin/env python
"""Tuning the specialization parameter alpha (the Figure 5 workflow).

alpha controls the randomness of the biased walk: low alpha generalizes
(approvals cross clusters), high alpha specializes (approvals stay inside
clusters, possibly fragmenting).  This example sweeps alpha and prints
the three diagnostics the paper uses to pick it: modularity of the
derived client graph, number of Louvain partitions, and the
misclassification fraction against the known data clusters.

Run:  python examples/alpha_tuning.py
"""

from repro.data import make_fmnist_clustered
from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.metrics import analyze_specialization
from repro.nn import zoo

ALPHAS = (0.1, 1.0, 10.0, 100.0)
ROUNDS = 12


def main() -> None:
    dataset = make_fmnist_clustered(num_clients=12, samples_per_client=40, seed=3)
    labels = dataset.cluster_labels()
    builder = lambda rng: zoo.build_fmnist_cnn(rng, image_size=14, size="small")
    config = TrainingConfig(
        local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.1
    )

    print(f"{'alpha':>7} {'accuracy':>9} {'pureness':>9} {'modularity':>11} "
          f"{'partitions':>11} {'misclass':>9}")
    for alpha in ALPHAS:
        sim = TangleLearning(
            dataset, builder, config, DagConfig(alpha=alpha),
            clients_per_round=6, seed=0,
        )
        records = sim.run(ROUNDS)
        report = analyze_specialization(sim.tangle, labels, seed=0)
        print(
            f"{alpha:>7} {records[-1].mean_accuracy:>9.3f} {report.pureness:>9.3f} "
            f"{report.modularity:>11.3f} {report.num_partitions:>11} "
            f"{report.misclassification:>9.3f}"
        )

    print(
        "\nreading the table (paper, Section 5.3.1): pick the alpha whose run\n"
        "shows rising modularity, a partition count near the true cluster\n"
        "count (3 here), and misclassification near zero.  Too-low alpha\n"
        "degrades modularity; too-high alpha over-fragments the network."
    )


if __name__ == "__main__":
    main()
