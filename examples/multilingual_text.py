#!/usr/bin/env python
"""Implicit specialization on multilingual next-character prediction.

The Poets scenario: half the clients type English (Shakespeare-style),
half German (Goethe-style).  A single global model must compromise
between the two languages; the specializing DAG lets each language
community evolve its own model lineage — without anyone telling the
protocol which client speaks which language.

Run:  python examples/multilingual_text.py
"""

import numpy as np

from repro.data import make_poets
from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.metrics import approval_pureness
from repro.nn import zoo

ROUNDS = 14


def main() -> None:
    dataset = make_poets(num_clients=6, samples_per_client=300, seq_len=8, seed=0)
    print(f"dataset: {dataset.summary()} (vocabulary: {dataset.num_classes} chars)")

    sim = TangleLearning(
        dataset,
        lambda rng: zoo.build_poets_lstm(rng, vocab_size=dataset.num_classes, size="small"),
        TrainingConfig(
            local_epochs=1, local_batches=20, batch_size=10,
            learning_rate=0.5, momentum=0.9,
        ),
        # Dynamic normalization (Eq. 3): language-accuracy gaps between
        # small LSTMs are tiny, exactly the regime normalized* handles.
        DagConfig(alpha=10.0, normalization="dynamic"),
        clients_per_round=6,
        seed=0,
    )
    for _ in range(ROUNDS):
        record = sim.run_round()
        if record.round_index % 4 == 0:
            print(f"round {record.round_index}: accuracy {record.mean_accuracy:.3f}")

    labels = dataset.cluster_labels()
    pureness = approval_pureness(sim.tangle, labels)
    late_pureness = approval_pureness(sim.tangle, labels, since_round=ROUNDS // 2)
    print(f"\napproval pureness (whole run) : {pureness:.2f}  (random base 0.50)")
    print(f"approval pureness (late half) : {late_pureness:.2f}")

    # Cross-evaluate late published models on both languages.
    english = [c for c in dataset.clients if c.cluster_id == 0]
    german = [c for c in dataset.clients if c.cluster_id == 1]
    print("\nlate transactions, evaluated on each language:")
    print(f"{'tx':>12} {'issuer lang':>12} {'acc (en)':>9} {'acc (de)':>9}")
    for tx in sim.tangle.transactions():
        if tx.is_genesis or tx.round_index < ROUNDS - 2:
            continue
        acc_en = float(np.mean([
            sim.clients[c.client_id].accuracy_of_weights(tx.model_weights)
            for c in english
        ]))
        acc_de = float(np.mean([
            sim.clients[c.client_id].accuracy_of_weights(tx.model_weights)
            for c in german
        ]))
        lang = "english" if labels[tx.issuer] == 0 else "german"
        print(f"{tx.tx_id:>12} {lang:>12} {acc_en:>9.3f} {acc_de:>9.3f}")
    print(
        "\nModels published by English clients score higher on English test\n"
        "data and vice versa: the lineages have specialized by language."
    )


if __name__ == "__main__":
    main()
