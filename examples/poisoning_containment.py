#!/usr/bin/env python
"""Label-flip poisoning and why the accuracy walk contains it.

Scenario (paper Section 5.3.4): after a clean training phase, 25 % of the
writers get their labels 3 and 8 swapped — e.g. by forged sensing
hardware.  The poisoned clients keep participating honestly.  We compare
the accuracy-biased tip selector against the uniform-random baseline and
measure how many {3, 8} test samples the clients' selected reference
models mispredict as the other class.

Run:  python examples/poisoning_containment.py
"""

import numpy as np

from repro.data import make_fmnist_by_writer
from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.poisoning import (
    count_approved_poisoned,
    network_flipped_prediction_rate,
    poison_dataset_label_flip,
)
from repro.nn import zoo

CLEAN_ROUNDS = 8
ATTACK_ROUNDS = 8
POISONED_FRACTION = 0.25


def run(selector: str) -> None:
    dataset = make_fmnist_by_writer(num_clients=8, samples_per_client=40, seed=5)
    sim = TangleLearning(
        dataset,
        lambda rng: zoo.build_fmnist_cnn(rng, image_size=14, size="small"),
        TrainingConfig(local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.1),
        DagConfig(alpha=10.0, selector=selector),
        clients_per_round=5,
        seed=0,
    )
    sim.run(CLEAN_ROUNDS)

    poisoned_ds, poisoned_ids = poison_dataset_label_flip(
        dataset, class_a=3, class_b=8, poisoned_fraction=POISONED_FRACTION, seed=1
    )
    for client_data in poisoned_ds.clients:
        sim.clients[client_data.client_id].data = client_data
        sim.clients[client_data.client_id].reset_cache()

    print(f"\nselector = {selector!r}; poisoned clients: {sorted(poisoned_ids)}")
    print(f"{'round':>5} {'flipped %':>10} {'approved poisoned':>18}")
    for _ in range(ATTACK_ROUNDS):
        sim.run_round()
        reference_weights = {}
        approved = []
        for client_id in sorted(sim.clients):
            tip = sim.reference_tip(client_id)
            reference_weights[client_id] = sim.tangle.get(tip).model_weights
            approved.append(count_approved_poisoned(sim.tangle, tip, poisoned_ids))
        flipped = network_flipped_prediction_rate(
            sim.model,
            reference_weights,
            {cid: c.data for cid, c in sim.clients.items()},
        )
        print(
            f"{sim.round_index - 1:>5} {100 * flipped:>9.1f}% "
            f"{np.mean(approved):>18.1f}"
        )


def main() -> None:
    print(
        "The accuracy-biased walk does not *exclude* poisoned transactions —\n"
        "it contains them inside the attackers' own cluster, so benign\n"
        "clients' reference models stay clean.  The random selector spreads\n"
        "them across everyone's consensus instead."
    )
    run("accuracy")
    run("random")


if __name__ == "__main__":
    main()
