#!/usr/bin/env python
"""The DAG protocol in continuous time — no rounds at all.

The paper simulates discrete rounds only to compare against centralized
baselines; the protocol itself is asynchronous.  This example runs the
event-driven simulator: clients train whenever their (randomized)
schedule allows, transactions propagate with network delay, and
concurrent publications widen the DAG exactly as the tangle design
anticipates.

Run:  python examples/asynchronous_network.py
"""

from collections import Counter

from repro.data import make_fmnist_clustered
from repro.dag import tangle_statistics
from repro.fl import AsyncTangleLearning, DagConfig, TrainingConfig
from repro.metrics import analyze_specialization
from repro.nn import zoo


def main() -> None:
    dataset = make_fmnist_clustered(num_clients=9, samples_per_client=40, seed=7)
    sim = AsyncTangleLearning(
        dataset,
        lambda rng: zoo.build_fmnist_cnn(rng, image_size=14, size="small"),
        TrainingConfig(local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.1),
        DagConfig(alpha=10.0),
        seed=0,
        mean_think_time=1.0,        # avg idle between training cycles
        mean_train_time=1.0,        # avg cycle duration (clients overlap!)
        mean_propagation_delay=0.3, # network delay before a tx is seen
    )

    events = sim.run_until(30.0)
    published = [e for e in events if e.published]
    print(f"simulated 30.0 time units: {len(events)} training cycles, "
          f"{len(published)} publications")

    print("\naccuracy over simulated time:")
    for t, accuracy in sim.accuracy_timeline(bucket=5.0):
        bar = "#" * int(accuracy * 40)
        print(f"  t={t:5.1f}  {accuracy:.3f}  {bar}")

    cycles_per_client = Counter(e.client_id for e in events)
    print(f"\ncycles per client (asynchronous, so they differ): "
          f"{dict(sorted(cycles_per_client.items()))}")

    stats = tangle_statistics(sim.tangle)
    print(f"\nDAG shape: {stats['transactions']} transactions, "
          f"{stats['tips']} open tips, max {stats['max_approvers']} approvers "
          f"on one transaction (concurrency!)")

    report = analyze_specialization(sim.tangle, dataset.cluster_labels(), seed=0)
    print(f"specialization without rounds: pureness {report.pureness:.2f} "
          f"(base {report.base_pureness:.2f}), "
          f"{report.num_partitions} inferred clusters, "
          f"misclassification {report.misclassification:.2f}")


if __name__ == "__main__":
    main()
