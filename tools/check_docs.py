#!/usr/bin/env python
"""Docs-consistency guard for CI.

Two checks, both cheap and dependency-free:

1. **Dead relative links.** Every markdown link in ``README.md`` and
   ``docs/*.md`` whose target is a relative path must resolve to a file
   in the repository (fragments are stripped; absolute URLs and
   ``mailto:`` are skipped).  A docs split or file rename that leaves a
   dangling ``[page](old.md)`` fails here instead of 404ing for the
   next reader.
2. **Tier-1 command consistency.** The test command CI actually runs
   (the ``Run tier-1 suite`` step in ``.github/workflows/ci.yml``) must
   be the same command README and ROADMAP tell a human to run.  Doc
   drift on the one command everyone copy-pastes is the most expensive
   kind.

Usage::

    python tools/check_docs.py

Exits 1 with one line per violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# [text](target) — but not images' alt brackets differently, and not
# footnote-style links; good enough for this repo's plain markdown.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

TIER1 = "python -m pytest -x -q"


def iter_doc_files():
    yield ROOT / "README.md"
    yield from sorted((ROOT / "docs").glob("*.md"))


def check_links() -> list[str]:
    failures = []
    for doc in iter_doc_files():
        text = doc.read_text()
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                failures.append(
                    f"{doc.relative_to(ROOT)}: dead link -> {target}"
                )
    return failures


def check_tier1_command() -> list[str]:
    failures = []
    workflow = ROOT / ".github" / "workflows" / "ci.yml"
    if TIER1 not in workflow.read_text():
        failures.append(
            f"{workflow.relative_to(ROOT)}: tier-1 step no longer runs "
            f"`{TIER1}` — update TIER1 in tools/check_docs.py and the "
            "docs together"
        )
    for doc in (ROOT / "README.md", ROOT / "ROADMAP.md"):
        if TIER1 not in doc.read_text():
            failures.append(
                f"{doc.relative_to(ROOT)}: does not quote the tier-1 "
                f"command `{TIER1}` that CI runs"
            )
    return failures


def main() -> int:
    failures = check_links() + check_tier1_command()
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} docs-consistency violation(s)", file=sys.stderr)
        return 1
    docs = list(iter_doc_files())
    print(f"docs ok: {len(docs)} files, links resolve, tier-1 command consistent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
