"""repro — Implicit Model Specialization through DAG-based Decentralized
Federated Learning (Middleware '21 reproduction).

Public API tour:

- :mod:`repro.nn` — from-scratch numpy deep-learning substrate;
- :mod:`repro.data` — the paper's datasets (offline procedural stand-ins);
- :mod:`repro.dag` — the tangle: transactions, tips, biased random walks;
- :mod:`repro.fl` — :class:`~repro.fl.TangleLearning` (the specializing
  DAG) plus FedAvg / FedProx / gossip baselines;
- :mod:`repro.substrate` — the round-execution layer: serial or
  process-pool executors over per-client work units (the
  ``DagConfig.parallelism`` knob);
- :mod:`repro.sim` — the event-driven simulator: latency models,
  stragglers, churn, staleness policies, quantum-batched supersteps;
- :mod:`repro.metrics` — modularity, Louvain, pureness, misclassification;
- :mod:`repro.poisoning` — label-flip attacks and robustness metrics;
- :mod:`repro.experiments` — one runner per table/figure of the paper.

``docs/architecture.md`` maps these layers and walks one simulated round
through the execution substrate.

Quickstart::

    from repro.data import make_fmnist_clustered
    from repro.fl import TangleLearning, DagConfig, TrainingConfig
    from repro.nn import zoo

    dataset = make_fmnist_clustered(num_clients=9, samples_per_client=40)
    sim = TangleLearning(
        dataset,
        lambda rng: zoo.build_fmnist_cnn(rng, image_size=14, size="small"),
        TrainingConfig(local_batches=4, learning_rate=0.1),
        DagConfig(alpha=10.0),
        clients_per_round=6,
    )
    records = sim.run(10)
"""

from repro import (
    dag,
    data,
    experiments,
    fl,
    metrics,
    nn,
    poisoning,
    sim,
    substrate,
    utils,
)

__version__ = "1.1.0"

__all__ = [
    "dag",
    "data",
    "experiments",
    "fl",
    "metrics",
    "nn",
    "poisoning",
    "sim",
    "substrate",
    "utils",
    "__version__",
]
