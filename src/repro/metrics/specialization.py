"""One-call specialization analysis used by the experiments.

Bundles the Section 4.3 pipeline: build ``G_clients``, run Louvain,
compute modularity, partition count, misclassification fraction, and
approval pureness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.tangle import Tangle
from repro.metrics.clients_graph import build_clients_graph
from repro.metrics.misclassification import misclassification_fraction
from repro.metrics.modularity import louvain_communities, modularity
from repro.metrics.pureness import approval_pureness, expected_random_pureness

__all__ = ["SpecializationReport", "analyze_specialization"]


@dataclass(frozen=True)
class SpecializationReport:
    """Snapshot of the implicit-specialization metrics for one tangle."""

    modularity: float
    num_partitions: int
    misclassification: float
    pureness: float
    base_pureness: float
    partition: dict[int, int]


def analyze_specialization(
    tangle: Tangle,
    cluster_labels: dict[int, int],
    *,
    seed: int | np.random.Generator = 0,
) -> SpecializationReport:
    """Compute the full Section 4.3 metric suite for a tangle.

    ``cluster_labels`` maps client id -> ground-truth cluster; all clients
    in the map are included in ``G_clients`` even if they never published.
    """
    graph = build_clients_graph(tangle, include_clients=sorted(cluster_labels))
    partition = louvain_communities(graph, seed=seed)
    return SpecializationReport(
        modularity=modularity(graph, partition),
        num_partitions=len(set(partition.values())),
        misclassification=misclassification_fraction(partition, cluster_labels),
        pureness=approval_pureness(tangle, cluster_labels),
        base_pureness=expected_random_pureness(cluster_labels),
        partition=partition,
    )
