"""The derived graph of clients (Section 4.3).

``G_clients``: the edge weight between clients a and b is the number of
transactions published by a that directly approve a transaction of b, or
vice versa.  Genesis approvals and self-approvals carry no information
about inter-client affinity and are excluded.
"""

from __future__ import annotations

from repro.dag.tangle import Tangle
from repro.metrics.graph import WeightedGraph

__all__ = ["build_clients_graph"]


def build_clients_graph(
    tangle: Tangle, *, include_clients: list[int] | None = None
) -> WeightedGraph:
    """Build ``G_clients`` from the approval edges of a tangle.

    ``include_clients`` pre-registers nodes so that clients that never
    published still appear (with degree zero) — community metrics expect a
    fixed, known client set.
    """
    graph = WeightedGraph()
    if include_clients is not None:
        for client_id in include_clients:
            graph.add_node(client_id)
    for approving, approved in tangle.approval_edges():
        if approving.issuer < 0 or approved.issuer < 0:
            continue
        if approving.issuer == approved.issuer:
            continue
        graph.add_edge(approving.issuer, approved.issuer, 1.0)
    return graph
