"""Metrics for quantifying implicit specialization (Section 4.3).

The network's communities are not explicit in the DAG; they are derived:
``G_clients`` weights client pairs by mutual approvals, Louvain finds its
communities, and modularity / misclassification fraction / approval
pureness quantify how well those communities match the data clusters.
"""

from repro.metrics.graph import WeightedGraph
from repro.metrics.clients_graph import build_clients_graph
from repro.metrics.modularity import louvain_communities, modularity
from repro.metrics.pureness import approval_pureness, expected_random_pureness
from repro.metrics.misclassification import misclassification_fraction
from repro.metrics.specialization import SpecializationReport, analyze_specialization

__all__ = [
    "WeightedGraph",
    "build_clients_graph",
    "louvain_communities",
    "modularity",
    "approval_pureness",
    "expected_random_pureness",
    "misclassification_fraction",
    "SpecializationReport",
    "analyze_specialization",
]
