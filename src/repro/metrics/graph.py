"""A minimal undirected weighted graph.

Deliberately tiny — just what modularity and Louvain need.  The
test-suite cross-checks results against networkx, but the library itself
does not depend on it.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["WeightedGraph"]

Node = Hashable


class WeightedGraph:
    """Undirected graph with accumulating edge weights and self-loops."""

    def __init__(self) -> None:
        self._adjacency: dict[Node, dict[Node, float]] = {}

    # ------------------------------------------------------------ mutation
    def add_node(self, node: Node) -> None:
        self._adjacency.setdefault(node, {})

    def add_edge(self, a: Node, b: Node, weight: float = 1.0) -> None:
        """Add ``weight`` to the edge (a, b), creating nodes as needed."""
        if weight < 0:
            raise ValueError("edge weights must be non-negative")
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a][b] = self._adjacency[a].get(b, 0.0) + weight
        if a != b:
            self._adjacency[b][a] = self._adjacency[b].get(a, 0.0) + weight

    # ------------------------------------------------------------- queries
    def nodes(self) -> list[Node]:
        return list(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def neighbors(self, node: Node) -> dict[Node, float]:
        """Neighbor -> edge weight (includes the node itself for loops)."""
        return dict(self._adjacency[node])

    def edge_weight(self, a: Node, b: Node) -> float:
        return self._adjacency.get(a, {}).get(b, 0.0)

    def edges(self) -> Iterable[tuple[Node, Node, float]]:
        """Each undirected edge once (self-loops included once)."""
        seen: set[tuple[Node, Node]] = set()
        for a, nbrs in self._adjacency.items():
            for b, weight in nbrs.items():
                key = (a, b) if repr(a) <= repr(b) else (b, a)
                if key in seen:
                    continue
                seen.add(key)
                yield a, b, weight

    def degree(self, node: Node) -> float:
        """Weighted degree; self-loops count twice (standard convention)."""
        nbrs = self._adjacency[node]
        return sum(nbrs.values()) + nbrs.get(node, 0.0)

    def total_edge_weight(self) -> float:
        """Sum of edge weights over undirected edges (self-loops once)."""
        return sum(weight for _a, _b, weight in self.edges())

    def subgraph_weight_within(self, members: set[Node]) -> float:
        """Total weight of edges with both endpoints in ``members``."""
        return sum(
            weight
            for a, b, weight in self.edges()
            if a in members and b in members
        )
