"""Approval pureness (Section 5.3.1 / Table 2).

Pureness is the fraction of approval edges in the DAG that stay within a
data cluster: a transaction published by a client of cluster X approving a
transaction published by another client of cluster X.  The paper reports
the base pureness "expected if the approvals would be randomly spread over
all clusters", which for k equal clusters is 1/k.
"""

from __future__ import annotations

import numpy as np

from repro.dag.tangle import Tangle

__all__ = ["approval_pureness", "expected_random_pureness"]


def approval_pureness(
    tangle: Tangle, cluster_labels: dict[int, int], *, since_round: int = 0
) -> float:
    """Fraction of approval edges that connect same-cluster issuers.

    Genesis approvals are excluded (the genesis has no cluster).  Returns
    NaN when the tangle holds no inter-transaction approvals yet.

    ``since_round`` restricts the count to approvals *published* from that
    round on.  The early rounds of any run are necessarily unspecialized
    (all models descend from genesis and are indistinguishable), which
    matters for short runs: the paper's 100-round measurements amortize
    that warm-up, a 12-round smoke run does not.
    """
    total = 0
    pure = 0
    for approving, approved in tangle.approval_edges():
        if approving.issuer < 0 or approved.issuer < 0:
            continue
        if approving.round_index < since_round:
            continue
        if approving.issuer not in cluster_labels:
            raise KeyError(f"no cluster label for client {approving.issuer}")
        if approved.issuer not in cluster_labels:
            raise KeyError(f"no cluster label for client {approved.issuer}")
        total += 1
        if cluster_labels[approving.issuer] == cluster_labels[approved.issuer]:
            pure += 1
    if total == 0:
        return float("nan")
    return pure / total


def expected_random_pureness(cluster_labels: dict[int, int]) -> float:
    """Base pureness under uniformly random approvals.

    Probability that two independently drawn clients share a cluster:
    ``sum_c p_c^2``.  For k equal clusters this is 1/k — matching the
    paper's base pureness of 0.33 / 0.5 / 0.05 for 3 / 2 / 20 clusters.
    """
    if not cluster_labels:
        raise ValueError("cluster_labels must not be empty")
    labels = np.array(list(cluster_labels.values()))
    _, counts = np.unique(labels, return_counts=True)
    shares = counts / counts.sum()
    return float(np.sum(shares**2))
