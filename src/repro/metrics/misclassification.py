"""Misclassification fraction (Section 4.3).

Given an inferred partition of clients (from Louvain on ``G_clients``)
and the ground-truth cluster labels, a client is *misclassified* when it
"ends up in a cluster where the relative majority of clients belongs to a
different cluster according to the input labels".
"""

from __future__ import annotations

from collections import Counter

__all__ = ["misclassification_fraction"]


def misclassification_fraction(
    inferred: dict[int, int], truth: dict[int, int]
) -> float:
    """Fraction of clients outside their inferred community's majority.

    Ties for the majority are resolved generously: a client whose true
    label is *any* of the tied majority labels counts as correctly
    classified.
    """
    if not inferred:
        raise ValueError("inferred partition must not be empty")
    for client in inferred:
        if client not in truth:
            raise KeyError(f"no ground-truth cluster for client {client}")

    members_by_community: dict[int, list[int]] = {}
    for client, community in inferred.items():
        members_by_community.setdefault(community, []).append(client)

    misclassified = 0
    for members in members_by_community.values():
        counts = Counter(truth[m] for m in members)
        top_count = counts.most_common(1)[0][1]
        majority_labels = {label for label, c in counts.items() if c == top_count}
        misclassified += sum(1 for m in members if truth[m] not in majority_labels)
    return misclassified / len(inferred)
