"""Modularity (Newman) and Louvain community detection (Blondel et al.).

Implemented from scratch on :class:`~repro.metrics.graph.WeightedGraph`;
the test-suite validates both against networkx on random graphs.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.metrics.graph import WeightedGraph
from repro.utils.rng import ensure_rng

__all__ = ["modularity", "louvain_communities"]

Node = Hashable
Partition = dict[Node, int]


def modularity(graph: WeightedGraph, partition: Partition) -> float:
    """Newman modularity of a partition, in [-1/2, 1].

    ``m = sum_c (w_in_c / W - (deg_c / 2W)^2)`` where ``w_in_c`` counts
    intra-community edge weight, ``deg_c`` the community's total weighted
    degree, and ``W`` the graph's total edge weight.
    """
    for node in graph.nodes():
        if node not in partition:
            raise ValueError(f"partition is missing node {node!r}")
    total = graph.total_edge_weight()
    if total <= 0:
        return 0.0
    communities: dict[int, set[Node]] = {}
    for node, community in partition.items():
        if node in graph:
            communities.setdefault(community, set()).add(node)
    score = 0.0
    for members in communities.values():
        w_in = graph.subgraph_weight_within(members)
        degree = sum(graph.degree(n) for n in members)
        score += w_in / total - (degree / (2.0 * total)) ** 2
    return score


def louvain_communities(
    graph: WeightedGraph,
    *,
    seed: int | np.random.Generator = 0,
    resolution: float = 1.0,
    max_levels: int = 32,
) -> Partition:
    """Louvain heuristic for high-modularity partitions.

    Returns node -> community id (ids compact, starting at 0).  Isolated
    nodes each form their own community.  The algorithm alternates local
    moving and graph aggregation until modularity stops improving.
    """
    rng = ensure_rng(seed)
    nodes = graph.nodes()
    if not nodes:
        return {}

    # Track, per original node, which node of the current (aggregated)
    # graph it belongs to; starts as the identity on the input graph.
    current = graph
    membership: dict[Node, Node] = {n: n for n in nodes}

    for _level in range(max_levels):
        moved, local_partition = _one_level(current, rng, resolution)
        # Map original nodes through this level's community assignment.
        membership = {node: local_partition[membership[node]] for node in nodes}
        if not moved:
            break
        current = _aggregate(current, local_partition)

    # Compact community ids.
    relabel: dict[int, int] = {}
    compacted: Partition = {}
    for node in nodes:
        community = membership[node]
        if community not in relabel:
            relabel[community] = len(relabel)
        compacted[node] = relabel[community]
    return compacted


def _one_level(
    graph: WeightedGraph, rng: np.random.Generator, resolution: float
) -> tuple[bool, dict[Node, int]]:
    """Local-moving phase; returns (any_move_happened, node -> community)."""
    nodes = graph.nodes()
    community: dict[Node, int] = {n: i for i, n in enumerate(nodes)}
    two_w = 2.0 * graph.total_edge_weight()
    if two_w <= 0:
        return False, community
    degree = {n: graph.degree(n) for n in nodes}
    community_degree: dict[int, float] = {community[n]: degree[n] for n in nodes}
    loops = {n: graph.edge_weight(n, n) for n in nodes}

    any_moved = False
    improved = True
    while improved:
        improved = False
        order = list(nodes)
        rng.shuffle(order)
        for node in order:
            node_community = community[node]
            # Weight from node to each neighboring community (loops excluded).
            link_weights: dict[int, float] = {}
            for neighbor, weight in graph.neighbors(node).items():
                if neighbor == node:
                    continue
                link_weights.setdefault(community[neighbor], 0.0)
                link_weights[community[neighbor]] += weight
            community_degree[node_community] -= degree[node]
            base_links = link_weights.get(node_community, 0.0)

            best_community = node_community
            best_gain = 0.0
            total_w = two_w / 2.0
            for candidate, links in link_weights.items():
                if candidate == node_community:
                    continue
                # Standard Louvain move gain (difference of joining the
                # candidate vs rejoining the current community):
                #   (k_i,cand - k_i,cur)/W - res*k_i*(S_cand - S_cur)/(2W^2)
                gain = (links - base_links) / total_w - resolution * degree[
                    node
                ] * (
                    community_degree.get(candidate, 0.0)
                    - community_degree[node_community]
                ) / (
                    2.0 * total_w * total_w
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] = (
                community_degree.get(best_community, 0.0) + degree[node]
            )
            if best_community != node_community:
                community[node] = best_community
                improved = True
                any_moved = True
        _ = loops  # loops cancel in the move gain; kept for clarity
    return any_moved, community


def _aggregate(graph: WeightedGraph, partition: dict[Node, int]) -> WeightedGraph:
    """Phase 2: build the graph of communities (weights accumulate)."""
    aggregated = WeightedGraph()
    for comm in set(partition.values()):
        aggregated.add_node(comm)
    for a, b, weight in graph.edges():
        ca, cb = partition[a], partition[b]
        aggregated.add_edge(ca, cb, weight)
    return aggregated
