"""repro.service — tangle-as-a-service with a full resilience layer.

The gateway (:class:`TangleGateway`) exposes a live tangle as
``publish / tips / current-model / health / ready``, composed from:

- :class:`TipCoalescer` — concurrent tip requests batch into one
  lockstep superstep over the shared epoch snapshot (width, not locks);
- :class:`Deadline` budgets propagated into the walk engine and
  stage-sliced so fallbacks always have reserve;
- :class:`CircuitBreaker` + :class:`DegradationLadder` — accuracy →
  weighted → uniform, every fall labeled on the response;
- :class:`AdmissionGate` bounded admission with explicit shedding;
- :class:`ServiceChaos` — the simulator's :class:`FaultModel` injected
  at the service boundary;
- :class:`GatewayClient` — retry with capped backoff + jitter;
- :mod:`repro.service.http` — a stdlib HTTP front over the same object.

Every request resolves inside a closed taxonomy — ``ok`` (possibly
degraded), ``shed`` (retryable), ``rejected`` (invalid payload) — so
chaos can make the service *worse*, never *undefined*.  See
``docs/architecture.md`` ("The service layer") for the full tour.
"""

from repro.service.chaos import (
    InjectedCoalescerCrash,
    ServiceChaos,
    TransportDropped,
)
from repro.service.client import GatewayClient
from repro.service.coalescer import TipCoalescer, TipsOutcome
from repro.service.degradation import LADDER_MODES, DegradationLadder
from repro.service.gateway import GatewayConfig, ServiceResponse, TangleGateway
from repro.service.http import GatewayHTTPServer, serve_background
from repro.service.resilience import (
    AdmissionGate,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "Deadline",
    "DegradationLadder",
    "GatewayClient",
    "GatewayConfig",
    "GatewayHTTPServer",
    "InjectedCoalescerCrash",
    "LADDER_MODES",
    "RetryPolicy",
    "ServiceChaos",
    "ServiceResponse",
    "TangleGateway",
    "TipCoalescer",
    "TipsOutcome",
    "TransportDropped",
    "serve_background",
]
