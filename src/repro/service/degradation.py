"""Graceful degradation: the tip-selection quality ladder.

The gateway never answers a tip request with an error while the tangle
is servable — it answers with the *best selection mode the budget and
the walk engine's health allow*, and labels which one it used:

1. ``"accuracy"`` — the paper's accuracy-biased lockstep walk, scored
   by the request's scoring function.  The expensive, high-quality
   mode; it gets a :meth:`~repro.service.resilience.Deadline.sub` slice
   of the request budget and runs only while the circuit breaker around
   the scoring plane is closed (or admits a half-open probe).
2. ``"weighted"`` — the classic cumulative-weight walk over the same
   snapshot.  Near-free: the snapshot's weight array *is* a complete
   score memo, so no scoring round-trips happen at all.
3. ``"uniform"`` — a uniform draw over the snapshot's tips.  Never
   fails, costs one ``rng.integers`` block.

A fall *down* the ladder is recorded per response (``degraded=True``
plus the reason), never silent; the breaker is fed from the accuracy
stage's outcome, so repeated deadline trips or scoring crashes open it
and subsequent requests skip straight to step 2 without paying the
failed attempt first.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.dag.walk_engine import (
    TangleSnapshot,
    WalkDeadlineExceeded,
    batched_walk_starts,
    lockstep_walks,
)
from repro.service.resilience import CircuitBreaker, Deadline

__all__ = ["DegradationLadder", "LADDER_MODES"]

#: Quality-ordered selection modes (best first).
LADDER_MODES = ("accuracy", "weighted", "uniform")


class DegradationLadder:
    """Run one coalesced batch of walk particles at the best mode the
    budget and breaker allow (see module docstring).

    ``stats`` counts per-mode selections, degradations, deadline trips,
    and scoring failures; the tally is cheap and thread-safe (the
    coalescer calls :meth:`select` from its single worker thread, but
    health probes read the stats concurrently).
    """

    def __init__(
        self,
        *,
        alpha: float = 10.0,
        normalization: str = "standard",
        depth_range: tuple[int, int] = (2, 10),
        accuracy_fraction: float = 0.5,
        breaker: CircuitBreaker | None = None,
    ):
        if not 0 < accuracy_fraction <= 1:
            raise ValueError(
                f"accuracy_fraction must be in (0, 1], got {accuracy_fraction}"
            )
        self.alpha = alpha
        self.normalization = normalization
        self.depth_range = depth_range
        self.accuracy_fraction = accuracy_fraction
        self.breaker = breaker
        self._lock = threading.Lock()
        self.stats = {
            "accuracy": 0,
            "weighted": 0,
            "uniform": 0,
            "degraded": 0,
            "deadline_trips": 0,
            "score_failures": 0,
        }

    def _count(self, key: str, by: int = 1) -> None:
        with self._lock:
            self.stats[key] += by

    def _walk(
        self,
        snapshot: TangleSnapshot,
        total: int,
        rng: np.random.Generator,
        score_fn,
        score_memo: np.ndarray | None,
        deadline: Deadline | None,
    ) -> np.ndarray:
        starts = batched_walk_starts(
            snapshot, total, rng, depth_range=self.depth_range, deadline=deadline
        )
        return lockstep_walks(
            snapshot,
            starts,
            score_fn,
            alpha=self.alpha,
            normalization=self.normalization,
            rng=rng,
            score_memo=score_memo,
            deadline=deadline,
        )

    def select(
        self,
        snapshot: TangleSnapshot,
        total: int,
        rng: np.random.Generator,
        *,
        score_fn=None,
        score_memo: np.ndarray | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[np.ndarray, str, bool, str | None]:
        """``total`` walk endpoints at the best affordable mode.

        Returns ``(final_nodes, mode, degraded, reason)``.  ``degraded``
        is True only when a *better* mode was applicable but had to be
        skipped or abandoned — a request with no scoring function gets
        ``"weighted"`` as its native, non-degraded mode.
        """
        reason: str | None = None
        if score_fn is not None:
            if self.breaker is None or self.breaker.allow():
                try:
                    finals = self._walk(
                        snapshot,
                        total,
                        rng,
                        score_fn,
                        score_memo,
                        None if deadline is None
                        else deadline.sub(self.accuracy_fraction),
                    )
                    if self.breaker is not None:
                        self.breaker.record_success()
                    self._count("accuracy")
                    return finals, "accuracy", False, None
                except WalkDeadlineExceeded:
                    self._count("deadline_trips")
                    reason = "accuracy_deadline"
                except Exception:
                    # A crashing scoring plane degrades service quality;
                    # it must not become a 5xx.  The breaker keeps a
                    # persistently sick plane from being re-probed on
                    # every request.
                    self._count("score_failures")
                    reason = "score_failure"
                if self.breaker is not None:
                    self.breaker.record_failure()
            else:
                reason = "breaker_open"
        degraded = reason is not None
        # Weighted: the snapshot's cumulative weights are a complete,
        # hole-free memo — lockstep_walks never calls the score function.
        weights = snapshot.cumulative_weights_float()
        try:
            finals = self._walk(
                snapshot,
                total,
                rng,
                lambda nodes: weights[nodes],
                weights,
                deadline,
            )
            self._count("weighted")
            if degraded:
                self._count("degraded")
            return finals, "weighted", degraded, reason
        except WalkDeadlineExceeded:
            self._count("deadline_trips")
            reason = reason or "weighted_deadline"
        # Uniform: never fails, no deadline check — one integers block.
        tips = snapshot.tip_nodes
        finals = tips[rng.integers(0, len(tips), size=total)]
        self._count("uniform")
        self._count("degraded")
        return finals, "uniform", True, reason
