"""Resilience primitives: deadlines, circuit breaking, admission, retries.

Small, independently testable mechanisms the gateway composes into its
request path.  All of them take an injectable clock (``time.monotonic``
by default) so tests drive state transitions deterministically without
sleeping.

- :class:`Deadline` — a request's time budget, propagated *into* the
  compute it triggers: the walk engine checks ``expired`` at superstep
  boundaries, and :meth:`Deadline.sub` slices the remaining budget so an
  expensive stage (the accuracy walk) can be given only a fraction,
  reserving the rest for its cheaper fallback.
- :class:`CircuitBreaker` — classic closed / open / half-open breaker
  around the walk engine: consecutive failures open it, requests then
  skip straight to degraded selection instead of queueing behind a sick
  dependency, and a single half-open probe per ``reset_timeout`` checks
  for recovery.
- :class:`AdmissionGate` — the bounded-admission counter behind
  backpressure: when the pending count hits capacity, new work is shed
  immediately (a 429-style explicit rejection) instead of growing an
  unbounded queue whose tail can never meet its deadline.
- :class:`RetryPolicy` — capped exponential backoff with jitter for the
  bundled client: retries are the *client's* half of load shedding, and
  jitter keeps a shed burst from re-arriving as a synchronized stampede.
"""

from __future__ import annotations

import threading
import time

import numpy as np

__all__ = [
    "Deadline",
    "CircuitBreaker",
    "AdmissionGate",
    "RetryPolicy",
]


class Deadline:
    """A monotonic time budget, checkable by anything it is handed to.

    Exposes the duck-typed surface the walk engine polls (``expired``)
    plus ``remaining()`` for queue-wait accounting and ``sub()`` for
    stage budgeting.  Immutable after construction; thread-safe because
    it only ever reads the clock.
    """

    __slots__ = ("budget", "_expires_at", "_clock")

    def __init__(self, budget: float, *, clock=time.monotonic):
        if budget <= 0:
            raise ValueError(f"deadline budget must be > 0, got {budget}")
        self.budget = float(budget)
        self._clock = clock
        self._expires_at = clock() + self.budget

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self._expires_at - self._clock())

    def sub(self, fraction: float) -> "Deadline":
        """A child deadline over ``fraction`` of the remaining budget.

        The stage-budgeting primitive: giving the accuracy walk
        ``deadline.sub(0.5)`` guarantees that even when the walk burns
        its whole slice, half the parent budget is still left for the
        degraded fallback — so the *request* meets its deadline even
        though a stage inside it missed one.  The child can never
        outlive the parent.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        child = Deadline.__new__(Deadline)
        child.budget = max(self.remaining() * fraction, 1e-9)
        child._clock = self._clock
        child._expires_at = min(
            self._expires_at, self._clock() + child.budget
        )
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget:.3f}, remaining={self.remaining():.3f})"


class CircuitBreaker:
    """Closed / open / half-open breaker around a fallible dependency.

    ``failure_threshold`` *consecutive* failures open the breaker;
    while open, :meth:`allow` answers False (callers degrade without
    touching the dependency).  After ``reset_timeout`` seconds one
    half-open probe is admitted: its success closes the breaker, its
    failure re-opens it for another full timeout.  Thread-safe.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.times_opened = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state_locked()

    def _peek_state_locked(self) -> str:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            return "half_open"
        return self._state

    def allow(self) -> bool:
        """May the protected call proceed right now?

        In half-open state, exactly one caller at a time gets a True
        (the probe); everyone else keeps degrading until the probe's
        verdict is recorded.
        """
        with self._lock:
            state = self._peek_state_locked()
            if state == "closed":
                return True
            if state == "half_open" and not self._probe_in_flight:
                self._state = "half_open"
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == "half_open":
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self.times_opened += 1


class AdmissionGate:
    """Bounded admission: at most ``capacity`` requests pending at once.

    The backpressure mechanism: :meth:`try_acquire` answers False the
    moment the gate is full, so the caller sheds the request with an
    explicit retryable rejection instead of queueing work that cannot
    meet its deadline.  ``depth`` feeds the readiness probe.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._depth = 0
        self.shed = 0

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def try_acquire(self) -> bool:
        with self._lock:
            if self._depth >= self.capacity:
                self.shed += 1
                return False
            self._depth += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._depth <= 0:
                raise RuntimeError("release() without a matching acquire")
            self._depth -= 1


class RetryPolicy:
    """Capped exponential backoff with jitter (the bundled client's half
    of load shedding).

    Attempt ``n`` (0-based) backs off ``base_delay * multiplier**n``
    capped at ``max_delay``, then scaled by a uniform jitter factor in
    ``[1 - jitter, 1]`` — de-synchronizing retry stampedes without ever
    waiting longer than the deterministic schedule.  A server-supplied
    ``retry_after`` hint overrides the computed delay when larger.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        base_delay: float = 0.01,
        multiplier: float = 2.0,
        max_delay: float = 0.5,
        jitter: float = 0.5,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0 <= jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter

    def delay(
        self,
        attempt: int,
        rng: np.random.Generator,
        *,
        retry_after: float | None = None,
    ) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        backoff = min(
            self.max_delay, self.base_delay * self.multiplier**attempt
        )
        backoff *= 1.0 - self.jitter * float(rng.random())
        if retry_after is not None:
            backoff = max(backoff, retry_after)
        return backoff
