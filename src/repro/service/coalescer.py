"""Request coalescing: many concurrent tip requests, one lockstep superstep.

The walk engine's throughput comes from width — ``lockstep_walks``
advances *all* particles of a call together, scoring each superstep's
union frontier in one fused batch.  A per-request dispatch wastes that:
every request pays its own walk-start block, its own superstep loop,
its own memo probes, for a handful of particles.  The
:class:`TipCoalescer` turns concurrency into width instead:

- callers :meth:`submit` a request (count, scoring key, deadline) and
  block on an event;
- a single worker thread claims **everything pending** (up to
  ``max_batch``) the moment it goes idle, groups the claims by scoring
  key, and runs each group's combined particle count through **one**
  ``batched_walk_starts`` + ``lockstep_walks`` pair over the shared
  epoch snapshot — under load, batch width grows automatically because
  requests pile up while the previous batch executes (adaptive
  batching, no artificial delay window);
- per-``score_key`` score memos persist across batches and epochs (a
  transaction's score under a fixed key never changes), so coalescing
  also *dedups evaluations across requests*, not just within one.

Resilience is built into the same loop: admission is bounded
(``max_pending``; beyond it, submit sheds immediately with a
retry-after hint), each claimed request whose deadline lapsed while
queued is shed rather than walked, the batch runs at the degradation
ladder's best affordable mode, and a worker crash — injected by chaos
or real — resolves the in-flight batch as explicit retryable sheds,
after which the supervisor (every submitter and waiter re-checks
liveness) respawns the worker.  No caller ever hangs on a dead worker.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.dag.walk_engine import snapshot_for
from repro.service.degradation import DegradationLadder
from repro.service.resilience import Deadline

__all__ = ["TipsOutcome", "TipCoalescer"]

#: How often blocked submitters re-check worker liveness and their own
#: deadline (seconds).  Small enough that crash recovery is prompt,
#: large enough that waiting is not a spin.
_WAIT_SLICE = 0.02


@dataclass
class TipsOutcome:
    """What one submitted request resolved to."""

    status: str  # "ok" | "shed"
    tips: list[str] | None = None
    mode: str | None = None  # LADDER_MODES entry when status == "ok"
    degraded: bool = False
    reason: str | None = None
    retry_after: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Pending:
    count: int
    score_key: object
    deadline: Deadline | None
    event: threading.Event = field(default_factory=threading.Event)
    outcome: TipsOutcome | None = None
    claimed: bool = False

    def resolve(self, outcome: TipsOutcome) -> None:
        self.outcome = outcome
        self.event.set()


class TipCoalescer:
    """Batch concurrent tip-selection requests over a shared snapshot.

    ``score_provider(score_key)`` returns a batch scorer (tx ids ->
    accuracies, the :meth:`repro.fl.client.Client.tx_accuracies`
    contract) or ``None`` for keys that should walk by cumulative
    weight.  ``tangle_lock`` serializes snapshot builds against
    publishes mutating the tangle.  ``crash_hook`` is the chaos plane's
    injection point, invoked once per claimed batch.

    ``max_batch=1`` degenerates to per-request dispatch through the
    same machinery — the benchmark's baseline, so the coalescing
    speedup isolates batching rather than coordination differences.
    """

    def __init__(
        self,
        tangle,
        *,
        ladder: DegradationLadder,
        score_provider=None,
        seed: int = 0,
        max_batch: int = 64,
        max_pending: int = 256,
        tangle_lock: threading.RLock | None = None,
        crash_hook=None,
        clock=time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._tangle = tangle
        self._ladder = ladder
        self._score_provider = score_provider
        self._rng = np.random.default_rng(seed)
        self.max_batch = max_batch
        self.max_pending = max_pending
        self._tangle_lock = tangle_lock or threading.RLock()
        self._crash_hook = crash_hook
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: list[_Pending] = []
        self._worker: threading.Thread | None = None
        self._closed = False
        # Score persistence: per-key tx-id caches survive snapshots; the
        # per-snapshot node memos are rebuilt from them on epoch change.
        self._score_caches: dict[object, dict[str, float]] = {}
        self._memo_snapshot = None
        self._memos: dict[object, np.ndarray] = {}
        # Transaction ids truncated by a tangle compaction, queued for
        # cache eviction on the worker thread (see discard_ids).
        self._dropped_pending: set[str] = set()
        self.stats = {
            "batches": 0,
            "requests": 0,
            "coalesced": 0,  # requests that shared a batch with another
            "max_batch_size": 0,
            "shed_queue_full": 0,
            "shed_deadline_lapsed": 0,
            "shed_crash": 0,
            "restarts": 0,
        }

    # ------------------------------------------------------------ admission
    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    def submit(
        self,
        count: int,
        *,
        score_key: object = None,
        deadline: Deadline | None = None,
    ) -> TipsOutcome:
        """Block until the batch containing this request resolves.

        Sheds immediately (never blocks) when the pending queue is at
        capacity; sheds from the queue when the deadline lapses before
        a worker claims the request.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        request = _Pending(count=count, score_key=score_key, deadline=deadline)
        with self._cond:
            if self._closed:
                return TipsOutcome(status="shed", reason="shutdown")
            if len(self._queue) >= self.max_pending:
                self.stats["shed_queue_full"] += 1
                return TipsOutcome(
                    status="shed",
                    reason="queue_full",
                    retry_after=_WAIT_SLICE * 2,
                )
            self._queue.append(request)
            self._ensure_worker_locked()
            self._cond.notify()
        while not request.event.wait(_WAIT_SLICE):
            # The supervisor loop: a crashed worker is respawned by
            # whoever is still waiting, and a request whose deadline
            # lapsed before being claimed is shed instead of walked.
            with self._cond:
                if not request.claimed and request.outcome is None:
                    if deadline is not None and deadline.expired:
                        self._queue.remove(request)
                        self.stats["shed_deadline_lapsed"] += 1
                        request.resolve(
                            TipsOutcome(
                                status="shed", reason="deadline_lapsed_in_queue"
                            )
                        )
                        break
                self._ensure_worker_locked()
                self._cond.notify()
        return request.outcome

    def discard_ids(self, tx_ids) -> None:
        """Queue compacted-away transaction ids for score-cache eviction.

        Called by the gateway after :meth:`repro.dag.tangle.Tangle.compact`
        truncates history: the per-key tx-id score caches (which outlive
        snapshots by design) must not keep scores for ids the tangle no
        longer knows.  Eviction is deferred to the worker thread, where
        it runs *after* the outgoing snapshot's memos have been retired
        — purging inline here could race a concurrent memo fold and
        resurrect a dropped id.  Thread-safe; never blocks on the walk.
        """
        ids = set(tx_ids)
        if not ids:
            return
        with self._cond:
            self._dropped_pending |= ids

    # ------------------------------------------------------------ lifecycle
    def _ensure_worker_locked(self) -> None:
        if self._closed:
            return
        if self._worker is None or not self._worker.is_alive():
            if self._worker is not None:
                self.stats["restarts"] += 1
            self._worker = threading.Thread(
                target=self._worker_loop, name="tip-coalescer", daemon=True
            )
            self._worker.start()

    def close(self) -> None:
        """Stop the worker and shed anything still queued (idempotent)."""
        with self._cond:
            self._closed = True
            queued, self._queue = self._queue, []
            worker = self._worker
            self._cond.notify_all()
        for request in queued:
            request.resolve(TipsOutcome(status="shed", reason="shutdown"))
        if worker is not None and worker.is_alive():
            worker.join(timeout=5)

    def __enter__(self) -> "TipCoalescer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ worker
    def _worker_loop(self) -> None:
        while True:
            batch: list[_Pending] = []
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait(0.1)
                if self._closed:
                    return
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                for request in batch:
                    request.claimed = True
            try:
                self._execute(batch)
            except Exception:
                # Crash (injected or real): the in-flight batch resolves
                # as explicit retryable sheds — never an opaque hang or
                # a 5xx-equivalent — and this thread dies.  Submitters
                # and waiters respawn a fresh worker for what remains
                # queued (supervisor-restart semantics).
                for request in batch:
                    if request.outcome is None:
                        self.stats["shed_crash"] += 1
                        request.resolve(
                            TipsOutcome(
                                status="shed",
                                reason="coalescer_restart",
                                retry_after=_WAIT_SLICE,
                            )
                        )
                return

    def _execute(self, batch: list[_Pending]) -> None:
        if self._crash_hook is not None:
            self._crash_hook()
        self.stats["batches"] += 1
        self.stats["requests"] += len(batch)
        if len(batch) > 1:
            self.stats["coalesced"] += len(batch)
        self.stats["max_batch_size"] = max(
            self.stats["max_batch_size"], len(batch)
        )
        live: list[_Pending] = []
        for request in batch:
            if request.deadline is not None and request.deadline.expired:
                self.stats["shed_deadline_lapsed"] += 1
                request.resolve(
                    TipsOutcome(status="shed", reason="deadline_lapsed_in_queue")
                )
            else:
                live.append(request)
        if not live:
            return
        with self._tangle_lock:
            snapshot = snapshot_for(self._tangle)
        if snapshot is not self._memo_snapshot:
            self._retire_memos()
            self._memo_snapshot = snapshot
        # Evict compacted ids AFTER retiring memos: retirement writes
        # memo scores back into the per-key caches, so a purge ordered
        # before it would let dropped ids resurrect from the memo fold.
        with self._cond:
            dropped, self._dropped_pending = self._dropped_pending, set()
        if dropped:
            for cache in self._score_caches.values():
                for tx_id in dropped:
                    cache.pop(tx_id, None)
        # Group by scoring key: one lockstep call per distinct key, each
        # covering every member request's particles.
        groups: dict[object, list[_Pending]] = {}
        for request in live:
            groups.setdefault(request.score_key, []).append(request)
        for score_key, members in groups.items():
            self._run_group(snapshot, score_key, members)

    def _run_group(self, snapshot, score_key, members: list[_Pending]) -> None:
        counts = [request.count for request in members]
        total = sum(counts)
        # The tightest member deadline governs the whole group: a batch
        # either meets its most impatient member's budget or degrades
        # for everyone (labeled on every response).
        deadline = None
        for request in members:
            if request.deadline is not None and (
                deadline is None
                or request.deadline.remaining() < deadline.remaining()
            ):
                deadline = request.deadline
        score_fn, memo = self._scorer_for(snapshot, score_key)
        finals, mode, degraded, reason = self._ladder.select(
            snapshot,
            total,
            self._rng,
            score_fn=score_fn,
            score_memo=memo,
            deadline=deadline,
        )
        ids = snapshot.ids
        offsets = np.cumsum([0, *counts])
        for request, start, end in zip(members, offsets[:-1], offsets[1:]):
            request.resolve(
                TipsOutcome(
                    status="ok",
                    tips=[ids[node] for node in finals[start:end]],
                    mode=mode,
                    degraded=degraded,
                    reason=reason,
                )
            )

    # ------------------------------------------------------------ scoring
    def _scorer_for(self, snapshot, score_key):
        """(node score_fn, persistent memo) for a key, or (None, None)."""
        if self._score_provider is None:
            return None, None
        batch_fn = self._score_provider(score_key)
        if batch_fn is None:
            return None, None
        memo = self._memos.get(score_key)
        if memo is None:
            cache = self._score_caches.setdefault(score_key, {})
            get = cache.get
            memo = np.array(
                [get(tx_id, np.nan) for tx_id in snapshot.ids], dtype=np.float64
            )
            self._memos[score_key] = memo
        ids = snapshot.ids

        def score_fn(nodes: np.ndarray) -> np.ndarray:
            return np.asarray(
                batch_fn([ids[node] for node in nodes]), dtype=np.float64
            )

        return score_fn, memo

    def _retire_memos(self) -> None:
        """Fold the outgoing snapshot's memos back into the per-key
        tx-id caches, so scores survive epoch changes."""
        snapshot = self._memo_snapshot
        if snapshot is not None:
            ids = snapshot.ids
            for score_key, memo in self._memos.items():
                cache = self._score_caches.setdefault(score_key, {})
                for node in np.flatnonzero(~np.isnan(memo)):
                    cache[ids[node]] = float(memo[node])
        self._memos = {}
