"""Stdlib HTTP front for the gateway (no framework dependencies).

The in-process API is the contract; this module is a thin JSON
transport over it, so everything the resilience layer guarantees maps
directly onto HTTP semantics:

========================  =====================================
gateway outcome           HTTP mapping
========================  =====================================
``"ok"``                  200 (``degraded`` flagged in the body)
``"shed"``                429 + ``Retry-After`` header
``"rejected"``            400 (quarantined / invalid payload)
``ready: False``          503 on ``GET /ready``
chaos ``TransportDropped``  connection closed without a response
========================  =====================================

Routes: ``POST /publish``, ``GET /tips``, ``GET /current-model``,
``GET /health``, ``GET /ready``.  Built on ``ThreadingHTTPServer`` so
concurrent requests actually coalesce; :func:`serve_background` binds
port 0 for collision-free tests.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.service.chaos import TransportDropped
from repro.service.gateway import ServiceResponse, TangleGateway

__all__ = ["GatewayHTTPServer", "serve_background"]


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The test server must not spam stderr.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def gateway(self) -> TangleGateway:
        return self.server.gateway

    def _send(self, response: ServiceResponse, status: int | None = None):
        payload = {
            "status": response.status,
            "degraded": response.degraded,
            "reason": response.reason,
            **_jsonable(response.body),
        }
        body = json.dumps(payload).encode()
        self.send_response(status or response.http_status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if response.retry_after is not None:
            self.send_header("Retry-After", f"{response.retry_after:.3f}")
        self.end_headers()
        self.wfile.write(body)

    def _drop(self):
        # Chaos ate the request: hang up without an HTTP response,
        # which is exactly what a dropped packet looks like to the
        # caller — a transport error, not a 5xx.
        self.close_connection = True

    def do_GET(self):
        url = urlparse(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/tips":
                budget = query.get("budget")
                response = self.gateway.tips(
                    int(query.get("count", ["2"])[0]),
                    score_key=query.get("score_key", [None])[0],
                    budget=float(budget[0]) if budget else None,
                )
            elif url.path == "/current-model":
                response = self.gateway.current_model()
            elif url.path == "/health":
                response = self.gateway.health()
            elif url.path == "/ready":
                response = self.gateway.ready()
                self._send(
                    response, status=200 if response.body["ready"] else 503
                )
                return
            else:
                self._send(
                    ServiceResponse(status="rejected", reason="unknown route"),
                    status=404,
                )
                return
        except TransportDropped:
            self._drop()
            return
        self._send(response)

    def do_POST(self):
        url = urlparse(self.path)
        if url.path != "/publish":
            self._send(
                ServiceResponse(status="rejected", reason="unknown route"),
                status=404,
            )
            return
        length = int(self.headers.get("Content-Length", "0"))
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            self._send(
                ServiceResponse(status="rejected", reason=f"bad json: {exc}")
            )
            return
        if "weights" not in request or "parents" not in request:
            self._send(
                ServiceResponse(
                    status="rejected", reason="need 'weights' and 'parents'"
                )
            )
            return
        try:
            response = self.gateway.publish(
                np.asarray(request["weights"], dtype=np.float64),
                list(request["parents"]),
                issuer=int(request.get("issuer", 0)),
                round_index=int(request.get("round_index", 0)),
                tags=request.get("tags"),
            )
        except TransportDropped:
            self._drop()
            return
        self._send(response)


class GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, gateway: TangleGateway, host="127.0.0.1", port=0):
        super().__init__((host, port), _Handler)
        self.gateway = gateway

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_background(
    gateway: TangleGateway, host="127.0.0.1", port=0
) -> tuple[GatewayHTTPServer, threading.Thread]:
    """Start a server thread; caller owns ``server.shutdown()``."""
    server = GatewayHTTPServer(gateway, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="gateway-http", daemon=True
    )
    thread.start()
    return server, thread
