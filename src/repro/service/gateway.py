"""Tangle-as-a-service: the gateway and its in-process API.

The gateway turns a live :class:`~repro.dag.tangle.Tangle` into a
service surface — ``publish``, ``tips``, ``current_model``, ``health``,
``ready`` — with the resilience layer composed around every request:

- chaos (when enabled) fires at the boundary, so drops, jitter and
  payload corruption hit the service exactly where a real network
  would inject them;
- admission is bounded (:class:`~repro.service.resilience.AdmissionGate`
  at the gateway, ``max_pending`` inside the coalescer): overload sheds
  immediately and explicitly with a retry-after hint instead of growing
  a queue whose tail cannot meet any deadline;
- every tip request carries a :class:`~repro.service.resilience.Deadline`
  that is *propagated into the walk engine* and stage-budgeted by the
  degradation ladder, so the response arrives within budget at the best
  affordable quality, labeled when degraded;
- corrupt publishes are quarantined at the gate
  (:func:`~repro.dag.transaction.payload_error`) as explicit
  400-equivalents, never admitted and never a crash.

The resulting outcome taxonomy is closed: every request resolves to
``"ok"`` (possibly degraded), ``"shed"`` (explicit, retryable), or
``"rejected"`` (the payload itself is invalid).  There is no error
status — the chaos suite asserts the taxonomy stays closed under load.

This module is transport-free by design: tests and benchmarks drive the
in-process API directly; :mod:`repro.service.http` bolts a stdlib HTTP
front onto the same object.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import Transaction, payload_error
from repro.dag.walk_engine import snapshot_for
from repro.fl.aggregation import mean_flat
from repro.service.coalescer import TipCoalescer, TipsOutcome
from repro.service.degradation import DegradationLadder
from repro.service.resilience import AdmissionGate, CircuitBreaker, Deadline

__all__ = ["GatewayConfig", "ServiceResponse", "TangleGateway"]

_HTTP_STATUS = {"ok": 200, "shed": 429, "rejected": 400}


@dataclass(frozen=True)
class GatewayConfig:
    """Resilience knobs, all in one place (and one docs table).

    ``deadline_budget`` is the default per-request time budget for tip
    selection; ``accuracy_fraction`` is the slice of it the accuracy
    walk may burn before the ladder falls back (the rest is the
    fallback's reserve, which is what keeps p99 under the budget).
    """

    deadline_budget: float = 0.25
    accuracy_fraction: float = 0.5
    admission_capacity: int = 128
    max_pending: int = 256
    max_batch: int = 64
    alpha: float = 10.0
    normalization: str = "standard"
    depth_range: tuple[int, int] = (2, 10)
    breaker_failure_threshold: int = 5
    breaker_reset_timeout: float = 0.5
    seed: int = 0


@dataclass
class ServiceResponse:
    """One request's resolution — the closed outcome taxonomy."""

    status: str  # "ok" | "shed" | "rejected"
    body: dict = field(default_factory=dict)
    degraded: bool = False
    reason: str | None = None
    retry_after: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def http_status(self) -> int:
        return _HTTP_STATUS[self.status]


class TangleGateway:
    """Serve a live tangle behind the resilience layer.

    ``score_provider(score_key)`` (optional) maps a request's scoring
    key to a batch tx-id scorer for accuracy-biased selection;
    ``chaos`` (optional) is a :class:`~repro.service.chaos.ServiceChaos`
    whose injections fire inside the request path.  All endpoints are
    thread-safe; publishes serialize against snapshot builds on one
    internal lock.
    """

    def __init__(
        self,
        tangle: Tangle,
        *,
        config: GatewayConfig | None = None,
        score_provider=None,
        chaos=None,
        clock=time.monotonic,
    ):
        self.tangle = tangle
        self.config = config or GatewayConfig()
        self.chaos = chaos
        self._clock = clock
        self._lock = threading.RLock()
        self._closed = False
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
            clock=clock,
        )
        self.ladder = DegradationLadder(
            alpha=self.config.alpha,
            normalization=self.config.normalization,
            depth_range=self.config.depth_range,
            accuracy_fraction=self.config.accuracy_fraction,
            breaker=self.breaker,
        )
        self.admission = AdmissionGate(self.config.admission_capacity)
        self.coalescer = TipCoalescer(
            tangle,
            ladder=self.ladder,
            score_provider=score_provider,
            seed=self.config.seed,
            max_batch=self.config.max_batch,
            max_pending=self.config.max_pending,
            tangle_lock=self._lock,
            crash_hook=None if chaos is None else chaos.maybe_crash,
            clock=clock,
        )
        self.counts = {
            "ok": 0,
            "shed": 0,
            "rejected": 0,
            "degraded": 0,
            "published": 0,
            "quarantined": 0,
            "compactions": 0,
            "compacted_dropped": 0,
        }
        self._counts_lock = threading.Lock()

    # ------------------------------------------------------------ plumbing
    def _chaos_entry(self, kind: str) -> None:
        if self.chaos is not None:
            self.chaos.before_request(kind)

    def _account(self, response: ServiceResponse) -> ServiceResponse:
        with self._counts_lock:
            self.counts[response.status] += 1
            if response.degraded:
                self.counts["degraded"] += 1
        return response

    def close(self) -> None:
        self._closed = True
        self.coalescer.close()

    def __enter__(self) -> "TangleGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ endpoints
    def tips(
        self,
        count: int = 2,
        *,
        score_key: object = None,
        budget: float | None = None,
    ) -> ServiceResponse:
        """Select ``count`` tips within a deadline budget.

        The request rides the coalescer: concurrent callers share one
        lockstep superstep over the epoch snapshot.  May raise
        :class:`~repro.service.chaos.TransportDropped` (chaos ate the
        request in flight — a transport event, not a response).
        """
        self._chaos_entry("tips")
        if not self.admission.try_acquire():
            return self._account(
                ServiceResponse(
                    status="shed",
                    reason="admission_full",
                    retry_after=self.config.deadline_budget,
                )
            )
        try:
            deadline = Deadline(
                budget if budget is not None else self.config.deadline_budget,
                clock=self._clock,
            )
            outcome: TipsOutcome = self.coalescer.submit(
                count, score_key=score_key, deadline=deadline
            )
            return self._account(
                ServiceResponse(
                    status=outcome.status,
                    body={"tips": outcome.tips, "mode": outcome.mode},
                    degraded=outcome.degraded,
                    reason=outcome.reason,
                    retry_after=outcome.retry_after,
                )
            )
        finally:
            self.admission.release()

    def publish(
        self,
        flat: np.ndarray,
        parents: list[str],
        *,
        issuer: int = 0,
        round_index: int = 0,
        tags: dict | None = None,
    ) -> ServiceResponse:
        """Admit one model transaction through the publish gate.

        Chaos may corrupt the payload in flight; the gate then
        quarantines it (an explicit ``"rejected"``), which is the whole
        point — corruption is caught at the boundary, not downstream.
        """
        self._chaos_entry("publish")
        flat = np.asarray(flat, dtype=np.float64)
        if self.chaos is not None:
            flat, _ = self.chaos.corrupt_payload(flat)
        error = payload_error(flat, self.tangle.spec)
        if error is not None:
            with self._counts_lock:
                self.counts["quarantined"] += 1
            return self._account(
                ServiceResponse(
                    status="rejected", reason=f"quarantined: {error}"
                )
            )
        with self._lock:
            try:
                tx = Transaction.from_flat(
                    self.tangle.next_tx_id(issuer),
                    # Same convention as every in-repo publish site: two
                    # walks may land on the same tip; collapse them.
                    tuple(dict.fromkeys(parents)),
                    flat,
                    self.tangle.spec,
                    issuer=issuer,
                    round_index=round_index,
                    tags=dict(tags or {}),
                )
                self.tangle.add(tx)
            except ValueError as exc:
                # Unknown/duplicate parents, malformed structure: the
                # request is invalid, the service is fine.
                return self._account(
                    ServiceResponse(status="rejected", reason=str(exc))
                )
            with self._counts_lock:
                self.counts["published"] += 1
            return self._account(
                ServiceResponse(status="ok", body={"tx_id": tx.tx_id})
            )

    def current_model(self) -> ServiceResponse:
        """The tangle's consensus read: the mean of the current tips.

        Cheap by construction — tip rows are a zero-copy arena gather
        and :func:`mean_flat` is one reduction, so this endpoint stays
        responsive even while walks degrade.
        """
        self._chaos_entry("current-model")
        with self._lock:
            tip_ids = self.tangle.tips() or [self.tangle.genesis.tx_id]
            stacked = np.stack(
                [self.tangle.flat_weights(tx_id) for tx_id in tip_ids]
            )
        return self._account(
            ServiceResponse(
                status="ok",
                body={
                    "model": mean_flat(stacked),
                    "tips": tip_ids,
                    "size": len(self.tangle),
                },
            )
        )

    def compact(
        self,
        *,
        keep_last: int | None = None,
        min_round: int | None = None,
        spill_path=None,
    ):
        """Truncate confirmed history while the service stays live.

        Runs :meth:`repro.dag.tangle.Tangle.compact` under the same
        lock that serializes publishes against snapshot builds, then
        queues the dropped ids for score-cache eviction in the
        coalescer (:meth:`~repro.service.coalescer.TipCoalescer.discard_ids`).
        In-flight requests finish on the snapshot they captured; the
        next batch re-snapshots at the new compaction epoch.  Returns
        the :class:`~repro.dag.tangle.CompactionReport`.
        """
        with self._lock:
            report = self.tangle.compact(
                keep_last=keep_last,
                min_round=min_round,
                spill_path=spill_path,
            )
        if report.dropped:
            self.coalescer.discard_ids(report.dropped_ids)
            with self._counts_lock:
                self.counts["compactions"] += 1
                self.counts["compacted_dropped"] += report.dropped
        return report

    def health(self) -> ServiceResponse:
        """Liveness + the full resilience telemetry (never sheds)."""
        body = {
            "status": "closed" if self._closed else "live",
            "tangle_size": len(self.tangle),
            "compaction_epoch": self.tangle.compaction_epoch,
            "arena_resident_bytes": self.tangle.arena.resident_nbytes,
            "breaker": self.breaker.state,
            "breaker_times_opened": self.breaker.times_opened,
            "counts": dict(self.counts),
            "ladder": dict(self.ladder.stats),
            "coalescer": dict(self.coalescer.stats),
            "admission_depth": self.admission.depth,
            "admission_shed": self.admission.shed,
        }
        if self.chaos is not None:
            body["chaos"] = dict(self.chaos.stats)
        return ServiceResponse(status="ok", body=body)

    def ready(self) -> ServiceResponse:
        """Readiness: can this gateway usefully take *more* load now?

        Not ready while closed, while admission is saturated, or while
        the coalescer queue is at capacity — the backpressure signal a
        load balancer would act on.  Reported in the body (the HTTP
        front maps ``ready: False`` to 503) rather than as a shed, so
        probes never inflate shed counts.
        """
        saturated = (
            self.admission.depth >= self.admission.capacity
            or self.coalescer.pending >= self.coalescer.max_pending
        )
        ready = not self._closed and not saturated
        return ServiceResponse(
            status="ok",
            body={
                "ready": ready,
                "admission_depth": self.admission.depth,
                "queue_depth": self.coalescer.pending,
            },
        )

    # ------------------------------------------------------------ helpers
    def snapshot(self):
        """The current walk snapshot (epoch-cached; test/benchmark aid)."""
        with self._lock:
            return snapshot_for(self.tangle)
