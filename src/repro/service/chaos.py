"""Chaos adapter: the PR 7 :class:`~repro.sim.faults.FaultModel` wired
into the service loop.

The simulator injects faults into a simulated network; the service
injects the *same declarative model* into a live request path, so one
scenario description exercises both planes:

- ``drop_rate`` — the request vanishes in flight: the gateway raises
  :class:`TransportDropped` before any handling, which the bundled
  client treats as a retryable transport error (exactly what a closed
  TCP connection looks like to a real caller);
- ``jitter`` — an extra exponential delay is slept before handling,
  pushing latency tails into the deadline machinery;
- ``corruption_rate`` / ``corruption_mode`` — publish payloads are
  corrupted with the shared :func:`repro.sim.faults.apply_corruption`
  kernel before they reach the gate, so the quarantine is exercised by
  the very same nan/inf/noise modes the simulator uses;
- ``crash_rate`` — the coalescer worker is crashed mid-batch
  (:class:`InjectedCoalescerCrash`): in-flight requests are resolved as
  explicit retryable sheds and the supervisor respawns the worker.

All draws come from one dedicated generator under a lock, mirroring the
engine's dedicated ``"faults"`` stream: the fault *sequence* is a pure
function of the seed and the order in which requests arrive (which,
under real concurrency, is the scheduler's to decide — so chaos runs
are reproducible in distribution, not bit-for-bit).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.sim.faults import FaultModel, apply_corruption

__all__ = ["TransportDropped", "InjectedCoalescerCrash", "ServiceChaos"]


class TransportDropped(ConnectionError):
    """The (simulated) network ate this request before the gateway saw it."""


class InjectedCoalescerCrash(RuntimeError):
    """Chaos killed the coalescer worker mid-batch."""


class ServiceChaos:
    """Apply a :class:`FaultModel`'s rates at the gateway boundary.

    ``sleep`` is injectable so tests can count jitter without waiting.
    ``stats`` tallies every injection for the health endpoint and the
    chaos benchmark's assertions that the scenario actually fired.
    """

    def __init__(
        self,
        faults: FaultModel,
        *,
        seed: int = 0,
        sleep=time.sleep,
    ):
        self.faults = faults
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._sleep = sleep
        self.stats = {
            "dropped": 0,
            "jittered": 0,
            "corrupted": 0,
            "crashes_injected": 0,
        }

    def before_request(self, kind: str) -> None:
        """Entry-point injection: may raise :class:`TransportDropped`,
        may sleep an exponential jitter delay.  ``kind`` names the
        endpoint (for per-endpoint stats later; unused in the draw)."""
        delay = 0.0
        with self._lock:
            if self.faults.drop_rate > 0 and (
                self._rng.random() < self.faults.drop_rate
            ):
                self.stats["dropped"] += 1
                raise TransportDropped(f"chaos dropped a {kind} request")
            if self.faults.jitter > 0:
                delay = float(self._rng.exponential(self.faults.jitter))
                self.stats["jittered"] += 1
        if delay > 0:  # sleep outside the lock: jitter must not serialize
            self._sleep(delay)

    def corrupt_payload(self, flat: np.ndarray) -> tuple[np.ndarray, bool]:
        """Maybe corrupt a publish payload; returns ``(payload, hit)``."""
        with self._lock:
            if self.faults.corruption_rate > 0 and (
                self._rng.random() < self.faults.corruption_rate
            ):
                self.stats["corrupted"] += 1
                return (
                    apply_corruption(
                        flat, self.faults.corruption_mode, self._rng
                    ),
                    True,
                )
        return flat, False

    def maybe_crash(self) -> None:
        """Coalescer-batch injection: may raise
        :class:`InjectedCoalescerCrash` (the worker's supervisor turns
        that into shed-and-restart)."""
        with self._lock:
            if self.faults.crash_rate > 0 and (
                self._rng.random() < self.faults.crash_rate
            ):
                self.stats["crashes_injected"] += 1
                raise InjectedCoalescerCrash("chaos killed the coalescer worker")
