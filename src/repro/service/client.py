"""The bundled gateway client: retries as the caller's half of shedding.

A resilient service is only half the story — a shed response or a
dropped connection still needs a caller that backs off and retries
instead of hammering or giving up.  :class:`GatewayClient` wraps any
gateway-shaped object (the in-process :class:`TangleGateway` or an HTTP
adapter exposing the same methods) and applies the
:class:`~repro.service.resilience.RetryPolicy` contract:

- ``"shed"`` responses are retried after capped exponential backoff
  with jitter, honoring the server's ``retry_after`` hint when larger;
- :class:`~repro.service.chaos.TransportDropped` (chaos ate the request
  in flight) is treated as a retryable shed;
- ``"ok"`` and ``"rejected"`` return immediately — an invalid payload
  does not become valid by resending it;
- when attempts are exhausted the *last response* is returned, never an
  exception: the caller always sees the closed outcome taxonomy.
"""

from __future__ import annotations

import time

import numpy as np

from repro.service.chaos import TransportDropped
from repro.service.gateway import ServiceResponse
from repro.service.resilience import RetryPolicy

__all__ = ["GatewayClient"]


class GatewayClient:
    """Retry-wrapped facade over a gateway (in-process or HTTP adapter).

    ``sleep`` is injectable so tests measure backoff without waiting.
    """

    def __init__(
        self,
        gateway,
        *,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        sleep=time.sleep,
    ):
        self.gateway = gateway
        self.policy = policy or RetryPolicy()
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep
        self.stats = {
            "attempts": 0,
            "retries": 0,
            "transport_drops": 0,
            "gave_up": 0,
        }

    def _call(self, fn, /, *args, **kwargs) -> ServiceResponse:
        last: ServiceResponse | None = None
        for attempt in range(self.policy.max_attempts):
            self.stats["attempts"] += 1
            try:
                response = fn(*args, **kwargs)
            except TransportDropped:
                self.stats["transport_drops"] += 1
                last = ServiceResponse(
                    status="shed", reason="transport_dropped"
                )
            else:
                if response.status != "shed":
                    return response
                last = response
            if attempt + 1 < self.policy.max_attempts:
                self.stats["retries"] += 1
                self._sleep(
                    self.policy.delay(
                        attempt, self._rng, retry_after=last.retry_after
                    )
                )
        self.stats["gave_up"] += 1
        return last

    # Facade methods mirror the gateway surface one to one.
    def tips(self, count: int = 2, **kwargs) -> ServiceResponse:
        return self._call(self.gateway.tips, count, **kwargs)

    def publish(self, flat, parents, **kwargs) -> ServiceResponse:
        return self._call(self.gateway.publish, flat, parents, **kwargs)

    def current_model(self) -> ServiceResponse:
        return self._call(self.gateway.current_model)

    def health(self) -> ServiceResponse:
        return self._call(self.gateway.health)

    def ready(self) -> ServiceResponse:
        return self._call(self.gateway.ready)
