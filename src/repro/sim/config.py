"""Configuration of the discrete-event simulator (:mod:`repro.sim`).

Everything here is declarative and deterministic: distributions are
named specs sampled from explicitly keyed generators inside the engine,
churn is a schedule of events, and staleness handling is a pure weight
policy.  A :class:`SimConfig` therefore pins a scenario completely — two
engines built from the same ``(seed, SimConfig, DagConfig)`` produce the
same event trace, transaction for transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.faults import FaultModel

__all__ = [
    "LatencyModel",
    "StalenessPolicy",
    "ChurnEvent",
    "SimConfig",
    "random_churn",
]

_LATENCY_KINDS = ("exponential", "lognormal", "uniform", "constant")
_STALENESS_MODES = ("none", "constant", "polynomial", "hinge")


@dataclass(frozen=True)
class LatencyModel:
    """Distribution spec for a nonnegative duration.

    - ``"exponential"`` — mean ``mean`` (one draw; a zero mean draws
      nothing and yields 0.0, matching the historical async simulator's
      skip of the propagation draw at zero delay);
    - ``"lognormal"`` — ``mean * lognormal(0, sigma)`` (the async
      simulator's training-time law; the median is ``mean``);
    - ``"uniform"`` — uniform on ``[0, 2 * mean]``;
    - ``"constant"`` — exactly ``mean``, **no draw consumed** (the
      degenerate/uniform-schedule building block: a constant model
      never shifts any stream).
    """

    kind: str = "exponential"
    mean: float = 1.0
    sigma: float = 0.3

    def __post_init__(self) -> None:
        if self.kind not in _LATENCY_KINDS:
            raise ValueError(
                f"unknown latency kind {self.kind!r}; expected one of "
                f"{_LATENCY_KINDS}"
            )
        if self.mean < 0:
            raise ValueError("latency mean must be >= 0")
        if self.sigma < 0:
            raise ValueError("latency sigma must be >= 0")

    def sample(self, rng: np.random.Generator) -> float:
        """One duration; consumes the generator only when stochastic."""
        if self.kind == "constant" or self.mean == 0.0:
            return float(self.mean)
        if self.kind == "exponential":
            return float(rng.exponential(self.mean))
        if self.kind == "lognormal":
            return float(self.mean * rng.lognormal(0.0, self.sigma))
        return float(rng.uniform(0.0, 2.0 * self.mean))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` durations in one block; the deterministic cases
        (constant kind, zero mean) consume the generator not at all,
        matching :meth:`sample`'s skip-draw contract."""
        if self.kind == "constant" or self.mean == 0.0:
            return np.full(size, float(self.mean))
        if self.kind == "exponential":
            return rng.exponential(self.mean, size)
        if self.kind == "lognormal":
            return self.mean * rng.lognormal(0.0, self.sigma, size)
        return rng.uniform(0.0, 2.0 * self.mean, size)


@dataclass(frozen=True)
class StalenessPolicy:
    """Staleness-aware reference aggregation (the fedasync idiom).

    A training cycle's reference model averages the selected parent
    (tip) models; under asynchrony those parents were published at
    different times, and an old parent should count for less.  The
    policy maps each parent's staleness ``s = now - published_at`` to a
    weight, normalized over the parents:

    - ``"none"`` — disabled: the configured ``DagConfig.aggregator``
      runs unchanged (the degenerate/parity setting);
    - ``"constant"`` — uniform weights (staleness measured, ignored);
    - ``"polynomial"`` — ``(1 + s) ** -alpha``;
    - ``"hinge"`` — weight 1 up to ``beta``, then ``1 / (alpha * (s -
      beta) + 1)``.

    Weights are always positive and normalized to sum to one, so the
    weighted mean is a convex combination of the parents (the property
    suite pins this).
    """

    mode: str = "none"
    alpha: float = 0.5
    beta: float = 4.0

    def __post_init__(self) -> None:
        if self.mode not in _STALENESS_MODES:
            raise ValueError(
                f"unknown staleness mode {self.mode!r}; expected one of "
                f"{_STALENESS_MODES}"
            )
        if self.alpha < 0:
            raise ValueError("staleness alpha must be >= 0")
        if self.beta < 0:
            raise ValueError("staleness beta must be >= 0")

    def weights(self, staleness: np.ndarray) -> np.ndarray:
        """Normalized parent weights for a staleness vector (>= 0)."""
        s = np.maximum(np.asarray(staleness, dtype=np.float64), 0.0)
        if s.ndim != 1 or s.size == 0:
            raise ValueError("staleness must be a non-empty 1-D array")
        if self.mode in ("none", "constant"):
            raw = np.ones_like(s)
        elif self.mode == "polynomial":
            raw = (1.0 + s) ** (-self.alpha)
        else:  # hinge: flat inside the grace period, hyperbolic after
            raw = 1.0 / (self.alpha * np.maximum(s - self.beta, 0.0) + 1.0)
        return raw / raw.sum()


@dataclass(frozen=True)
class ChurnEvent:
    """A scheduled membership change: a client joins or leaves at ``time``.

    At equal timestamps the engine processes joins before leaves before
    training-cycle completions, so a client leaving at exactly a cycle's
    finish time never publishes that cycle.
    """

    time: float
    action: str
    client_id: int

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave"):
            raise ValueError(f"unknown churn action {self.action!r}")
        if self.time < 0:
            raise ValueError("churn time must be >= 0")


@dataclass(frozen=True)
class SimConfig:
    """Scenario parameters of the event-driven simulator.

    - ``think`` / ``train`` / ``propagation`` — the per-cycle idle,
      training-duration, and per-transaction network-delay laws.  The
      defaults reproduce :class:`repro.fl.async_learning.AsyncTangleLearning`
      exactly (same distributions, same draw order).
    - ``quantum`` — the scheduling quantum.  ``0`` processes events one
      at a time (pure discrete-event semantics); ``q > 0`` collects
      every training cycle completing within ``q`` of the next one and
      runs them as **one fused superstep** (shared walk snapshots, one
      lockstep-training pass), with intra-batch publications deferred to
      the batch barrier — the same freeze semantics the round simulator
      applies at round boundaries.
    - ``rate_spread`` — lognormal sigma of per-client compute rates
      (0 = homogeneous); ``straggler_fraction`` / ``straggler_slowdown``
      additionally slow a deterministic subset of clients by a factor.
      Both draw from a dedicated ``"rates"`` stream so enabling them
      never shifts the event-time stream.
    - ``churn`` — a schedule of :class:`ChurnEvent`; ``initially_active``
      restricts the starting membership (``None`` = everyone).
    - ``staleness`` — the reference-aggregation :class:`StalenessPolicy`.
    - ``faults`` — the :class:`~repro.sim.faults.FaultModel` fault
      schedule (drops, duplicates, jitter, partitions, crashes, payload
      corruption).  The default injects nothing and leaves the engine on
      the exact clean code path; every stochastic fault draws from a
      dedicated ``"faults"`` stream, so the schedule replays per seed
      and inert knobs never shift the clean streams.
    - ``attackers`` — client ids running the ``"random_weights"`` attack
      (random parents, random payload tagged malicious) instead of
      honest training, in every regime: cycles under churn/stragglers
      and :meth:`~repro.sim.engine.EventDrivenTangleLearning.run_rounds`
      (where the round substrate's attack path makes the records
      bit-identical to ``TangleLearning(attackers=...)``).  Label-flip
      attackers need no hook — they are data-level
      (:func:`repro.poisoning.poison_dataset_label_flip`).
    """

    think: LatencyModel = LatencyModel("exponential", 1.0)
    train: LatencyModel = LatencyModel("lognormal", 1.0, 0.3)
    propagation: LatencyModel = LatencyModel("exponential", 0.1)
    quantum: float = 0.0
    rate_spread: float = 0.0
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 4.0
    churn: tuple[ChurnEvent, ...] = ()
    initially_active: frozenset[int] | None = None
    staleness: StalenessPolicy = field(default_factory=StalenessPolicy)
    faults: FaultModel = field(default_factory=FaultModel)
    attackers: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.quantum < 0:
            raise ValueError("quantum must be >= 0")
        if self.think.mean <= 0 and self.train.mean <= 0:
            raise ValueError(
                "think and train latencies cannot both be zero-mean "
                "(cycles would complete instantly forever)"
            )
        if self.rate_spread < 0:
            raise ValueError("rate_spread must be >= 0")
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ValueError("straggler_fraction must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        # Normalize churn to a tuple of ChurnEvents (accepts any iterable).
        object.__setattr__(self, "churn", tuple(self.churn))
        if self.initially_active is not None:
            object.__setattr__(
                self, "initially_active", frozenset(self.initially_active)
            )
        object.__setattr__(self, "attackers", frozenset(self.attackers))

    @classmethod
    def async_compat(
        cls,
        *,
        mean_think_time: float = 1.0,
        mean_train_time: float = 1.0,
        train_time_sigma: float = 0.3,
        mean_propagation_delay: float = 0.1,
    ) -> "SimConfig":
        """The configuration under which the engine reproduces
        :class:`~repro.fl.async_learning.AsyncTangleLearning` draw for
        draw — the parity suite's anchor."""
        return cls(
            think=LatencyModel("exponential", mean_think_time),
            train=LatencyModel("lognormal", mean_train_time, train_time_sigma),
            propagation=LatencyModel("exponential", mean_propagation_delay),
        )


def random_churn(
    client_ids,
    *,
    mean_uptime: float,
    mean_downtime: float,
    horizon: float,
    rng: np.random.Generator,
) -> tuple[ChurnEvent, ...]:
    """A Poisson leave/rejoin schedule over ``[0, horizon]``.

    Each client independently alternates exponential uptime and downtime
    periods; the schedule is materialized up front (sorted by time) so
    the engine's event trace stays a pure function of ``(seed, config)``.
    """
    if min(mean_uptime, mean_downtime) <= 0:
        raise ValueError("mean uptime/downtime must be positive")
    events: list[ChurnEvent] = []
    for client_id in sorted(client_ids):
        t = float(rng.exponential(mean_uptime))
        while t < horizon:
            events.append(ChurnEvent(t, "leave", client_id))
            t += float(rng.exponential(mean_downtime))
            if t >= horizon:
                break
            events.append(ChurnEvent(t, "join", client_id))
            t += float(rng.exponential(mean_uptime))
    events.sort(key=lambda e: (e.time, e.action, e.client_id))
    return tuple(events)
