"""The event-driven tangle simulator (the tentpole of :mod:`repro.sim`).

:class:`EventDrivenTangleLearning` generalizes both existing simulators
into one discrete-event engine over a priority queue of events:

- **cycle** — a client's training cycle completes: tip selection over
  the tangle as visible at the cycle's *start*, reference aggregation
  (optionally staleness-weighted), local training, publish gate,
  publication with a per-transaction propagation delay;
- **join** / **leave** — mid-run churn from the configured schedule; a
  leave cancels the client's outstanding cycle (it never publishes
  after leaving), a join schedules a fresh one.

The heap orders events by ``(time, kind, client id, push sequence)``
with joins before leaves before cycles at equal timestamps, so the
whole trace is a pure function of ``(seed, configs)`` and — because the
client id outranks the push sequence — independent of the incidental
order events entered the heap.

Three operating regimes, selected by configuration rather than by
separate code paths at the call sites:

1. **Sequential** (``quantum = 0``) — pure discrete-event semantics,
   one cycle at a time.  Under :meth:`SimConfig.async_compat` this
   reproduces :class:`repro.fl.async_learning.AsyncTangleLearning`
   draw for draw: same rng keys, same draw order, bit-identical
   publish traces (the parity suite pins it).
2. **Quantum-batched** (``quantum > 0``) — every cycle completing
   within ``quantum`` of the next pending one is collected into a
   superstep: the batch freezes one shared view (at the *earliest*
   member's start time, so nobody sees anything it could not have seen
   sequentially), all members' walk particles advance through **one**
   :func:`repro.dag.walk_engine.lockstep_walks` call per view group
   (weighted selector; the accuracy selector shares the CSR snapshot
   but keeps per-client score tables, since its scores are evaluations
   on the selecting client's own test data), local training runs as
   **one** fused training-plane pass over the stacked references, and
   publications commit at the batch barrier in event order.  This is
   the same freeze-at-barrier semantics the round simulator applies at
   round boundaries, with the quantum as a fidelity dial: as
   ``quantum -> 0`` every batch is a single cycle and the semantics
   degrade gracefully into regime 1.
3. **Round-compat** (:meth:`run_rounds`) — drives the round substrate
   (:func:`repro.substrate.execute_unit` /
   :func:`repro.substrate.run_training_plane_round`) through the
   engine's state, reproducing :class:`repro.fl.dag_learning.TangleLearning`
   round records bit for bit when no churn is configured.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dag import walk_engine
from repro.dag.tangle import Tangle
from repro.dag.tip_selection import RandomTipSelector
from repro.dag.transaction import Transaction, payload_error
from repro.dag.view import TangleView
from repro.data.base import FederatedDataset
from repro.fl.aggregation import get_aggregator
from repro.fl.async_learning import TimedTangleView
from repro.fl.client import Client
from repro.fl.config import DagConfig, TrainingConfig
from repro.fl.records import RoundRecord
from repro.nn.model import Classifier
from repro.nn.training_plane import train_grouped
from repro.sim.config import SimConfig
from repro.sim.faults import apply_corruption
from repro.substrate import (
    ClientWorkUnit,
    Executor,
    apply_result,
    build_selector,
    execute_round,
    make_executor,
    plan_client_job,
)
from repro.utils.rng import RngFactory

__all__ = ["EventDrivenTangleLearning", "SimEvent"]

ModelBuilder = Callable[[np.random.Generator], Classifier]

# Tie-break ranks at equal timestamps: membership changes resolve before
# the cycles they affect — a client leaving at exactly its cycle's
# finish time never publishes that cycle.  Crash/recover are the fault
# plane's ungraceful twins of leave/join and share their ranks.
_RANK = {"join": 0, "recover": 0, "leave": 1, "crash": 1, "cycle": 2}


@dataclass(order=True)
class _Event:
    """A heap entry; comparison fields are exactly the declared order.

    ``seq`` is a global push counter and the *last* tie-break: it can
    only decide between events identical in time, kind, and client —
    which makes the pop order invariant to heap insertion order.
    """

    time: float
    rank: int
    client_id: int
    seq: int
    kind: str = field(compare=False)
    start_time: float = field(compare=False, default=0.0)
    cycle_seq: int = field(compare=False, default=-1)
    generation: int = field(compare=False, default=0)
    # Crash events carry their recovery delay (drawn at scheduling time
    # so the fault stream's draw order is independent of the quantum).
    payload: float = field(compare=False, default=0.0)


@dataclass(frozen=True)
class SimEvent:
    """One processed event, as recorded in the engine's trace.

    ``kind`` is ``"train"`` (a completed cycle; all optional fields
    set), ``"join"`` / ``"leave"`` (membership changes), or ``"crash"``
    / ``"recover"`` (the fault plane's ungraceful membership changes;
    optional fields ``None``).

    ``quarantined`` is ``True`` on a train event whose publication was
    rejected by the publish-path payload validation (non-finite or
    shape-mismatched weights) — ``published`` is then ``False`` and
    ``tx_id`` ``None``; it stays ``None`` on every other event, so
    clean-run traces are unchanged.  Attacker cycles
    (:attr:`SimConfig.attackers`) record ``accuracy`` and
    ``reference_accuracy`` as ``None`` — attackers train nothing.
    """

    time: float
    kind: str
    client_id: int
    published: bool | None = None
    accuracy: float | None = None
    reference_accuracy: float | None = None
    tx_id: str | None = None
    start_time: float | None = None
    quarantined: bool | None = None


class EventDrivenTangleLearning:
    """Event-driven simulator of the specializing DAG (see module doc).

    Construction mirrors the other simulators exactly — same rng keys
    (``"model-init"``, ``("client", id)``, ``"times"``, ``("walk",
    seq)``), same shared-model client wiring — so the engine's state is
    interchangeable with theirs for a fixed seed.  Scenario knobs
    (latency laws, quantum, heterogeneity, churn, staleness) live in
    :class:`repro.sim.config.SimConfig`.
    """

    def __init__(
        self,
        dataset: FederatedDataset,
        model_builder: ModelBuilder,
        train_config: TrainingConfig,
        dag_config: DagConfig = DagConfig(),
        *,
        sim_config: SimConfig = SimConfig(),
        seed: int = 0,
    ):
        self.dataset = dataset
        self.dag_config = dag_config
        self.sim_config = sim_config
        self._rngs = RngFactory(seed)
        self.model = model_builder(self._rngs.get("model-init"))
        genesis_weights = self.model.get_weights()
        self.tangle = Tangle(genesis_weights)
        self.clients: dict[int, Client] = {
            cd.client_id: Client(
                cd, self.model, train_config, self._rngs.get("client", cd.client_id)
            )
            for cd in dataset.clients
        }
        if dag_config.personal_params > 0:
            for client in self.clients.values():
                client.enable_personalization(
                    dag_config.personal_params, genesis_weights
                )
        self._aggregate = get_aggregator(dag_config.aggregator)

        # Event times draw from the same dedicated stream as the async
        # simulator; heterogeneity draws from its own "rates" stream so
        # enabling it cannot shift event times.
        self._time_rng = self._rngs.get("times")
        self._rate: dict[int, float] = {cid: 1.0 for cid in self.clients}
        rate_rng = self._rngs.get("rates")
        if sim_config.rate_spread > 0:
            for client_id in sorted(self.clients):
                self._rate[client_id] = float(
                    rate_rng.lognormal(0.0, sim_config.rate_spread)
                )
        self.stragglers: frozenset[int] = frozenset()
        if sim_config.straggler_fraction > 0:
            ids = sorted(self.clients)
            count = int(round(sim_config.straggler_fraction * len(ids)))
            if count:
                chosen = rate_rng.choice(ids, size=min(count, len(ids)), replace=False)
                self.stragglers = frozenset(int(c) for c in chosen)
                for client_id in self.stragglers:
                    self._rate[client_id] *= sim_config.straggler_slowdown

        self._queue: list[_Event] = []
        self._push_seq = itertools.count()
        self._cycle_seq = itertools.count()  # walk-rng keys; cycles only
        self._batch_seq = itertools.count()  # quantum supersteps
        self.now = 0.0
        self.events: list[SimEvent] = []
        self._visible_from: dict[str, float] = {self.tangle.genesis.tx_id: 0.0}
        self._published_at: dict[str, float] = {self.tangle.genesis.tx_id: 0.0}
        # Per-client publication log (publish time, visible time, tx id):
        # backs the issuer exemption when batching groups shared views.
        self._own_publications: dict[int, list[tuple[float, float, str]]] = {}

        # Fault plane: all stochastic fault decisions draw from their
        # own "faults" stream, created only when any knob is live — a
        # disabled FaultModel leaves every clean stream untouched and
        # the engine on the exact clean code path.
        self._faults = sim_config.faults
        self._fault_rng = self._rngs.get("faults") if self._faults.enabled else None
        self.fault_stats: dict[str, int] = {
            "crashes": 0,
            "recoveries": 0,
            "corrupted": 0,
            "quarantined": 0,
            "dropped_links": 0,
            "duplicated_links": 0,
        }
        self._client_order: list[int] = sorted(self.clients)
        # With per-link faults each client owns a visibility map (entries
        # written once per delivery, never mutated — the walk engine's
        # snapshot fingerprint relies on that) instead of sharing the
        # network-wide map above.
        self._obs_visible: dict[int, dict[str, float]] | None = None
        if self._faults.link_faults:
            genesis_id = self.tangle.genesis.tx_id
            self._obs_visible = {
                cid: {genesis_id: 0.0} for cid in self._client_order
            }
        # Partition membership per client, aligned with _client_order
        # (-1 = unlisted, unaffected); precomputed so the per-publish
        # delivery fan-out stays vectorized.
        self._partition_membership: list[np.ndarray] = [
            np.array(
                [
                    -1 if (g := p.group_of(cid)) is None else g
                    for cid in self._client_order
                ],
                dtype=np.int64,
            )
            for p in self._faults.partitions
        ]
        unknown_attackers = sim_config.attackers - set(self.clients)
        if unknown_attackers:
            raise ValueError(f"unknown attacker clients: {sorted(unknown_attackers)}")

        # Membership: per-client generation counters implement lazy
        # cancellation — a leave bumps the generation, orphaning any
        # queued cycle (dropped when it surfaces).
        self._generation: dict[int, int] = {cid: 0 for cid in self.clients}
        if sim_config.initially_active is None:
            self._active = set(self.clients)
        else:
            unknown = sim_config.initially_active - set(self.clients)
            if unknown:
                raise ValueError(f"unknown initially_active clients: {sorted(unknown)}")
            self._active = set(sim_config.initially_active)
        for event in sim_config.churn:
            if event.client_id not in self.clients:
                raise ValueError(f"churn references unknown client {event.client_id}")
            heapq.heappush(
                self._queue,
                _Event(
                    event.time,
                    _RANK[event.action],
                    event.client_id,
                    next(self._push_seq),
                    event.action,
                ),
            )
        for client_id in sorted(self._active):
            self._schedule_cycle(client_id)

        self.round_index = 0
        self.round_history: list[RoundRecord] = []
        self._sampler: np.random.Generator | None = None
        self._round_executor: Executor | None = None

    # --------------------------------------------------------------- queries
    @property
    def active_clients(self) -> frozenset[int]:
        """Clients currently participating (initial set plus churn)."""
        return frozenset(self._active)

    @property
    def completed_cycles(self) -> int:
        """Training cycles processed so far (published or not)."""
        return sum(1 for event in self.events if event.kind == "train")

    def close(self) -> None:
        """Release round-mode executor resources and any shared-memory
        segments the round state exported (idempotent)."""
        if self._round_executor is not None:
            self._round_executor.close()
        self.tangle.close()
        self.dataset.close_shared()

    def __enter__(self) -> "EventDrivenTangleLearning":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def accuracy_timeline(self, bucket: float = 1.0) -> list[tuple[float, float]]:
        """Mean trained-model accuracy per time bucket (train events)."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        buckets: dict[int, list[float]] = {}
        for event in self.events:
            # Attacker cycles carry no accuracy; skip them like churn.
            if event.kind != "train" or event.accuracy is None:
                continue
            buckets.setdefault(int(event.time // bucket), []).append(event.accuracy)
        return [
            (index * bucket, float(np.mean(values)))
            for index, values in sorted(buckets.items())
        ]

    # ------------------------------------------------------------ scheduling
    def _schedule_cycle(self, client_id: int) -> None:
        """Queue the client's next cycle: think delay, then training.

        Draw order (think, then duration) matches the async simulator;
        the per-client rate factor scales the duration outside the draw,
        so heterogeneity leaves the stream itself untouched.
        """
        start = self.now + self.sim_config.think.sample(self._time_rng)
        duration = self.sim_config.train.sample(self._time_rng) * self._rate[client_id]
        heapq.heappush(
            self._queue,
            _Event(
                start + duration,
                _RANK["cycle"],
                client_id,
                next(self._push_seq),
                "cycle",
                start_time=start,
                cycle_seq=next(self._cycle_seq),
                generation=self._generation[client_id],
            ),
        )
        # Crash injection rides on cycle scheduling: the Bernoulli, the
        # crash point within the training window, and the recovery delay
        # all draw here (from the dedicated stream, in scheduling order,
        # which is identical at every quantum) — never at pop time,
        # where sequential and batched pops interleave differently.
        if self._fault_rng is not None and self._faults.crash_rate > 0:
            if self._fault_rng.random() < self._faults.crash_rate:
                crash_time = start + float(self._fault_rng.random()) * duration
                recovery = (
                    float(self._fault_rng.exponential(self._faults.recovery))
                    if self._faults.recovery > 0
                    else 0.0
                )
                heapq.heappush(
                    self._queue,
                    _Event(
                        crash_time,
                        _RANK["crash"],
                        client_id,
                        next(self._push_seq),
                        "crash",
                        generation=self._generation[client_id],
                        payload=recovery,
                    ),
                )

    def _stale(self, event: _Event) -> bool:
        # A crash is pinned to the cycle generation it was scheduled
        # with: if the client already left (or crashed) the cycle is
        # gone and the crash with it.
        return event.kind in ("cycle", "crash") and (
            event.client_id not in self._active
            or event.generation != self._generation[event.client_id]
        )

    def _peek(self) -> _Event | None:
        """The next live event, discarding churn-cancelled cycles."""
        while self._queue:
            top = self._queue[0]
            if self._stale(top):
                heapq.heappop(self._queue)
                continue
            return top
        return None

    # --------------------------------------------------- membership (churn)
    def _apply_join(self, event: _Event) -> SimEvent:
        """Apply a join; the caller appends the returned record so that
        ``self.events`` stays chronological even when batching defers
        cycle commits past later churn pops."""
        record = SimEvent(time=event.time, kind="join", client_id=event.client_id)
        if event.client_id not in self._active:
            self._active.add(event.client_id)
            self._generation[event.client_id] += 1
            self._schedule_cycle(event.client_id)
        return record

    def _apply_leave(self, event: _Event) -> SimEvent:
        record = SimEvent(time=event.time, kind="leave", client_id=event.client_id)
        if event.client_id in self._active:
            self._active.discard(event.client_id)
            # Orphan the outstanding cycle: the client never publishes
            # work that finishes after it left.
            self._generation[event.client_id] += 1
        return record

    def _apply_crash(self, event: _Event) -> SimEvent:
        """An ungraceful leave: unlike churn, the crash *loses in-flight
        state* — the running cycle aborts unpublished and the client's
        evaluation cache is wiped (a rebooted node re-evaluates from
        scratch).  Stale crashes never reach here (:meth:`_stale`)."""
        self._active.discard(event.client_id)
        self._generation[event.client_id] += 1
        self.clients[event.client_id].reset_cache()
        self.fault_stats["crashes"] += 1
        heapq.heappush(
            self._queue,
            _Event(
                event.time + event.payload,
                _RANK["recover"],
                event.client_id,
                next(self._push_seq),
                "recover",
            ),
        )
        return SimEvent(time=event.time, kind="crash", client_id=event.client_id)

    def _apply_recover(self, event: _Event) -> SimEvent:
        """Rejoin after a crash (a join in all but name; a client that
        already rejoined through scheduled churn stays as it is)."""
        record = SimEvent(time=event.time, kind="recover", client_id=event.client_id)
        self.fault_stats["recoveries"] += 1
        if event.client_id not in self._active:
            self._active.add(event.client_id)
            self._generation[event.client_id] += 1
            self._schedule_cycle(event.client_id)
        return record

    # ------------------------------------------------------------ publishing
    def _reference_weights(self, tips: list[str], at_time: float):
        """Aggregate the selected parent models into the reference.

        With staleness disabled this is exactly the configured
        aggregator (the async simulator's arithmetic).  Otherwise each
        parent's age at the cycle's *start* — when the client read the
        tangle — maps through the policy to a normalized weight and the
        reference is the weighted mean.
        """
        models = [self.tangle.get(t).model_weights for t in tips]
        policy = self.sim_config.staleness
        if policy.mode == "none":
            return self._aggregate(models)
        staleness = np.array(
            [at_time - self._published_at[t] for t in tips], dtype=np.float64
        )
        weights = policy.weights(staleness)
        return [
            sum(w * layer for w, layer in zip(weights, layers))
            for layers in zip(*models)
        ]

    def _corrupt(self, flat: np.ndarray) -> np.ndarray:
        """The configured in-flight payload corruption (fault stream)."""
        return apply_corruption(
            flat, self._faults.corruption_mode, self._fault_rng
        )

    def _deliver(self, tx_id: str, issuer: int, base_visible: float) -> None:
        """Per-link delivery fan-out (link faults active): one arrival
        time per client, written once into that client's visibility map.

        One vectorized block of fault draws per publication, in a fixed
        knob order (jitter, drop, duplicate) — publications commit in
        pop order at every quantum, so the schedule replays identically.
        Inert knobs draw nothing; with every rate zero (``always_on``)
        each client's arrival is exactly ``base_visible`` and the trace
        matches the clean run bit for bit.
        """
        faults = self._faults
        rng = self._fault_rng
        order = self._client_order
        n = len(order)
        arrival = np.full(n, base_visible)
        if faults.jitter > 0:
            arrival += rng.exponential(faults.jitter, n)
        dropped = None
        if faults.drop_rate > 0:
            dropped = rng.random(n) < faults.drop_rate
            self.fault_stats["dropped_links"] += int(dropped.sum())
        if faults.duplicate_rate > 0:
            dup = rng.random(n) < faults.duplicate_rate
            self.fault_stats["duplicated_links"] += int(dup.sum())
            # The duplicate copy takes its own independent propagation
            # delay; the effective arrival is the earliest surviving
            # copy, so duplication doubles as redundancy against drops.
            alt = self.now + self.sim_config.propagation.sample_many(rng, n)
            arrival = np.where(dup, np.minimum(arrival, alt), arrival)
            if dropped is not None:
                arrival = np.where(
                    dropped, np.where(dup, alt, np.inf), arrival
                )
        elif dropped is not None:
            arrival = np.where(dropped, np.inf, arrival)
        for partition, membership in zip(
            faults.partitions, self._partition_membership
        ):
            if not partition.start <= self.now < partition.end:
                continue
            group = partition.group_of(issuer)
            if group is None:
                continue
            crossing = (membership >= 0) & (membership != group)
            arrival = np.where(
                crossing, np.maximum(arrival, partition.end), arrival
            )
        times = arrival.tolist()
        # The issuer is exempt from its own link faults (a client always
        # keeps what it published) but is recorded at the clean network
        # visibility, not the publish time: early self-visibility flows
        # through the same observer/exemption mechanism as clean mode,
        # keeping always_on traces bit-identical at every quantum.
        for i, cid in enumerate(order):
            self._obs_visible[cid][tx_id] = (
                base_visible if cid == issuer else times[i]
            )

    def _publish(
        self, client_id: int, parents: tuple[str, ...], flat: np.ndarray, tags: dict
    ) -> str | None:
        """Commit a transaction at ``self.now`` with a propagation delay.

        The publish path is where injection meets defense: the payload
        is (maybe) corrupted in flight, then validated — a non-finite or
        shape-mismatched payload is **quarantined**: counted, never
        added to the tangle (so it cannot pollute the weight arena), and
        reported by returning ``None``.
        """
        if self._fault_rng is not None and self._faults.corruption_rate > 0:
            if self._fault_rng.random() < self._faults.corruption_rate:
                flat = self._corrupt(flat)
                self.fault_stats["corrupted"] += 1
        if payload_error(flat, self.tangle.spec) is not None:
            self.fault_stats["quarantined"] += 1
            return None
        tx = Transaction.from_flat(
            tx_id=self.tangle.next_tx_id(client_id),
            parents=parents,
            flat=flat,
            spec=self.tangle.spec,
            issuer=client_id,
            round_index=int(self.now),  # coarse time bucket for analysis
            tags=tags,
        )
        self.tangle.add(tx)
        delay = self.sim_config.propagation.sample(self._time_rng)
        self._published_at[tx.tx_id] = self.now
        visible = self.now + delay
        self._visible_from[tx.tx_id] = visible
        if self._obs_visible is not None:
            self._deliver(tx.tx_id, client_id, visible)
        self._own_publications.setdefault(client_id, []).append(
            (self.now, visible, tx.tx_id)
        )
        return tx.tx_id

    def _view_for(self, client_id: int, at_time: float) -> TimedTangleView:
        """The tangle as ``client_id`` sees it at ``at_time``: the
        client's own visibility map under link faults, the shared
        network map (plus issuer exemption) otherwise."""
        visible_from = (
            self._obs_visible[client_id]
            if self._obs_visible is not None
            else self._visible_from
        )
        return TimedTangleView(
            self.tangle,
            visible_from,
            at_time,
            observer=client_id,
            published_at=self._published_at,
        )

    # --------------------------------------------------- sequential stepping
    def _attack_payload(
        self, view: TimedTangleView, walk_rng: np.random.Generator
    ) -> tuple[list[str], np.ndarray]:
        """The random-weights attack, the round substrate's exact
        arithmetic (:func:`repro.substrate.round_plan._execute_attack`):
        uniform parents, one normal draw per parameter array."""
        tips = RandomTipSelector().select_tips(
            view, self.dag_config.num_tips, walk_rng
        )
        genesis = self.tangle.genesis.model_weights
        payload = [walk_rng.normal(0.0, 1.0, size=w.shape) for w in genesis]
        return tips, self.tangle.spec.flatten(payload)

    def _complete_attack_cycle(self, event: _Event) -> SimEvent:
        """An attacker's cycle: no training, a malicious publication."""
        view = self._view_for(event.client_id, event.start_time)
        walk_rng = self._rngs.get("walk", event.cycle_seq)
        tips, flat = self._attack_payload(view, walk_rng)
        tx_id = self._publish(
            event.client_id, tuple(dict.fromkeys(tips)), flat, {"malicious": True}
        )
        record = SimEvent(
            time=self.now,
            kind="train",
            client_id=event.client_id,
            published=tx_id is not None,
            tx_id=tx_id,
            start_time=event.start_time,
            quarantined=True if tx_id is None else None,
        )
        self.events.append(record)
        if event.client_id in self._active:
            self._schedule_cycle(event.client_id)
        return record

    def _complete_cycle(self, event: _Event) -> SimEvent:
        """One training cycle, the async simulator's exact sequence."""
        if event.client_id in self.sim_config.attackers:
            return self._complete_attack_cycle(event)
        client = self.clients[event.client_id]
        cfg = self.dag_config
        view = self._view_for(event.client_id, event.start_time)
        walk_rng = self._rngs.get("walk", event.cycle_seq)
        selector = build_selector(client, self.tangle, cfg)
        tips = selector.select_tips(view, cfg.num_tips, walk_rng)

        reference = client.apply_personalization(
            self._reference_weights(tips, event.start_time)
        )
        reference_accuracy = client.accuracy_of_weights(reference)
        trained, _loss = client.train(reference, fused=cfg.training_plane)
        client.update_personal_tail(trained)
        accuracy = client.accuracy_of_weights(trained)

        tx_id = None
        quarantined = None
        published = (not cfg.publish_gate) or accuracy >= reference_accuracy
        if published:
            tx_id = self._publish(
                event.client_id,
                tuple(dict.fromkeys(tips)),
                self.tangle.spec.flatten(trained),
                dict(client.data.metadata.get("tags", {})),
            )
            if tx_id is None:
                published = False
                quarantined = True
        record = SimEvent(
            time=self.now,
            kind="train",
            client_id=event.client_id,
            published=published,
            accuracy=accuracy,
            reference_accuracy=reference_accuracy,
            tx_id=tx_id,
            start_time=event.start_time,
            quarantined=quarantined,
        )
        self.events.append(record)
        if event.client_id in self._active:
            self._schedule_cycle(event.client_id)
        return record

    def _advance_one(self) -> SimEvent | None:
        """Process the single next event of any kind; None when idle."""
        if self._peek() is None:
            return None
        event = heapq.heappop(self._queue)
        self.now = event.time
        if event.kind == "join":
            record = self._apply_join(event)
        elif event.kind == "leave":
            record = self._apply_leave(event)
        elif event.kind == "crash":
            record = self._apply_crash(event)
        elif event.kind == "recover":
            record = self._apply_recover(event)
        else:
            return self._complete_cycle(event)
        self.events.append(record)
        return record

    def step(self) -> SimEvent:
        """Process events until one training cycle completes.

        Always single-cycle (ignores the quantum): the fine-grained
        probe the parity and property suites drive the engine with.
        """
        while True:
            record = self._advance_one()
            if record is None:
                raise RuntimeError("no scheduled events")
            if record.kind == "train":
                return record

    # ----------------------------------------------------- batched stepping
    def _collect_ready(
        self, end_time: float
    ) -> tuple[list[_Event], list[SimEvent | _Event]]:
        """Pop the next superstep: churn applies inline (in time order),
        cycles accumulate while they fall within ``quantum`` of the
        first one.  Nothing published by these cycles is visible to any
        of them — they were all popped before any commit.

        Returns the cycle events plus the full pop sequence (churn
        records interleaved with cycles); the commit phase walks the
        latter so ``self.events`` stays chronological even though cycle
        records are only materialized at the batch barrier."""
        ready: list[_Event] = []
        ordered: list[SimEvent | _Event] = []
        window_end: float | None = None
        while True:
            top = self._peek()
            if top is None or top.time > end_time:
                break
            if window_end is not None and top.time > window_end:
                break
            event = heapq.heappop(self._queue)
            self.now = event.time
            if event.kind == "join":
                ordered.append(self._apply_join(event))
                continue
            if event.kind == "leave":
                ordered.append(self._apply_leave(event))
                continue
            if event.kind == "crash":
                ordered.append(self._apply_crash(event))
                continue
            if event.kind == "recover":
                ordered.append(self._apply_recover(event))
                continue
            if window_end is None:
                window_end = event.time + self.sim_config.quantum
            ready.append(event)
            ordered.append(event)
        return ready, ordered

    def _batch_tips(
        self, ready: list[_Event]
    ) -> tuple[dict[int, list[str]], dict[int, np.ndarray]]:
        """The superstep's walk phase: tips per cycle (by cycle_seq).

        Members group by their issuer-exemption set — almost always
        empty, so the common case is **one** shared group per batch.  A
        group freezes one view at its earliest member's start time (no
        member observes anything it could not have seen sequentially)
        and shares one CSR snapshot:

        - *weighted*: cumulative weights are client-independent, so all
          members' particles advance through a single fused
          :func:`~repro.dag.walk_engine.lockstep_walks` call;
        - *accuracy*: scores are the candidates' accuracies on the
          selecting client's own test data — inherently per client — so
          walks run per member over the shared snapshot, each seeded
          from the client's evaluation cache;
        - *random*: uniform draws over the shared tip list, per member.

        Under link faults every client sees its own tangle, so members
        group per client — batching still fuses training, but walk
        snapshots cannot be shared across observers.  Each per-client
        group still freezes at the same batch-wide time its exemption
        set would freeze at in clean mode, so ``always_on`` (per-link
        machinery, zero fault rates) replays the clean trace bit for
        bit at every quantum.  Attacker members skip the
        walk phase entirely: their parents and payload draw from their
        per-cycle stream exactly as in sequential mode, and the payload
        comes back in the second returned mapping.
        """
        cfg = self.dag_config
        batch = next(self._batch_seq)
        attackers = self.sim_config.attackers
        link = self._obs_visible is not None
        tips_for: dict[int, list[str]] = {}
        attack_flat: dict[int, np.ndarray] = {}
        groups: dict[object, list[_Event]] = {}
        for event in ready:
            if event.client_id in attackers:
                view = self._view_for(event.client_id, event.start_time)
                rng = self._rngs.get("walk", event.cycle_seq)
                tips, flat = self._attack_payload(view, rng)
                tips_for[event.cycle_seq] = tips
                attack_flat[event.cycle_seq] = flat
                continue
            own = self._own_publications.get(event.client_id, ())
            exempt = frozenset(
                tx_id
                for published, visible, tx_id in own
                if published <= event.start_time < visible
            )
            key = (exempt, event.client_id) if link else exempt
            groups.setdefault(key, []).append(event)

        # Freeze times are per exemption set across the whole batch, so
        # the per-client grouping under link faults cannot shift a view
        # later than clean mode's shared group would have frozen it.
        freeze_time: dict[frozenset, float] = {}
        for key, members in groups.items():
            exempt = key[0] if link else key
            earliest = min(member.start_time for member in members)
            if exempt not in freeze_time or earliest < freeze_time[exempt]:
                freeze_time[exempt] = earliest

        for ordinal, (key, members) in enumerate(groups.items()):
            exempt = key[0] if link else key
            view_time = freeze_time[exempt]
            # A non-empty exemption set names one issuer's own
            # transactions, so such a group is necessarily
            # single-client.  The observer is granted only alongside a
            # non-empty exemption — the same early-self-visibility rule
            # in clean and link mode, so always_on batches replay the
            # clean grouping exactly.
            observer = members[0].client_id if exempt else None
            view = TimedTangleView(
                self.tangle,
                self._obs_visible[members[0].client_id]
                if link
                else self._visible_from,
                view_time,
                observer=observer,
                published_at=self._published_at,
            )
            if cfg.selector == "random":
                tip_ids = view.tips()
                for member in members:
                    rng = self._rngs.get("walk", member.cycle_seq)
                    distinct = min(cfg.num_tips, len(tip_ids))
                    chosen = list(rng.choice(len(tip_ids), size=distinct, replace=False))
                    selected = [tip_ids[i] for i in chosen]
                    while len(selected) < cfg.num_tips:
                        selected.append(tip_ids[int(rng.integers(0, len(tip_ids)))])
                    tips_for[member.cycle_seq] = selected
                continue
            snapshot = walk_engine.TangleSnapshot.build(view)
            if cfg.selector == "weighted":
                weights = snapshot.cumulative_weights_float()
                rng = self._rngs.get("walk-group", batch, ordinal)
                starts = walk_engine.batched_walk_starts(
                    snapshot,
                    cfg.num_tips * len(members),
                    rng,
                    depth_range=cfg.depth_range,
                )
                finals = walk_engine.lockstep_walks(
                    snapshot,
                    starts,
                    lambda nodes, table=weights: table[nodes],
                    alpha=cfg.weighted_alpha,
                    normalization="standard",
                    rng=rng,
                    score_memo=weights,
                )
                for i, member in enumerate(members):
                    span = finals[i * cfg.num_tips : (i + 1) * cfg.num_tips]
                    tips_for[member.cycle_seq] = [snapshot.ids[n] for n in span]
                continue
            for member in members:
                client = self.clients[member.client_id]
                rng = self._rngs.get("walk", member.cycle_seq)
                cache = client.tx_accuracy_cache()
                memo = np.array(
                    [cache.get(tx_id, np.nan) for tx_id in snapshot.ids]
                )
                starts = walk_engine.batched_walk_starts(
                    snapshot, cfg.num_tips, rng, depth_range=cfg.depth_range
                )

                def score_fn(nodes, client=client, snapshot=snapshot):
                    return client.tx_accuracies(
                        self.tangle, [snapshot.ids[n] for n in nodes]
                    )

                finals = walk_engine.lockstep_walks(
                    snapshot,
                    starts,
                    score_fn,
                    alpha=cfg.alpha,
                    normalization=cfg.normalization,
                    rng=rng,
                    score_memo=memo,
                )
                tips_for[member.cycle_seq] = [snapshot.ids[n] for n in finals]
        return tips_for, attack_flat

    def _process_batch(
        self, ready: list[_Event], ordered: list[SimEvent | _Event]
    ) -> list[SimEvent]:
        """Run one superstep: walks, one fused training pass, commits.

        Phases run over the whole batch, but everything that consumes a
        per-client stream (batch planning via the client's shuffle rng)
        or mutates shared state (publication) iterates in pop order —
        which is also per-cycle time order, so commits replay exactly
        the sequence a finer quantum would produce."""
        if not ready:
            for entry in ordered:  # churn-only superstep
                self.now = entry.time
                self.events.append(entry)
            return []
        cfg = self.dag_config
        tips_for, attack_flat = self._batch_tips(ready)

        # Honest members plan one lockstep training job each, tagged by
        # cycle_seq (train_grouped keys its results by tag, so attacker
        # members — which train nothing — simply plan no job).
        reference_accuracy: dict[int, float] = {}
        model_jobs: dict[int, tuple] = {}  # id(model) -> (model, jobs)
        for event in ready:
            if event.cycle_seq in attack_flat:
                continue
            client = self.clients[event.client_id]
            reference = client.apply_personalization(
                self._reference_weights(tips_for[event.cycle_seq], event.start_time)
            )
            reference_accuracy[event.cycle_seq] = client.accuracy_of_weights(reference)
            job = plan_client_job(
                client, client.model.flat_spec.flatten(reference), event.cycle_seq
            )
            model_jobs.setdefault(id(client.model), (client.model, []))[1].append(job)

        # One lockstep training-plane pass for the whole superstep.
        trained = train_grouped(list(model_jobs.values())) if model_jobs else {}

        records: list[SimEvent] = []
        for entry in ordered:
            if isinstance(entry, SimEvent):  # churn popped mid-window
                self.now = entry.time
                self.events.append(entry)
                continue
            event = entry
            client = self.clients[event.client_id]
            parents = tuple(dict.fromkeys(tips_for[event.cycle_seq]))
            self.now = event.time
            if event.cycle_seq in attack_flat:
                tx_id = self._publish(
                    event.client_id, parents, attack_flat[event.cycle_seq],
                    {"malicious": True},
                )
                record = SimEvent(
                    time=event.time,
                    kind="train",
                    client_id=event.client_id,
                    published=tx_id is not None,
                    tx_id=tx_id,
                    start_time=event.start_time,
                    quarantined=True if tx_id is None else None,
                )
                self.events.append(record)
                records.append(record)
                if event.client_id in self._active:
                    self._schedule_cycle(event.client_id)
                continue
            row, _loss = trained[event.cycle_seq]
            if client.personal_params:
                client.update_personal_tail(client.model.flat_spec.unflatten(row))
            accuracy = client.accuracy_of_flat(row)
            published = (
                not cfg.publish_gate
            ) or accuracy >= reference_accuracy[event.cycle_seq]
            tx_id = None
            quarantined = None
            if published:
                tx_id = self._publish(
                    event.client_id,
                    parents,
                    row,
                    dict(client.data.metadata.get("tags", {})),
                )
                if tx_id is None:
                    published = False
                    quarantined = True
            record = SimEvent(
                time=event.time,
                kind="train",
                client_id=event.client_id,
                published=published,
                accuracy=accuracy,
                reference_accuracy=reference_accuracy[event.cycle_seq],
                tx_id=tx_id,
                start_time=event.start_time,
                quarantined=quarantined,
            )
            self.events.append(record)
            records.append(record)
            if event.client_id in self._active:
                self._schedule_cycle(event.client_id)
        return records

    def _run_one_batch(self, end_time: float) -> list[SimEvent] | None:
        """One superstep up to ``end_time``; ``None`` when nothing fired
        at all (an empty list means churn-only progress)."""
        ready, ordered = self._collect_ready(end_time)
        if not ordered:
            return None
        return self._process_batch(ready, ordered)

    # ----------------------------------------------------------- run drivers
    def run_until(self, end_time: float) -> list[SimEvent]:
        """Process all events up to ``end_time``; returns train events."""
        processed: list[SimEvent] = []
        if self.sim_config.quantum > 0:
            while True:
                batch = self._run_one_batch(end_time)
                if batch is None:
                    break
                processed.extend(batch)
        else:
            while (top := self._peek()) is not None and top.time <= end_time:
                record = self._advance_one()
                if record.kind == "train":
                    processed.append(record)
        self.now = max(self.now, end_time)
        return processed

    def run_cycles(self, count: int) -> list[SimEvent]:
        """Process at least ``count`` training cycles.

        Sequential mode processes exactly ``count``; quantum-batched
        mode completes the superstep containing the ``count``-th cycle,
        so it may overshoot."""
        if self.sim_config.quantum <= 0:
            return [self.step() for _ in range(count)]
        processed: list[SimEvent] = []
        while len(processed) < count:
            batch = self._run_one_batch(float("inf"))
            if batch is None:
                raise RuntimeError("no scheduled events")
            processed.extend(batch)
        return processed

    # ---------------------------------------------------------- round compat
    def run_rounds(self, rounds: int, clients_per_round: int = 10) -> list[RoundRecord]:
        """Drive ``rounds`` discrete rounds through the round substrate.

        The round schedule is the degenerate event schedule whose
        quantum spans a whole round and whose latency is the round
        barrier, so the engine runs it with the exact machinery of
        :class:`repro.fl.dag_learning.TangleLearning` —
        :func:`~repro.substrate.execute_unit` /
        :func:`~repro.substrate.run_training_plane_round` over a frozen
        view, ids assigned at the barrier in active-client order.
        Without churn the produced :class:`RoundRecord` sequence is
        bit-identical to ``TangleLearning.run`` for the same seed.

        Each round advances ``now`` by one time unit; publications
        become network-visible at the barrier (no propagation draws, so
        the ``"times"`` stream is untouched — exactly like the round
        simulator, which has no such stream at all).  Churn events up
        to the round's start apply before sampling; queued cycle events
        are not consumed here (the regimes are not meant to interleave
        within one run).
        """
        return [self._run_round(clients_per_round) for _ in range(rounds)]

    def _run_round(self, clients_per_round: int) -> RoundRecord:
        self.now = float(self.round_index)
        while (top := self._peek()) is not None and (
            top.time <= self.now and top.kind != "cycle"
        ):
            self._advance_one()
        if self._sampler is None:
            self._sampler = self._rngs.get("round-sampler")
        if self._round_executor is None:
            self._round_executor = make_executor(self.dag_config.parallelism)

        eligible = sorted(self._active)
        active_ids = sorted(
            self._sampler.choice(
                eligible, size=min(clients_per_round, len(eligible)), replace=False
            ).tolist()
        )
        record = RoundRecord(round_index=self.round_index, active_clients=active_ids)
        delay = self.dag_config.visibility_delay
        view = (
            self.tangle
            if delay <= 0
            else TangleView(self.tangle, self.round_index - 1 - delay)
        )
        attackers = self.sim_config.attackers
        units = [
            ClientWorkUnit(
                client_id=client_id,
                round_index=self.round_index,
                attack="random_weights" if client_id in attackers else None,
            )
            for client_id in active_ids
        ]
        # Shared coordinator half (same call TangleLearning makes):
        # shared-memory export when the executor fans out, route probe,
        # dispatch — results are bit-identical on every path.
        results = execute_round(
            self._round_executor,
            tangle=self.tangle,
            view=view,
            config=self.dag_config,
            rng_factory=self._rngs,
            units=units,
            clients=self.clients,
        )

        barrier_time = float(self.round_index + 1)
        self.now = barrier_time
        for unit, result in zip(units, results):
            client_id = result.client_id
            if unit.attack is None:  # honest client bookkeeping
                apply_result(self.clients[client_id], result)
                record.walk_duration[client_id] = result.walk_duration
                record.walk_evaluations[client_id] = result.walk_evaluations
                record.reference_accuracy[client_id] = result.reference_accuracy
                record.client_accuracy[client_id] = result.test_accuracy
                record.client_loss[client_id] = result.test_loss
            tx_id = None
            if result.publish:
                tx = Transaction.from_flat(
                    tx_id=self.tangle.next_tx_id(client_id),
                    parents=result.parents,
                    flat=result.flat_weights,
                    spec=self.tangle.spec,
                    issuer=client_id,
                    round_index=self.round_index,
                    tags=result.tags,
                )
                self.tangle.add(tx)
                record.published.append(tx.tx_id)
                tx_id = tx.tx_id
                # Barrier visibility: published and network-visible at
                # the round boundary, keeping the timed maps coherent.
                self._published_at[tx_id] = barrier_time
                self._visible_from[tx_id] = barrier_time
                self._own_publications.setdefault(client_id, []).append(
                    (barrier_time, barrier_time, tx_id)
                )
            self.events.append(
                SimEvent(
                    time=barrier_time,
                    kind="train",
                    client_id=client_id,
                    published=result.publish,
                    accuracy=result.test_accuracy,
                    reference_accuracy=result.reference_accuracy,
                    tx_id=tx_id,
                    start_time=float(self.round_index),
                )
            )
        self.round_index += 1
        self.round_history.append(record)
        return record
