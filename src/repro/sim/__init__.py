"""repro.sim — the event-driven tangle simulator.

One discrete-event engine (:class:`EventDrivenTangleLearning`) covers
the spectrum between the repo's two fixed-schedule simulators:

- at ``quantum = 0`` it *is* the asynchronous simulator — same rng
  streams, same draw order, bit-identical publish traces under
  :meth:`SimConfig.async_compat` (the parity suite pins this);
- at ``quantum > 0`` cycles completing close together run as fused
  supersteps (shared walk snapshots, one lockstep-training pass), the
  shape that makes 1000-client scenarios a sequence of wide batches;
- :meth:`EventDrivenTangleLearning.run_rounds` drives the round
  substrate directly, reproducing ``TangleLearning`` records bit for
  bit without churn.

On top of the schedule the engine adds what a deployment study needs
and rounds cannot express: per-client latency laws and compute rates
(:class:`LatencyModel`, stragglers), mid-run membership churn
(:class:`ChurnEvent`, :func:`random_churn`), and staleness-aware
reference aggregation (:class:`StalenessPolicy`).  See
``docs/architecture.md`` for the event lifecycle.
"""

from repro.sim.config import (
    ChurnEvent,
    LatencyModel,
    SimConfig,
    StalenessPolicy,
    random_churn,
)
from repro.sim.engine import EventDrivenTangleLearning, SimEvent
from repro.sim.faults import FaultModel, Partition, apply_corruption

__all__ = [
    "ChurnEvent",
    "EventDrivenTangleLearning",
    "FaultModel",
    "LatencyModel",
    "Partition",
    "SimConfig",
    "SimEvent",
    "StalenessPolicy",
    "apply_corruption",
    "random_churn",
]
