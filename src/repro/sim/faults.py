"""The fault-injection plane of the event-driven simulator.

:class:`FaultModel` declares the systems-level failures a scenario
injects under :class:`~repro.sim.engine.EventDrivenTangleLearning` — the
messy network the Middleware setting assumes and the round simulators
cannot express:

- **per-link message faults** — every publication is delivered per
  receiving client, and each link independently drops the copy
  (``drop_rate``), duplicates it (``duplicate_rate``; the effective
  arrival is the *earliest surviving* copy, so duplication is also
  redundancy against drops), or delays it by an extra exponential
  ``jitter`` (which reorders deliveries across receivers);
- **transient partitions** — scheduled :class:`Partition` windows
  during which messages crossing group boundaries are held until the
  partition heals (visible no earlier than the window's end);
- **client crashes** — each scheduled training cycle crashes mid-way
  with probability ``crash_rate``.  Unlike a graceful churn ``leave``
  (which merely stops scheduling new work), a crash *loses in-flight
  state*: the running cycle is aborted unpublished and the client's
  evaluation cache is wiped, then the client rejoins after an
  exponential ``recovery`` delay;
- **payload corruption** — each publication is corrupted in flight with
  probability ``corruption_rate``: ``"nan"`` / ``"inf"`` poison a
  random tenth of the weights with non-finite values (caught by the
  publish-path quarantine), ``"noise"`` replaces the whole vector with
  large finite garbage (admitted, and left to the walk's accuracy bias
  and the robust aggregators — the paper's implicit defense).

**Determinism contract.**  Every stochastic fault decision draws from
the engine's dedicated ``"faults"`` RNG stream, in a fixed order tied
to the event schedule (per-cycle draws at scheduling time, per-link
blocks at publication commit time), so a fault schedule is a pure
function of ``(seed, SimConfig)`` and replays identically.  Knobs at
their inert defaults draw **nothing** — a ``FaultModel()`` (or any
config with every rate at zero and no partitions) leaves the engine on
the exact clean code path, bit-for-bit.  ``always_on`` forces the
per-link delivery machinery active with zero fault rates: the trace
stays identical to the clean run while the bookkeeping overhead becomes
measurable (the ``BENCH_robustness.json`` overhead floor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_probability

__all__ = ["FaultModel", "Partition", "apply_corruption"]

_CORRUPTION_MODES = ("nan", "inf", "noise")


def apply_corruption(
    flat: np.ndarray, mode: str, rng: np.random.Generator
) -> np.ndarray:
    """One in-flight payload corruption of ``flat``, drawn from ``rng``.

    The shared kernel behind every corruption injection site — the event
    engine's publish path and the service gateway's chaos adapter — so
    the modes mean the same thing everywhere:

    - ``"noise"`` replaces the whole vector with large finite garbage
      (one ``rng.normal`` block): admitted by the publish quarantine and
      left to the walk's accuracy bias and the robust aggregators;
    - ``"nan"`` / ``"inf"`` poison a random tenth of the coordinates
      with non-finite values (one ``rng.integers`` block): caught at the
      publish gate, never reaching the weight arena.

    Always returns a fresh array; the input is never mutated.  Draw
    order is part of the fault plane's determinism contract — exactly
    one block per call, so schedules replay bit-for-bit per seed.
    """
    if mode not in _CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; expected one of {_CORRUPTION_MODES}"
        )
    if mode == "noise":
        return rng.normal(0.0, 100.0, flat.shape[0])
    flat = np.array(flat, dtype=np.float64, copy=True)
    count = max(1, flat.shape[0] // 10)
    idx = rng.integers(0, flat.shape[0], size=count)
    flat[idx] = np.nan if mode == "nan" else np.inf
    return flat


@dataclass(frozen=True)
class Partition:
    """A transient network partition over ``[start, end)``.

    ``groups`` are disjoint sets of client ids; while the partition is
    live, a message published by a member of one group reaches members
    of *other* groups no earlier than ``end`` (held until the partition
    heals).  Clients not listed in any group — and messages published
    outside the window — are unaffected.
    """

    start: float
    end: float
    groups: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(
                f"partition window must have start < end, got "
                f"[{self.start}, {self.end})"
            )
        groups = tuple(frozenset(g) for g in self.groups)
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set[int] = set()
        for group in groups:
            if seen & group:
                raise ValueError(f"partition groups overlap: {sorted(seen & group)}")
            seen |= group
        object.__setattr__(self, "groups", groups)

    def group_of(self, client_id: int) -> int | None:
        """The index of ``client_id``'s group, or ``None`` if unlisted."""
        for index, group in enumerate(self.groups):
            if client_id in group:
                return index
        return None


@dataclass(frozen=True)
class FaultModel:
    """Declarative fault schedule parameters (see module docstring).

    All rates are probabilities; ``jitter`` and ``recovery`` are means
    of exponential delays (zero = disabled / instant, drawing nothing).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    jitter: float = 0.0
    partitions: tuple[Partition, ...] = ()
    crash_rate: float = 0.0
    recovery: float = 1.0
    corruption_rate: float = 0.0
    corruption_mode: str = "nan"
    always_on: bool = False

    def __post_init__(self) -> None:
        check_probability("drop_rate", self.drop_rate)
        check_probability("duplicate_rate", self.duplicate_rate)
        check_probability("crash_rate", self.crash_rate)
        check_probability("corruption_rate", self.corruption_rate)
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter!r}")
        if self.recovery < 0:
            raise ValueError(f"recovery must be >= 0, got {self.recovery!r}")
        if self.corruption_mode not in _CORRUPTION_MODES:
            raise ValueError(
                f"unknown corruption mode {self.corruption_mode!r}; "
                f"expected one of {_CORRUPTION_MODES}"
            )
        object.__setattr__(self, "partitions", tuple(self.partitions))

    @property
    def link_faults(self) -> bool:
        """Per-link delivery machinery needed (per-observer visibility)."""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.jitter > 0
            or bool(self.partitions)
            or self.always_on
        )

    @property
    def enabled(self) -> bool:
        """Any fault mechanism active (``False`` = the clean code path)."""
        return self.link_faults or self.crash_rate > 0 or self.corruption_rate > 0
