"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array together with its accumulated gradient.

    Layers expose their parameters through :meth:`Layer.parameters`;
    optimizers read ``grad`` and update ``value`` in place.  The gradient is
    accumulated by layer ``backward`` passes and must be cleared (via
    :meth:`zero_grad`) between optimization steps — optimizers do this
    automatically after applying an update.
    """

    __slots__ = ("name", "value", "grad")

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.value.shape})"
