"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array together with its accumulated gradient.

    Layers expose their parameters through :meth:`Layer.parameters`;
    optimizers read ``grad`` and update ``value`` in place.  The gradient is
    accumulated by layer ``backward`` passes and must be cleared (via
    :meth:`zero_grad`) between optimization steps — ``train_batch`` does
    this exactly once per batch, at the point of consumption (before the
    backward pass accumulates); optimizers leave gradients in place.
    """

    __slots__ = ("name", "value", "grad")

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def assign(self, value: np.ndarray) -> None:
        """Copy ``value`` into the existing value buffer, in place.

        Keeps the ``value`` array identity stable (optimizer
        velocity/moment slots are keyed by parameter identity), so hot
        weight-loading paths never reallocate.  Casts as needed, e.g.
        when loading a float32 arena row into float64 parameters.  The
        gradient is left untouched: it is zeroed where it is consumed
        (before a backward pass accumulates into it), not on every load —
        walk evaluation loads weights thousands of times without ever
        training.
        """
        np.copyto(self.value, value, casting="same_kind")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.value.shape})"
