"""Numeric gradient checking used by the test-suite.

Central finite differences against the analytic backward pass.  This is a
first-class part of the library (not test-only code) so downstream users
adding layers can verify them the same way.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import softmax_cross_entropy
from repro.nn.module import Layer

__all__ = ["numeric_gradient", "check_layer_gradients", "max_relative_error"]


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Max element-wise relative error between two gradient arrays."""
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denom))


def numeric_gradient(fn, array: np.ndarray, *, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array``.

    ``fn`` must read ``array`` (mutated in place between calls).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    eps: float = 1e-6,
    input_differentiable: bool = True,
) -> dict[str, float]:
    """Verify a layer's backward pass against finite differences.

    The layer output is reduced to a scalar through softmax cross-entropy
    when ``labels`` is given (output must be ``(N, K)``), otherwise through
    a fixed random-weighted sum, which exercises arbitrary output shapes.

    Returns a map of max relative errors: one entry per parameter plus
    ``"input"`` when ``input_differentiable``.
    """
    rng = np.random.default_rng(0)
    out_probe: np.ndarray | None = None

    def loss_from_output(out: np.ndarray) -> float:
        nonlocal out_probe
        if labels is not None:
            loss, _ = softmax_cross_entropy(out, labels)
            return loss
        if out_probe is None:
            out_probe = rng.normal(size=out.shape)
        return float(np.sum(out * out_probe))

    def forward_loss() -> float:
        return loss_from_output(layer.forward(x, train=False))

    # Analytic pass.
    layer.zero_grad()
    out = layer.forward(x, train=False)
    if labels is not None:
        _, grad_out = softmax_cross_entropy(out, labels)
    else:
        loss_from_output(out)  # initialize probe
        grad_out = out_probe
    grad_in = layer.backward(np.asarray(grad_out))

    errors: dict[str, float] = {}
    for param in layer.parameters():
        analytic = param.grad.copy()
        numeric = numeric_gradient(forward_loss, param.value, eps=eps)
        errors[param.name] = max_relative_error(analytic, numeric)
    if input_differentiable:
        numeric = numeric_gradient(forward_loss, x, eps=eps)
        errors["input"] = max_relative_error(np.asarray(grad_in), numeric)
    return errors
