"""High-level classifier wrapper around a :class:`Sequential` network."""

from __future__ import annotations

import numpy as np

from repro.nn.losses import softmax_cross_entropy, softmax_probabilities
from repro.nn.module import Sequential
from repro.nn.optimizers import SGD
from repro.nn.serialization import FlatSpec, Weights, clone_weights

__all__ = ["Classifier", "plan_local_batches"]


def plan_local_batches(
    n: int,
    rng: np.random.Generator,
    *,
    epochs: int = 1,
    batch_size: int = 10,
    max_batches: int | None = None,
) -> list[np.ndarray]:
    """The batch index schedule of :meth:`Classifier.train_local`.

    Draws the per-epoch shuffles from ``rng`` exactly as the training
    loop historically did (one permutation per epoch, extra permutations
    to fill ``max_batches`` when the dataset is smaller than the batch
    budget), and returns all epochs' index batches as one flat list in
    training order.  Both :meth:`Classifier.train_local` and the
    lockstep training plane build their schedules here, so the plane's
    supersteps consume the client generator identically to the
    sequential loop — schedule planning IS the loop's rng consumption.
    """
    if n == 0:
        raise ValueError("cannot train on an empty dataset")
    schedule: list[np.ndarray] = []
    for _ in range(epochs):
        order = rng.permutation(n)
        batches = [order[s : s + batch_size] for s in range(0, n, batch_size)]
        if max_batches is not None:
            while len(batches) < max_batches:
                extra_order = rng.permutation(n)
                batches.extend(
                    extra_order[s : s + batch_size] for s in range(0, n, batch_size)
                )
            batches = batches[:max_batches]
        schedule.extend(batches)
    return schedule


class Classifier:
    """A classification model: network producing logits + CE loss.

    Provides the operations federated-learning code needs: batched
    training with a fixed batch budget, evaluation (loss + accuracy), and
    weight get/set so the same instance can be re-pointed at arbitrary
    weights (crucial for cheap model evaluation during the random walk).
    Weight loading is strictly in-place — parameter value and gradient
    buffers are allocated once at construction and reused for every load
    (the walk loads weights thousands of times without ever training).
    :meth:`load_flat` is the flat-plane fast path: point the model at an
    arena row or any contiguous vector without touching per-layer lists.
    """

    def __init__(self, net: Sequential):
        self.net = net
        self._params = net.parameters()
        self._spec = FlatSpec.from_parameters(self._params)

    # ----------------------------------------------------------- weights
    @property
    def flat_spec(self) -> FlatSpec:
        """Flat layout (shapes/offsets) of this model's parameters."""
        return self._spec

    def get_weights(self) -> Weights:
        """Copy of the current weights, in parameter order."""
        return [p.value.copy() for p in self._params]

    def get_flat(self) -> np.ndarray:
        """Copy of the current weights as one flat vector."""
        out = np.empty(self._spec.total, dtype=np.float64)
        for param, offset, size in zip(
            self._params, self._spec.offsets, self._spec.sizes
        ):
            out[offset : offset + size] = param.value.reshape(-1)
        return out

    def set_weights(self, weights: Weights) -> None:
        """Load weights (copied, in place) into the model."""
        if len(weights) != len(self._params):
            raise ValueError(
                f"expected {len(self._params)} arrays, got {len(weights)}"
            )
        for param, value in zip(self._params, weights):
            value = np.asarray(value)
            if param.value.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {param.name}: "
                    f"{param.value.shape} vs {value.shape}"
                )
            param.assign(value)

    def load_flat(self, flat: np.ndarray) -> None:
        """Load weights from one flat vector, copying in place.

        The fast path for walk evaluation over arena-resident models: no
        per-layer list is materialized and no buffer is allocated.
        """
        flat = np.asarray(flat)
        if flat.shape != (self._spec.total,):
            raise ValueError(
                f"expected a ({self._spec.total},) flat vector, got {flat.shape}"
            )
        for param, offset, size in zip(
            self._params, self._spec.offsets, self._spec.sizes
        ):
            param.assign(flat[offset : offset + size].reshape(param.value.shape))

    @property
    def parameter_count(self) -> int:
        return sum(p.size for p in self._params)

    # ---------------------------------------------------------- inference
    def logits(self, x: np.ndarray) -> np.ndarray:
        return self.net.forward(x, train=False)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return self.logits(x).argmax(axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Predicted class probabilities."""
        return softmax_probabilities(self.logits(x))

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, *, batch_size: int = 256
    ) -> tuple[float, float]:
        """Return ``(mean_loss, accuracy)`` over a dataset."""
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        total_loss = 0.0
        correct = 0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.net.forward(xb, train=False)
            loss, _ = softmax_cross_entropy(logits, yb)
            total_loss += loss * xb.shape[0]
            correct += int((logits.argmax(axis=1) == yb).sum())
        return total_loss / n, correct / n

    def accuracy(
        self, x: np.ndarray, y: np.ndarray, *, batch_size: int = 256
    ) -> float:
        """Accuracy only — skips the cross-entropy computation.

        The random walk evaluates candidate models by accuracy alone, so
        this path never builds softmax probabilities or the loss; it is
        exactly :meth:`evaluate`'s accuracy for the same inputs (same
        forward pass, same argmax).
        """
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        correct = 0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.net.forward(xb, train=False)
            correct += int((logits.argmax(axis=1) == yb).sum())
        return correct / n

    @property
    def supports_fused_eval(self) -> bool:
        """True when every layer has a fused multi-model kernel.

        When False, :meth:`accuracy_many` still works — it falls back to
        the sequential per-model loop (:meth:`load_flat` +
        :meth:`accuracy`) — it just cannot fuse the models' forwards.
        """
        return self.net.fused_eval

    @property
    def supports_fused_train(self) -> bool:
        """True when every layer has a fused multi-model *training* kernel.

        The gate for the lockstep training plane
        (:mod:`repro.nn.training_plane`): Dense/activation/reshape/
        dropout stacks qualify; conv, LSTM, embedding, and pooling
        layers do not, and models containing them train through the
        automatic per-model fallback instead.
        """
        return self.net.fused_train

    def accuracy_many(
        self, flat_rows: np.ndarray, x: np.ndarray, y: np.ndarray, *, batch_size: int = 256
    ) -> np.ndarray:
        """Accuracy of ``k`` models (rows of a ``(k, P)`` matrix) at once.

        The walk's fused evaluation plane: the rows — typically a slab
        slice straight out of a tangle's weight arena — are viewed as
        per-parameter ``(k, *shape)`` stacks (no weight copies) and every
        model's forward runs in one vectorized pass per batch
        (:meth:`Sequential.forward_many`).  ``k`` is one walk step's
        uncached candidates, or — under the lockstep multi-walk engine —
        the deduplicated union frontier of every live particle of a
        selection, the widest batches this entry point receives.  The batched kernels perform
        the same per-model numpy products as the sequential path, so in
        float64 the result is bit-identical to calling :meth:`load_flat`
        + :meth:`accuracy` per row — which remains the automatic
        fallback whenever a layer lacks a fused kernel (conv, LSTM,
        embedding, pooling).

        Note the fused path never touches the model's own parameter
        buffers; the fallback (like any :meth:`load_flat`) leaves the
        last row's weights loaded.
        """
        rows = np.asarray(flat_rows)
        if rows.ndim != 2 or rows.shape[1] != self._spec.total:
            raise ValueError(
                f"expected a (k, {self._spec.total}) matrix, got shape {rows.shape}"
            )
        k = rows.shape[0]
        if k == 0:
            return np.empty(0, dtype=np.float64)
        if not self.supports_fused_eval:
            out = np.empty(k, dtype=np.float64)
            for i in range(k):
                self.load_flat(rows[i])
                out[i] = self.accuracy(x, y, batch_size=batch_size)
            return out
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        if rows.dtype != np.float64:
            # Match load_flat's cast-on-assign (e.g. float32 arenas).
            rows = rows.astype(np.float64)
        params = self._spec.unflatten_many(rows)
        correct = np.zeros(k, dtype=np.int64)
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits, batched = self.net.forward_many(xb, params)
            if not batched:  # degenerate: no parametered layer in the net
                logits = np.broadcast_to(logits, (k,) + logits.shape)
            correct += (logits.argmax(axis=-1) == yb).sum(axis=1)
        return correct / n

    # ----------------------------------------------------------- training
    def train_batch(self, x: np.ndarray, y: np.ndarray, optimizer: SGD) -> float:
        """One optimizer step on a single batch; returns the batch loss."""
        # Backward passes accumulate into the grad buffers; zero them
        # here, the one place they are consumed.  This is the *only*
        # zeroing per batch — optimizers deliberately leave gradients in
        # place after a step, so neither interleaved weight loads nor
        # optimizer steps pay a redundant O(P) clearing pass.
        for param in self._params:
            param.zero_grad()
        logits = self.net.forward(x, train=True)
        loss, grad = softmax_cross_entropy(logits, y)
        self.net.backward(grad)
        optimizer.step(self._params)
        return loss

    def train_local(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer: SGD,
        rng: np.random.Generator,
        *,
        epochs: int = 1,
        batch_size: int = 10,
        max_batches: int | None = None,
    ) -> float:
        """Local training loop used by all FL clients.

        ``max_batches`` caps the number of batches *per epoch* (the paper
        fixes the number of local batches to equalize compute across
        clients with unevenly sized datasets).  Batches are sampled by
        shuffling; when the dataset is smaller than the batch budget the
        shuffled data is recycled.  Returns the mean batch loss across the
        whole call.

        The schedule comes from :func:`plan_local_batches`, the shared
        planner the lockstep training plane also uses — so fused and
        sequential training see identical batches for identical rng
        state.
        """
        batches = plan_local_batches(
            x.shape[0],
            rng,
            epochs=epochs,
            batch_size=batch_size,
            max_batches=max_batches,
        )
        losses = [self.train_batch(x[idx], y[idx], optimizer) for idx in batches]
        return float(np.mean(losses))

    def clone_initial_weights(self) -> Weights:
        """Alias of :meth:`get_weights` kept for API clarity at call sites."""
        return clone_weights(self.get_weights())
