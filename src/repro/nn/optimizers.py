"""SGD-family optimizers.

``ProximalSGD`` implements the FedProx local objective: plain SGD plus a
proximal pull ``mu * (w - w_ref)`` towards the weights received from the
server at the start of the round.  ``Adam`` is provided for users who
extend the library beyond the paper's plain-SGD setting.  All optimizers
support global-norm gradient clipping (useful for LSTM stability).

Gradient lifecycle: optimizers *consume* ``Parameter.grad`` and leave it
in place — gradients are zeroed where they are consumed next (at the top
of :meth:`Classifier.train_batch <repro.nn.model.Classifier.train_batch>`,
before a backward pass accumulates), never redundantly after a step.
Callers driving ``step`` by hand must zero gradients between steps
themselves.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter
from repro.utils.validation import check_positive

__all__ = ["SGD", "ProximalSGD", "Adam", "clip_gradients"]


def clip_gradients(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    check_positive("max_norm", max_norm)
    total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in params))
    if total > max_norm and total > 0:
        factor = max_norm / total
        for param in params:
            param.grad *= factor
    return float(total)


class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float, *, momentum: float = 0.0, clip_norm: float | None = None):
        self.lr = check_positive("lr", lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if clip_norm is not None:
            check_positive("clip_norm", clip_norm)
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[Parameter]) -> None:
        """Apply one update; gradients are left in place (zeroed where
        consumed, not here — see the module docstring)."""
        if self.clip_norm is not None:
            clip_gradients(params, self.clip_norm)
        for param in params:
            update = self._direction(param)
            param.value -= self.lr * update

    def _direction(self, param: Parameter) -> np.ndarray:
        grad = param.grad
        if self.momentum == 0.0:
            return grad
        key = id(param)
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param.value)
        velocity = self.momentum * velocity + grad
        self._velocity[key] = velocity
        return velocity


class ProximalSGD(SGD):
    """SGD with a proximal term anchoring the weights to a reference.

    The effective gradient is ``grad + mu * (w - w_ref)``, matching the
    FedProx local subproblem (Li et al.).  Set the reference at the start
    of each federated round with :meth:`set_reference`.
    """

    def __init__(self, lr: float, mu: float, *, momentum: float = 0.0):
        super().__init__(lr, momentum=momentum)
        check_positive("mu", mu, strict=False)
        self.mu = mu
        self._reference: list[np.ndarray] | None = None

    def set_reference(self, weights: list[np.ndarray]) -> None:
        """Anchor subsequent updates to ``weights`` (copied)."""
        self._reference = [np.array(w, dtype=np.float64) for w in weights]

    def step(self, params: list[Parameter]) -> None:
        if self._reference is not None:
            if len(self._reference) != len(params):
                raise ValueError(
                    f"reference has {len(self._reference)} arrays, "
                    f"model has {len(params)} parameters"
                )
            for param, ref in zip(params, self._reference):
                param.grad += self.mu * (param.value - ref)
        super().step(params)


class Adam:
    """Adam (Kingma & Ba) with bias correction and optional clipping."""

    def __init__(
        self,
        lr: float = 1e-3,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip_norm: float | None = None,
    ):
        self.lr = check_positive("lr", lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        check_positive("eps", eps)
        if clip_norm is not None:
            check_positive("clip_norm", clip_norm)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[Parameter]) -> None:
        """Apply one Adam update; gradients are left in place."""
        if self.clip_norm is not None:
            clip_gradients(params, self.clip_norm)
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param in params:
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.value)
                v = np.zeros_like(param.value)
            m = self.beta1 * m + (1.0 - self.beta1) * param.grad
            v = self.beta2 * v + (1.0 - self.beta2) * param.grad**2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
