"""Layer base class and the :class:`Sequential` container."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Layer", "Sequential"]


class Layer:
    """Base class for all layers.

    A layer transforms an input array in :meth:`forward` and propagates
    gradients in :meth:`backward`.  ``backward`` must be called with the
    gradient of the loss w.r.t. the layer's *output* and returns the
    gradient w.r.t. its *input*; parameter gradients are *accumulated* into
    ``Parameter.grad``.  Layers cache whatever they need between the two
    calls, so a forward/backward pair must not be interleaved with another
    forward on the same layer instance.

    **Fused multi-model evaluation.**  Layers that can evaluate ``k``
    models' parameters in one vectorized pass set ``fused_eval = True``
    and implement :meth:`forward_many`.  The contract:

    - ``params`` holds this layer's parameters as ``(k, *shape)`` stacks
      (one per entry of :meth:`parameters`, in the same order), sliced
      from a ``(k, P)`` weight matrix by
      :meth:`~repro.nn.serialization.FlatSpec.unflatten_many`;
    - ``batched`` says whether ``x`` already carries the leading model
      axis (``(k, batch, ...)``).  The input starts *shared* (plain
      ``(batch, ...)``, no model axis) and the first parametered layer
      introduces the axis — parameterless layers before it operate on
      the shared input once instead of ``k`` times;
    - the return value is ``(output, batched)``.

    :meth:`forward_many` is evaluation-only (``train=False`` semantics,
    no caching for backward) and must produce, model for model, exactly
    what :meth:`forward` produces — the fused walk path relies on that
    equivalence bit for bit in float64.

    **Fused multi-model training.**  Layers that can additionally run
    the *training* pass for ``k`` models at once set ``fused_train =
    True`` and implement :meth:`forward_many_train` /
    :meth:`backward_many`.  The training contract extends the
    evaluation one:

    - :meth:`forward_many_train` has ``train=True`` semantics (dropout
      active) and stores whatever the backward pass needs in ``cache``,
      a per-layer dict owned by the caller for exactly one
      forward/backward pair — the *layer instance* stays stateless
      across fused training, so one shared model can serve many
      lockstep groups;
    - :meth:`backward_many` receives the loss gradient w.r.t. the
      layer's output as a ``(k, batch, ...)`` stack, **accumulates**
      parameter gradients into ``grads`` (``(k, *shape)`` stacks
      aligned with ``params``), and returns the gradient w.r.t. its
      input;
    - both must reproduce, model for model, exactly what
      :meth:`forward` (``train=True``) and :meth:`backward` compute —
      the lockstep training plane relies on that equivalence bit for
      bit in float64.
    """

    #: True when the layer implements :meth:`forward_many`.
    fused_eval = False

    #: True when the layer implements the fused training kernels
    #: (:meth:`forward_many_train` / :meth:`backward_many`).
    fused_train = False

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        raise NotImplementedError(
            f"{type(self).__name__} has no fused multi-model kernel"
        )

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        raise NotImplementedError(
            f"{type(self).__name__} has no fused training kernel"
        )

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        raise NotImplementedError(
            f"{type(self).__name__} has no fused training kernel"
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (default: none)."""
        return []

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)


class Sequential(Layer):
    """A linear stack of layers applied in order."""

    def __init__(self, layers: list[Layer]):
        self.layers = list(layers)

    @property
    def fused_eval(self) -> bool:  # type: ignore[override]
        """True when every layer has a fused multi-model kernel."""
        return all(layer.fused_eval for layer in self.layers)

    @property
    def fused_train(self) -> bool:  # type: ignore[override]
        """True when every layer has a fused multi-model training kernel."""
        return all(layer.fused_train for layer in self.layers)

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool = False
    ) -> tuple[np.ndarray, bool]:
        """Evaluate ``k`` models' stacks in one pass through the stack.

        ``params`` is the batched form of :meth:`parameters` — one
        ``(k, *shape)`` array per parameter, in parameter order — and is
        sliced per layer exactly as :meth:`parameters` concatenates.
        """
        index = 0
        for layer in self.layers:
            count = len(layer.parameters())
            x, batched = layer.forward_many(
                x, params[index : index + count], batched=batched
            )
            index += count
        return x, batched

    def forward_many_train(
        self,
        x: np.ndarray,
        params: list[np.ndarray],
        caches: list[dict],
        *,
        batched: bool = True,
    ) -> tuple[np.ndarray, bool]:
        """Training-mode fused forward; ``caches`` holds one dict per layer.

        The lockstep trainer pre-populates cache slots that need outside
        state (dropout's per-model rng streams) and hands the same list
        to :meth:`backward_many_train` so every layer finds what it
        cached.
        """
        index = 0
        for layer, cache in zip(self.layers, caches):
            count = len(layer.parameters())
            x, batched = layer.forward_many_train(
                x, params[index : index + count], batched=batched, cache=cache
            )
            index += count
        return x, batched

    def backward_many_train(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        caches: list[dict],
        *,
        stop_at: int = 0,
    ) -> np.ndarray | None:
        """Fused backward through layers ``stop_at``..end (reversed).

        ``stop_at`` is normally the index of the lowest parametered
        layer: nothing below it holds parameters, so its input gradient
        is never needed and the walk down the stack can end there — the
        stop layer itself is told ``need_input_grad=False`` and skips
        that product entirely (the sequential loop always pays it).
        Returns the last computed input gradient (``None`` when it was
        skipped or the whole stack was).
        """
        counts = [len(layer.parameters()) for layer in self.layers]
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        result: np.ndarray | None = grad_out
        for i in range(len(self.layers) - 1, stop_at - 1, -1):
            layer = self.layers[i]
            result = layer.backward_many(
                result,
                params[offsets[i] : offsets[i + 1]],
                grads[offsets[i] : offsets[i + 1]],
                caches[i],
                need_input_grad=i > stop_at,
            )
        return result

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]
