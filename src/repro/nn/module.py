"""Layer base class and the :class:`Sequential` container."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Layer", "Sequential"]


class Layer:
    """Base class for all layers.

    A layer transforms an input array in :meth:`forward` and propagates
    gradients in :meth:`backward`.  ``backward`` must be called with the
    gradient of the loss w.r.t. the layer's *output* and returns the
    gradient w.r.t. its *input*; parameter gradients are *accumulated* into
    ``Parameter.grad``.  Layers cache whatever they need between the two
    calls, so a forward/backward pair must not be interleaved with another
    forward on the same layer instance.
    """

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (default: none)."""
        return []

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)


class Sequential(Layer):
    """A linear stack of layers applied in order."""

    def __init__(self, layers: list[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]
