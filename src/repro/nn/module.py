"""Layer base class and the :class:`Sequential` container."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Layer", "Sequential"]


class Layer:
    """Base class for all layers.

    A layer transforms an input array in :meth:`forward` and propagates
    gradients in :meth:`backward`.  ``backward`` must be called with the
    gradient of the loss w.r.t. the layer's *output* and returns the
    gradient w.r.t. its *input*; parameter gradients are *accumulated* into
    ``Parameter.grad``.  Layers cache whatever they need between the two
    calls, so a forward/backward pair must not be interleaved with another
    forward on the same layer instance.

    **Fused multi-model evaluation.**  Layers that can evaluate ``k``
    models' parameters in one vectorized pass set ``fused_eval = True``
    and implement :meth:`forward_many`.  The contract:

    - ``params`` holds this layer's parameters as ``(k, *shape)`` stacks
      (one per entry of :meth:`parameters`, in the same order), sliced
      from a ``(k, P)`` weight matrix by
      :meth:`~repro.nn.serialization.FlatSpec.unflatten_many`;
    - ``batched`` says whether ``x`` already carries the leading model
      axis (``(k, batch, ...)``).  The input starts *shared* (plain
      ``(batch, ...)``, no model axis) and the first parametered layer
      introduces the axis — parameterless layers before it operate on
      the shared input once instead of ``k`` times;
    - the return value is ``(output, batched)``.

    :meth:`forward_many` is evaluation-only (``train=False`` semantics,
    no caching for backward) and must produce, model for model, exactly
    what :meth:`forward` produces — the fused walk path relies on that
    equivalence bit for bit in float64.
    """

    #: True when the layer implements :meth:`forward_many`.
    fused_eval = False

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        raise NotImplementedError(
            f"{type(self).__name__} has no fused multi-model kernel"
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (default: none)."""
        return []

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)


class Sequential(Layer):
    """A linear stack of layers applied in order."""

    def __init__(self, layers: list[Layer]):
        self.layers = list(layers)

    @property
    def fused_eval(self) -> bool:  # type: ignore[override]
        """True when every layer has a fused multi-model kernel."""
        return all(layer.fused_eval for layer in self.layers)

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool = False
    ) -> tuple[np.ndarray, bool]:
        """Evaluate ``k`` models' stacks in one pass through the stack.

        ``params`` is the batched form of :meth:`parameters` — one
        ``(k, *shape)`` array per parameter, in parameter order — and is
        sliced per layer exactly as :meth:`parameters` concatenates.
        """
        index = 0
        for layer in self.layers:
            count = len(layer.parameters())
            x, batched = layer.forward_many(
                x, params[index : index + count], batched=batched
            )
            index += count
        return x, batched

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]
