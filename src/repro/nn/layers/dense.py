"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, he_uniform, zeros
from repro.nn.module import Layer
from repro.nn.parameter import Parameter

__all__ = ["Dense"]


class Dense(Layer):
    """Affine transformation ``y = x @ W + b``.

    Accepts inputs of shape ``(..., in_features)``; the transformation is
    applied over the last axis, which lets the same layer serve both MLP
    heads (``(N, F)``) and per-timestep projections (``(N, T, F)``).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        init: str = "glorot",
        name: str = "dense",
    ):
        if init == "glorot":
            kernel = glorot_uniform((in_features, out_features), rng)
        elif init == "he":
            kernel = he_uniform((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(kernel, name=f"{name}.weight")
        self.bias = Parameter(zeros((out_features,)), name=f"{name}.bias")
        self.in_features = in_features
        self.out_features = out_features
        self._x: np.ndarray | None = None

    fused_eval = True
    fused_train = True

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected last dim {self.in_features}, got shape {x.shape}"
            )
        self._x = x
        return x @ self.weight.value + self.bias.value

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        """Batched-parameter affine map: ``k`` kernels in one matmul.

        The ``(k, in, out)`` kernel stack broadcasts against the input's
        stack dimensions, so numpy performs the same ``(..., in) @
        (in, out)`` product per model that :meth:`forward` performs —
        bit-identical in float64, without reloading weights between
        models.
        """
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected last dim {self.in_features}, got shape {x.shape}"
            )
        kernel, bias = params
        k = kernel.shape[0]
        stacked = x if batched else x[None]
        # Align the model axis with the input's leading stack axis; the
        # remaining stack dims (e.g. time for (k, N, T, F)) broadcast.
        kernel = kernel.reshape(
            (k,) + (1,) * (stacked.ndim - 3) + (self.in_features, self.out_features)
        )
        out = np.matmul(stacked, kernel)
        out += bias.reshape((k,) + (1,) * (out.ndim - 2) + (self.out_features,))
        return out, True

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        """Same batched affine map as :meth:`forward_many`, input cached."""
        cache["x"] = x
        cache["batched"] = batched
        return self.forward_many(x, params, batched=batched)

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        """Batched-parameter backward: ``k`` models' grads in one matmul each.

        Per model the products are exactly :meth:`backward`'s —
        ``x2.T @ g2``, ``g2.sum(axis=0)`` and ``grad_out @ W.T`` — run
        as one stacked :func:`np.matmul` / axis-1 reduction over the
        ``(k, ...)`` stacks, so the accumulated gradient stacks are
        bit-identical in float64 to the sequential per-model loop.  With
        ``need_input_grad=False`` (this layer is the lowest parametered
        one) the ``grad_out @ W.T`` product is skipped entirely.
        """
        kernel, _bias = params
        grad_weight, grad_bias = grads
        k = kernel.shape[0]
        x = cache["x"]
        g2 = grad_out.reshape(k, -1, self.out_features)
        if cache["batched"]:
            x2 = x.reshape(k, -1, self.in_features)
        else:
            # Shared input: one model-axis-free copy broadcasts over k.
            x2 = x.reshape(-1, self.in_features)[None]
        grad_weight += np.matmul(x2.transpose(0, 2, 1), g2)
        grad_bias += g2.sum(axis=1)
        if not need_input_grad:
            return None
        kernel_t = kernel.transpose(0, 2, 1).reshape(
            (k,) + (1,) * (grad_out.ndim - 3) + (self.out_features, self.in_features)
        )
        return np.matmul(grad_out, kernel_t)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        x2 = x.reshape(-1, self.in_features)
        g2 = grad_out.reshape(-1, self.out_features)
        self.weight.grad += x2.T @ g2
        self.bias.grad += g2.sum(axis=0)
        self._x = None
        return grad_out @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]
