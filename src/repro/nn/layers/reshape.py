"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer

__all__ = ["Flatten", "LastTimeStep"]


class Flatten(Layer):
    """Flatten all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    fused_eval = True
    fused_train = True

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        if batched:
            return x.reshape(x.shape[0], x.shape[1], -1), True
        return x.reshape(x.shape[0], -1), False

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        cache["shape"] = x.shape
        cache["batched"] = batched
        return self.forward_many(x, params, batched=batched)

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        if cache["batched"]:
            return grad_out.reshape(cache["shape"])
        # Input was shared (no model axis); the gradient carries one.
        return grad_out.reshape((grad_out.shape[0],) + cache["shape"])

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out.reshape(self._shape)
        self._shape = None
        return grad_in


class LastTimeStep(Layer):
    """Select the final timestep of a sequence: ``(N, T, H) -> (N, H)``.

    Used to connect the LSTM to the classification head for next-character
    prediction.
    """

    fused_eval = True
    fused_train = True

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"LastTimeStep expects (N, T, H), got {x.shape}")
        self._shape = x.shape
        return x[:, -1, :]

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        if x.ndim != (4 if batched else 3):
            raise ValueError(f"LastTimeStep expects (N, T, H) per model, got {x.shape}")
        return x[..., -1, :], batched

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        cache["shape"] = x.shape
        cache["batched"] = batched
        return self.forward_many(x, params, batched=batched)

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        shape = cache["shape"]
        if not cache["batched"]:
            shape = (grad_out.shape[0],) + shape
        grad_in = np.zeros(shape, dtype=grad_out.dtype)
        grad_in[..., -1, :] = grad_out
        return grad_in

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad_in = np.zeros(self._shape, dtype=grad_out.dtype)
        grad_in[:, -1, :] = grad_out
        self._shape = None
        return grad_in
