"""Single-layer LSTM with full back-propagation through time."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.layers.activations import sigmoid
from repro.nn.module import Layer
from repro.nn.parameter import Parameter

__all__ = ["LSTM"]


class LSTM(Layer):
    """LSTM over full sequences.

    Input ``(N, T, input_dim)``; output ``(N, T, hidden)`` (all hidden
    states, so layers can be stacked and a :class:`LastTimeStep` can pick
    the final state for classification).  Gate order in the packed kernels
    is (input, forget, cell, output).  The forget-gate bias is initialized
    to 1, the standard trick for stable early training.
    """

    def __init__(
        self,
        input_dim: int,
        hidden: int,
        rng: np.random.Generator,
        *,
        name: str = "lstm",
    ):
        self.input_dim = input_dim
        self.hidden = hidden
        self.w_x = Parameter(
            glorot_uniform((input_dim, 4 * hidden), rng), name=f"{name}.w_x"
        )
        recurrent = np.concatenate(
            [orthogonal((hidden, hidden), rng) for _ in range(4)], axis=1
        )
        self.w_h = Parameter(recurrent, name=f"{name}.w_h")
        bias = zeros((4 * hidden,))
        bias[hidden : 2 * hidden] = 1.0  # forget gate
        self.bias = Parameter(bias, name=f"{name}.bias")
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"LSTM expected (N, T, {self.input_dim}), got {x.shape}"
            )
        n, t, _ = x.shape
        hdim = self.hidden
        h = np.zeros((n, hdim))
        c = np.zeros((n, hdim))
        hs = np.empty((n, t, hdim))
        cs = np.empty((n, t, hdim))
        gates = np.empty((n, t, 4 * hdim))
        x2 = x.reshape(n * t, self.input_dim)
        pre_x = (x2 @ self.w_x.value).reshape(n, t, 4 * hdim)
        for step in range(t):
            z = pre_x[:, step, :] + h @ self.w_h.value + self.bias.value
            i = sigmoid(z[:, :hdim])
            f = sigmoid(z[:, hdim : 2 * hdim])
            g = np.tanh(z[:, 2 * hdim : 3 * hdim])
            o = sigmoid(z[:, 3 * hdim :])
            c = f * c + i * g
            h = o * np.tanh(c)
            gates[:, step, :hdim] = i
            gates[:, step, hdim : 2 * hdim] = f
            gates[:, step, 2 * hdim : 3 * hdim] = g
            gates[:, step, 3 * hdim :] = o
            hs[:, step, :] = h
            cs[:, step, :] = c
        self._cache = {"x": x, "hs": hs, "cs": cs, "gates": gates}
        return hs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        hs = self._cache["hs"]
        cs = self._cache["cs"]
        gates = self._cache["gates"]
        n, t, _ = x.shape
        hdim = self.hidden

        grad_x = np.zeros_like(x, dtype=np.float64)
        grad_h_next = np.zeros((n, hdim))
        grad_c_next = np.zeros((n, hdim))
        grad_z_all = np.empty((n, t, 4 * hdim))

        for step in range(t - 1, -1, -1):
            i = gates[:, step, :hdim]
            f = gates[:, step, hdim : 2 * hdim]
            g = gates[:, step, 2 * hdim : 3 * hdim]
            o = gates[:, step, 3 * hdim :]
            c = cs[:, step, :]
            c_prev = cs[:, step - 1, :] if step > 0 else np.zeros((n, hdim))
            tanh_c = np.tanh(c)

            grad_h = grad_out[:, step, :] + grad_h_next
            grad_o = grad_h * tanh_c
            grad_c = grad_h * o * (1.0 - tanh_c**2) + grad_c_next
            grad_f = grad_c * c_prev
            grad_i = grad_c * g
            grad_g = grad_c * i
            grad_c_next = grad_c * f

            grad_z = np.empty((n, 4 * hdim))
            grad_z[:, :hdim] = grad_i * i * (1.0 - i)
            grad_z[:, hdim : 2 * hdim] = grad_f * f * (1.0 - f)
            grad_z[:, 2 * hdim : 3 * hdim] = grad_g * (1.0 - g**2)
            grad_z[:, 3 * hdim :] = grad_o * o * (1.0 - o)
            grad_z_all[:, step, :] = grad_z

            grad_h_next = grad_z @ self.w_h.value.T
            grad_x[:, step, :] = grad_z @ self.w_x.value.T

        # Parameter gradients, vectorized over (batch, time).
        x2 = x.reshape(n * t, self.input_dim)
        gz2 = grad_z_all.reshape(n * t, 4 * hdim)
        self.w_x.grad += x2.T @ gz2
        self.bias.grad += gz2.sum(axis=0)
        # h_prev for each step: zeros at t=0, hs shifted by one otherwise.
        h_prev = np.concatenate(
            [np.zeros((n, 1, hdim)), hs[:, :-1, :]], axis=1
        ).reshape(n * t, hdim)
        self.w_h.grad += h_prev.T @ gz2
        self._cache = None
        return grad_x

    def parameters(self) -> list[Parameter]:
        return [self.w_x, self.w_h, self.bias]
