"""2-D convolution via im2col.

Inputs use NCHW layout: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_uniform, zeros
from repro.nn.module import Layer
from repro.nn.parameter import Parameter

__all__ = ["Conv2D", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Unfold image patches into columns.

    Returns an array of shape ``(N, C, kh, kw, out_h, out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch columns back into an image, accumulating overlaps.

    The adjoint of :func:`im2col`; used for the gradient w.r.t. the input.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2D(Layer):
    """2-D convolution layer (cross-correlation, as in all DL frameworks)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
        padding: int = 0,
        name: str = "conv",
    ):
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(he_uniform(shape, rng), name=f"{name}.weight")
        self.bias = Parameter(zeros((out_channels,)), name=f"{name}.bias")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        n = x.shape[0]
        out_h, out_w = cols.shape[4], cols.shape[5]
        # (N, C*kh*kw, out_h*out_w)
        cols2 = cols.reshape(n, self.in_channels * k * k, out_h * out_w)
        kernel2 = self.weight.value.reshape(self.out_channels, -1)
        out = np.einsum("of,nfp->nop", kernel2, cols2)
        out = out.reshape(n, self.out_channels, out_h, out_w)
        out += self.bias.value[None, :, None, None]
        self._cols = cols2
        self._x_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, _, out_h, out_w = grad_out.shape
        k = self.kernel_size
        g2 = grad_out.reshape(n, self.out_channels, out_h * out_w)
        # dW: sum over batch and positions
        grad_kernel = np.einsum("nop,nfp->of", g2, self._cols)
        self.weight.grad += grad_kernel.reshape(self.weight.value.shape)
        self.bias.grad += g2.sum(axis=(0, 2))
        kernel2 = self.weight.value.reshape(self.out_channels, -1)
        grad_cols = np.einsum("of,nop->nfp", kernel2, g2)
        grad_cols = grad_cols.reshape(n, self.in_channels, k, k, out_h, out_w)
        grad_in = col2im(grad_cols, self._x_shape, k, k, self.stride, self.padding)
        self._cols = None
        self._x_shape = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]
