"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer

__all__ = ["ReLU", "Tanh", "Sigmoid", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class ReLU(Layer):
    """Rectified linear unit."""

    fused_eval = True
    fused_train = True

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        return np.where(x > 0, x, 0.0), batched

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        mask = x > 0
        cache["mask"] = mask
        return np.where(mask, x, 0.0), batched

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        # A pre-model-axis mask (layer below the first per-model layer)
        # broadcasts over the stacked gradient.
        return np.where(cache["mask"], grad_out, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_in = np.where(self._mask, grad_out, 0.0)
        self._mask = None
        return grad_in


class Tanh(Layer):
    """Hyperbolic tangent."""

    fused_eval = True
    fused_train = True

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        return np.tanh(x), batched

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        out = np.tanh(x)
        cache["out"] = out
        return out, batched

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        return grad_out * (1.0 - cache["out"] ** 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * (1.0 - self._out**2)
        self._out = None
        return grad_in


class Sigmoid(Layer):
    """Logistic sigmoid."""

    fused_eval = True
    fused_train = True

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        self._out = sigmoid(x)
        return self._out

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        return sigmoid(x), batched

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        out = sigmoid(x)
        cache["out"] = out
        return out, batched

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        out = cache["out"]
        return grad_out * out * (1.0 - out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * self._out * (1.0 - self._out)
        self._out = None
        return grad_in
