"""Token embedding lookup."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer
from repro.nn.parameter import Parameter

__all__ = ["Embedding"]


class Embedding(Layer):
    """Lookup table mapping integer tokens to dense vectors.

    Input: integer array of shape ``(N, T)``; output ``(N, T, dim)``.
    """

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator, *, name: str = "embedding"):
        scale = 1.0 / np.sqrt(dim)
        table = rng.uniform(-scale, scale, size=(vocab_size, dim))
        self.table = Parameter(table, name=f"{name}.table")
        self.vocab_size = vocab_size
        self.dim = dim
        self._indices: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        indices = np.asarray(x)
        if not np.issubdtype(indices.dtype, np.integer):
            raise TypeError(f"Embedding expects integer tokens, got dtype {indices.dtype}")
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= self.vocab_size:
            raise ValueError("token index out of range")
        self._indices = indices
        return self.table.value[indices]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._indices is None:
            raise RuntimeError("backward called before forward")
        flat_idx = self._indices.reshape(-1)
        flat_grad = grad_out.reshape(-1, self.dim)
        np.add.at(self.table.grad, flat_idx, flat_grad)
        self._indices = None
        # Tokens are not differentiable; return zeros of the input shape.
        return np.zeros_like(flat_idx, dtype=np.float64).reshape(grad_out.shape[:-1])

    def parameters(self) -> list[Parameter]:
        return [self.table]
