"""Concrete layer implementations with manual back-propagation."""

from repro.nn.layers.dense import Dense
from repro.nn.layers.activations import ReLU, Tanh, Sigmoid
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pool import MaxPool2D
from repro.nn.layers.reshape import Flatten, LastTimeStep
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.lstm import LSTM

__all__ = [
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "LastTimeStep",
    "Dropout",
    "Embedding",
    "LSTM",
]
