"""Max-pooling layer."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.conv import im2col
from repro.nn.module import Layer

__all__ = ["MaxPool2D"]


class MaxPool2D(Layer):
    """Max pooling over non-overlapping or strided windows (NCHW)."""

    def __init__(self, pool_size: int = 2, stride: int | None = None):
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2D expects (N, C, H, W), got {x.shape}")
        p = self.pool_size
        cols = im2col(x, p, p, self.stride, 0)  # (N, C, p, p, oh, ow)
        n, c, _, _, oh, ow = cols.shape
        windows = cols.reshape(n, c, p * p, oh, ow)
        self._argmax = windows.argmax(axis=2)
        out = windows.max(axis=2)
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        p = self.pool_size
        oh, ow = self._out_hw
        grad_windows = np.zeros((n, c, p * p, oh, ow), dtype=grad_out.dtype)
        n_idx, c_idx, oh_idx, ow_idx = np.indices((n, c, oh, ow))
        grad_windows[n_idx, c_idx, self._argmax, oh_idx, ow_idx] = grad_out
        grad_cols = grad_windows.reshape(n, c, p, p, oh, ow)
        from repro.nn.layers.conv import col2im

        grad_in = col2im(grad_cols, self._x_shape, p, p, self.stride, 0)
        self._argmax = None
        self._x_shape = None
        self._out_hw = None
        return grad_in
