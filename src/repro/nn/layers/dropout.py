"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer
from repro.utils.rng import advance_rng, clone_rng, ensure_rng

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: active only when ``train=True``.

    The dropout mask is drawn from the layer's own generator, seeded at
    construction, so training remains deterministic under the experiment
    seed.

    **Lockstep training.**  Under the fused training plane ``k`` models
    train at once, but the sequential reference consumes this layer's
    *single* stream model-after-model.  The trainer therefore gives each
    model its own stream via :meth:`fork_stream` — a clone of the layer
    generator fast-forwarded to the position the sequential run would
    have reached when that model's training began — and reconciles the
    layer's own generator with :meth:`consume_draws`, so a lockstep
    round leaves the stream exactly where the per-client loop would.
    """

    fused_eval = True
    fused_train = True

    def __init__(self, rate: float, rng: np.random.Generator | int | None = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    @property
    def train_active(self) -> bool:
        """True when training forwards draw masks (and consume rng)."""
        return self.rate > 0.0

    # ------------------------------------------------- lockstep rng streams
    def fork_stream(self, offset: int) -> np.random.Generator:
        """Independent clone of the layer stream, ``offset`` draws ahead.

        ``offset`` counts mask scalars: the clone starts at the state the
        layer's generator would hold after drawing that many uniforms.
        The layer's own generator is not advanced.
        """
        return advance_rng(clone_rng(self._rng), offset)

    def consume_draws(self, count: int) -> None:
        """Advance the layer's generator as if ``count`` mask scalars had
        been drawn sequentially (the lockstep trainer's reconciliation
        after its forked streams did the actual drawing)."""
        advance_rng(self._rng, count)

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        # Evaluation semantics: dropout is the identity outside training.
        return x, batched

    def forward_many_train(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool, cache: dict
    ) -> tuple[np.ndarray, bool]:
        if self.rate == 0.0:
            cache["mask"] = None
            return x, batched
        # One mask per model, each drawn from that model's forked stream
        # (cache["streams"], provided by the trainer) — the same scalars,
        # in the same order, the sequential per-model loop would draw.
        streams = cache["streams"]
        keep = 1.0 - self.rate
        per_model = x.shape[1:] if batched else x.shape
        masks = np.empty((len(streams),) + tuple(per_model))
        for row, stream in zip(masks, streams):
            row[...] = (stream.random(per_model) < keep) / keep
        cache["mask"] = masks
        return x * masks, True

    def backward_many(
        self,
        grad_out: np.ndarray,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        cache: dict,
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        mask = cache["mask"]
        if mask is None:
            return grad_out
        return grad_out * mask

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in
