"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer
from repro.utils.rng import ensure_rng

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: active only when ``train=True``.

    The dropout mask is drawn from the layer's own generator, seeded at
    construction, so training remains deterministic under the experiment
    seed.
    """

    fused_eval = True

    def __init__(self, rate: float, rng: np.random.Generator | int | None = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward_many(
        self, x: np.ndarray, params: list[np.ndarray], *, batched: bool
    ) -> tuple[np.ndarray, bool]:
        # Evaluation semantics: dropout is the identity outside training.
        return x, batched

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in
