"""A from-scratch numpy deep-learning substrate.

The paper trains CNN and LSTM models with TensorFlow/LEAF; this package
provides the equivalent capability without external ML frameworks: layers
with manual back-propagation, losses, SGD-family optimizers (including the
proximal variant needed by FedProx), weight (de)serialization and averaging,
and a numeric gradient checker used by the test-suite.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Layer, Sequential
from repro.nn.layers import (
    Dense,
    Conv2D,
    MaxPool2D,
    Flatten,
    ReLU,
    Tanh,
    Sigmoid,
    Dropout,
    Embedding,
    LSTM,
    LastTimeStep,
)
from repro.nn.losses import (
    softmax_cross_entropy,
    softmax_cross_entropy_many,
    softmax_probabilities,
)
from repro.nn.optimizers import SGD, ProximalSGD, Adam, clip_gradients
from repro.nn.model import Classifier, plan_local_batches
from repro.nn.training_plane import LockstepTrainer, TrainJob
from repro.nn.serialization import (
    FlatSpec,
    average_weights,
    clone_weights,
    flatten_weights,
    weights_allclose,
    weights_l2_distance,
    weighted_average_weights,
)
from repro.nn import zoo

__all__ = [
    "Parameter",
    "Layer",
    "Sequential",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Embedding",
    "LSTM",
    "LastTimeStep",
    "softmax_cross_entropy",
    "softmax_cross_entropy_many",
    "softmax_probabilities",
    "SGD",
    "ProximalSGD",
    "Adam",
    "clip_gradients",
    "Classifier",
    "plan_local_batches",
    "LockstepTrainer",
    "TrainJob",
    "FlatSpec",
    "average_weights",
    "clone_weights",
    "flatten_weights",
    "weights_allclose",
    "weights_l2_distance",
    "weighted_average_weights",
    "zoo",
]
