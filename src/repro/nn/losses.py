"""Losses.

Only softmax cross-entropy is needed by the paper's tasks; it is fused
(softmax + negative log-likelihood) for numeric stability, returning the
loss together with the gradient w.r.t. the logits.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax_probabilities",
    "softmax_cross_entropy",
    "softmax_cross_entropy_many",
]


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a ``(N, K)`` logit matrix."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy between softmax(logits) and integer labels.

    Returns ``(loss, grad)`` where ``grad`` is the gradient of the *mean*
    loss w.r.t. the logits (shape ``(N, K)``).
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, K), got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels must be (N,) matching logits {logits.shape}, got {labels.shape}"
        )
    n = logits.shape[0]
    probs = softmax_probabilities(logits)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad


def softmax_cross_entropy_many(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-model :func:`softmax_cross_entropy` over ``k`` stacked models.

    ``logits`` is ``(k, N, C)`` and ``labels`` ``(k, N)`` — model ``i``'s
    batch may carry different samples than model ``j``'s (each lockstep
    client trains on its own data).  Returns ``(losses, grad)`` with
    ``losses`` of shape ``(k,)`` and ``grad`` of shape ``(k, N, C)``,
    the gradient of each model's *mean* loss w.r.t. its logits.  Every
    operation is the row-wise analogue of the sequential function, so
    both outputs are bit-identical in float64 to calling it per model.
    """
    labels = np.asarray(labels)
    if logits.ndim != 3:
        raise ValueError(f"logits must be (k, N, C), got {logits.shape}")
    k, n, _ = logits.shape
    if labels.shape != (k, n):
        raise ValueError(
            f"labels must be (k, N) matching logits {logits.shape}, "
            f"got {labels.shape}"
        )
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=-1, keepdims=True)
    rows = np.arange(k)[:, None]
    cols = np.arange(n)[None, :]
    picked = probs[rows, cols, labels]
    losses = -np.log(np.clip(picked, 1e-12, None)).mean(axis=-1)
    grad = probs
    grad[rows, cols, labels] -= 1.0
    grad /= n
    return losses, grad
