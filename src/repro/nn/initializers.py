"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
model construction is fully deterministic under the experiment seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "orthogonal", "zeros"]


def glorot_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, *, fan_in: int | None = None, fan_out: int | None = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Suitable for tanh/sigmoid-activated layers (the LSTM gates and the
    output layers of the paper's models).
    """
    if fan_in is None or fan_out is None:
        fi, fo = _infer_fans(shape)
        fan_in = fan_in if fan_in is not None else fi
        fan_out = fan_out if fan_out is not None else fo
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator, *, fan_in: int | None = None) -> np.ndarray:
    """He uniform initialization for ReLU-activated layers."""
    if fan_in is None:
        fan_in, _ = _infer_fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator, *, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization, used for LSTM recurrent kernels."""
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def _infer_fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Infer (fan_in, fan_out) from a kernel shape.

    Dense kernels are (in, out); conv kernels are
    (out_channels, in_channels, kh, kw).
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size
