"""Model-weight utilities: copy, compare, and average.

Model weights travel through the DAG as plain lists of numpy arrays (one
per :class:`~repro.nn.parameter.Parameter`, in layer order).  Averaging two
parents' weights is the core "merge" operation of the specializing DAG, and
weighted averaging is what the FedAvg/FedProx servers do.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "clone_weights",
    "average_weights",
    "weighted_average_weights",
    "weights_allclose",
    "weights_l2_distance",
    "flatten_weights",
    "total_parameter_count",
]

Weights = list[np.ndarray]


def clone_weights(weights: Weights) -> Weights:
    """Deep-copy a weight list."""
    return [np.array(w, dtype=np.float64, copy=True) for w in weights]


def _check_compatible(weight_sets: list[Weights]) -> None:
    if not weight_sets:
        raise ValueError("need at least one weight set")
    first = weight_sets[0]
    for other in weight_sets[1:]:
        if len(other) != len(first):
            raise ValueError(
                f"weight sets have different lengths: {len(first)} vs {len(other)}"
            )
        for a, b in zip(first, other):
            if a.shape != b.shape:
                raise ValueError(f"weight shapes differ: {a.shape} vs {b.shape}")


def average_weights(weight_sets: list[Weights]) -> Weights:
    """Parameter-wise arithmetic mean of several weight sets."""
    _check_compatible(weight_sets)
    count = len(weight_sets)
    return [
        sum(ws[i] for ws in weight_sets) / count for i in range(len(weight_sets[0]))
    ]


def weighted_average_weights(weight_sets: list[Weights], coefficients: list[float]) -> Weights:
    """Convex combination of weight sets (FedAvg aggregation).

    ``coefficients`` are normalized to sum to one, so callers may pass raw
    sample counts.
    """
    _check_compatible(weight_sets)
    if len(coefficients) != len(weight_sets):
        raise ValueError("one coefficient per weight set required")
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if np.any(coeffs < 0):
        raise ValueError("coefficients must be non-negative")
    total = coeffs.sum()
    if total <= 0:
        raise ValueError("coefficients must not all be zero")
    coeffs = coeffs / total
    return [
        sum(c * ws[i] for c, ws in zip(coeffs, weight_sets))
        for i in range(len(weight_sets[0]))
    ]


def weights_allclose(a: Weights, b: Weights, *, atol: float = 1e-10) -> bool:
    """True when two weight lists are element-wise close."""
    if len(a) != len(b):
        return False
    return all(
        x.shape == y.shape and np.allclose(x, y, atol=atol) for x, y in zip(a, b)
    )


def weights_l2_distance(a: Weights, b: Weights) -> float:
    """Euclidean distance between two weight lists viewed as one vector."""
    _check_compatible([a, b])
    return float(
        np.sqrt(sum(float(np.sum((x - y) ** 2)) for x, y in zip(a, b)))
    )


def flatten_weights(weights: Weights) -> np.ndarray:
    """Concatenate all arrays into a single 1-D vector."""
    return np.concatenate([w.reshape(-1) for w in weights])


def total_parameter_count(weights: Weights) -> int:
    """Number of scalars in a weight list."""
    return int(sum(w.size for w in weights))
