"""Model-weight utilities: flat views, copy, compare, and average.

Model weights have two interchangeable representations:

- the **list-of-arrays** form (one array per
  :class:`~repro.nn.parameter.Parameter`, in layer order) that layers and
  optimizers work with, and
- the **flat** form — a single contiguous 1-D vector holding every scalar
  back to back — that the hot paths prefer: averaging, distance, storage
  in the per-tangle weight arena, and cross-process shipping all become
  single numpy operations on one buffer.

:class:`FlatSpec` is the bridge: derived once from a model's shapes, it
flattens a weight list into a vector and reconstitutes a vector into a
list of *views* (zero-copy) with the original shapes.  Averaging two
parents' weights is the core "merge" operation of the specializing DAG,
and weighted averaging is what the FedAvg/FedProx servers do; both are
implemented as one stacked-matrix reduction over flat vectors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FlatSpec",
    "clone_weights",
    "average_weights",
    "weighted_average_weights",
    "weights_allclose",
    "weights_l2_distance",
    "flatten_weights",
    "total_parameter_count",
]

Weights = list[np.ndarray]


class FlatSpec:
    """Shapes and offsets of a weight list, derived once.

    Maps between the list-of-arrays form and the flat 1-D form.  The spec
    is immutable and hashable on its shapes, so models, arenas, and
    transactions can cheaply check they speak about the same architecture.
    """

    __slots__ = ("shapes", "sizes", "offsets", "total")

    def __init__(self, shapes: tuple[tuple[int, ...], ...]):
        self.shapes = tuple(tuple(int(d) for d in shape) for shape in shapes)
        self.sizes = tuple(int(np.prod(shape, dtype=np.int64)) for shape in self.shapes)
        offsets = np.concatenate([[0], np.cumsum(self.sizes)])
        self.offsets = tuple(int(o) for o in offsets[:-1])
        self.total = int(offsets[-1])

    # ------------------------------------------------------- constructors
    @classmethod
    def from_weights(cls, weights: Weights) -> "FlatSpec":
        """Spec of an existing weight list."""
        if not weights:
            raise ValueError("cannot derive a FlatSpec from an empty weight list")
        return cls(tuple(np.asarray(w).shape for w in weights))

    @classmethod
    def from_parameters(cls, params) -> "FlatSpec":
        """Spec of a model's parameter list (:class:`Parameter` objects)."""
        return cls(tuple(p.value.shape for p in params))

    # -------------------------------------------------------- conversions
    def flatten(self, weights: Weights, *, out: np.ndarray | None = None) -> np.ndarray:
        """Copy ``weights`` into one contiguous 1-D vector.

        ``out`` lets callers fill a pre-allocated row (e.g. of a stacked
        aggregation matrix or an arena slab) without an intermediate
        allocation.
        """
        if len(weights) != len(self.shapes):
            raise ValueError(
                f"weight sets have different lengths: "
                f"{len(self.shapes)} vs {len(weights)}"
            )
        if out is None:
            out = np.empty(self.total, dtype=np.float64)
        elif out.shape != (self.total,):
            raise ValueError(f"out must have shape ({self.total},), got {out.shape}")
        for offset, size, shape, w in zip(self.offsets, self.sizes, self.shapes, weights):
            w = np.asarray(w)
            if w.shape != shape:
                raise ValueError(f"weight shapes differ: {shape} vs {w.shape}")
            out[offset : offset + size] = w.reshape(-1)
        return out

    def unflatten(self, vector: np.ndarray) -> Weights:
        """Reshape a flat vector back into the per-layer list.

        The returned arrays are **views** into ``vector`` whenever it is
        contiguous — no data is copied.  Callers that need ownership copy
        explicitly (:func:`clone_weights`).
        """
        vector = np.ascontiguousarray(vector)
        if vector.shape != (self.total,):
            raise ValueError(
                f"expected a ({self.total},) vector, got shape {vector.shape}"
            )
        return [
            vector[offset : offset + size].reshape(shape)
            for offset, size, shape in zip(self.offsets, self.sizes, self.shapes)
        ]

    def stack(self, weight_sets: list[Weights]) -> np.ndarray:
        """Flatten several weight sets into one ``(k, total)`` matrix."""
        if not weight_sets:
            raise ValueError("need at least one weight set")
        matrix = np.empty((len(weight_sets), self.total), dtype=np.float64)
        for row, ws in zip(matrix, weight_sets):
            self.flatten(ws, out=row)
        return matrix

    def unflatten_many(self, matrix: np.ndarray) -> list[np.ndarray]:
        """Per-parameter stacks of a ``(k, total)`` matrix of flat rows.

        Returns one ``(k, *shape)`` array per parameter — the batched
        form the fused multi-model forward pass consumes.  Each stack is
        a **view** into ``matrix`` (splitting a row's contiguous
        parameter block never copies), so slicing k models out of a
        weight arena and evaluating them costs no weight copies at all.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.total:
            raise ValueError(
                f"expected a (k, {self.total}) matrix, got shape {matrix.shape}"
            )
        k = matrix.shape[0]
        return [
            matrix[:, offset : offset + size].reshape((k, *shape))
            for offset, size, shape in zip(self.offsets, self.sizes, self.shapes)
        ]

    # ------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        return isinstance(other, FlatSpec) and self.shapes == other.shapes

    def __hash__(self) -> int:
        return hash(self.shapes)

    def __len__(self) -> int:
        return len(self.shapes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatSpec({len(self.shapes)} arrays, {self.total} scalars)"


def clone_weights(weights: Weights) -> Weights:
    """Deep-copy a weight list."""
    return [np.array(w, dtype=np.float64, copy=True) for w in weights]


def _check_compatible(weight_sets: list[Weights]) -> None:
    """Validate matching lengths and shapes (for non-flattening callers;
    the averaging paths get the same validation from ``FlatSpec.stack``)."""
    if not weight_sets:
        raise ValueError("need at least one weight set")
    first = weight_sets[0]
    for other in weight_sets[1:]:
        if len(other) != len(first):
            raise ValueError(
                f"weight sets have different lengths: {len(first)} vs {len(other)}"
            )
        for a, b in zip(first, other):
            if np.asarray(a).shape != np.asarray(b).shape:
                raise ValueError(
                    f"weight shapes differ: {np.asarray(a).shape} vs {np.asarray(b).shape}"
                )


def average_weights(weight_sets: list[Weights]) -> Weights:
    """Parameter-wise arithmetic mean of several weight sets.

    One stacked-matrix reduction over the flat representation; for two
    inputs (the DAG's parent merge) the result is bit-identical to the
    historical per-layer ``(a + b) / 2``.
    """
    if not weight_sets:
        raise ValueError("need at least one weight set")
    spec = FlatSpec.from_weights(weight_sets[0])
    return spec.unflatten(spec.stack(weight_sets).mean(axis=0))


def weighted_average_weights(weight_sets: list[Weights], coefficients: list[float]) -> Weights:
    """Convex combination of weight sets (FedAvg aggregation).

    ``coefficients`` are normalized to sum to one, so callers may pass raw
    sample counts.  Computed as a single matrix-vector product over the
    stacked flat vectors.
    """
    if not weight_sets:
        raise ValueError("need at least one weight set")
    spec = FlatSpec.from_weights(weight_sets[0])
    if len(coefficients) != len(weight_sets):
        raise ValueError("one coefficient per weight set required")
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if np.any(coeffs < 0):
        raise ValueError("coefficients must be non-negative")
    total = coeffs.sum()
    if total <= 0:
        raise ValueError("coefficients must not all be zero")
    coeffs = coeffs / total
    return spec.unflatten(coeffs @ spec.stack(weight_sets))


def weights_allclose(a: Weights, b: Weights, *, atol: float = 1e-10) -> bool:
    """True when two weight lists are element-wise close."""
    if len(a) != len(b):
        return False
    return all(
        x.shape == y.shape and np.allclose(x, y, atol=atol) for x, y in zip(a, b)
    )


def weights_l2_distance(a: Weights, b: Weights) -> float:
    """Euclidean distance between two weight lists viewed as one vector."""
    _check_compatible([a, b])
    return float(
        np.sqrt(sum(float(np.sum((x - y) ** 2)) for x, y in zip(a, b)))
    )


def flatten_weights(weights: Weights) -> np.ndarray:
    """Concatenate all arrays into a single 1-D float64 vector."""
    return FlatSpec.from_weights(weights).flatten(weights)


def total_parameter_count(weights: Weights) -> int:
    """Number of scalars in a weight list."""
    return int(sum(np.asarray(w).size for w in weights))
