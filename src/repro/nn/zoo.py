"""Model builders for the paper's three tasks plus the FedProx baseline.

Each builder returns a :class:`~repro.nn.model.Classifier`.  The ``size``
argument selects between the paper's architecture (``"paper"``, Section
5.2) and a scaled-down variant (``"small"``) used by the fast experiment
profiles; the two share structure (conv/pool stacks, LSTM-over-embedding)
so protocol behaviour is preserved while CPU cost shrinks by orders of
magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Embedding,
    Flatten,
    LSTM,
    LastTimeStep,
    MaxPool2D,
    ReLU,
)
from repro.nn.model import Classifier
from repro.nn.module import Sequential

__all__ = [
    "build_fmnist_cnn",
    "build_poets_lstm",
    "build_cifar_cnn",
    "build_logistic_regression",
    "build_mlp",
]


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def build_fmnist_cnn(
    rng: np.random.Generator,
    *,
    image_size: int = 14,
    in_channels: int = 1,
    num_classes: int = 10,
    size: str = "small",
) -> Classifier:
    """CNN for the FMNIST-clustered task.

    ``paper``: two 5x5 conv layers (32, 64 filters) + 2048-unit dense head
    on 28x28 inputs, as in LEAF.  ``small``: the same two-conv/pool shape
    with 3x3 kernels and narrow widths for fast simulation.
    """
    if size == "paper":
        convs = [(32, 5, 0), (64, 5, 0)]
        hidden = [2048]
    elif size == "small":
        convs = [(8, 3, 1), (16, 3, 1)]
        hidden = [32]
    else:
        raise ValueError(f"unknown size {size!r}")

    layers: list = []
    channels = in_channels
    spatial = image_size
    for filters, kernel, padding in convs:
        layers.append(
            Conv2D(channels, filters, kernel, rng, padding=padding)
        )
        layers.append(ReLU())
        layers.append(MaxPool2D(2, 2))
        spatial = _conv_out(spatial, kernel, 1, padding)
        spatial = _conv_out(spatial, 2, 2, 0)
        channels = filters
    layers.append(Flatten())
    features = channels * spatial * spatial
    for width in hidden:
        layers.append(Dense(features, width, rng, init="he"))
        layers.append(ReLU())
        features = width
    layers.append(Dense(features, num_classes, rng))
    return Classifier(Sequential(layers))


def build_poets_lstm(
    rng: np.random.Generator,
    *,
    vocab_size: int,
    embedding_dim: int = 8,
    size: str = "small",
) -> Classifier:
    """Embedding -> LSTM stack -> dense head for next-character prediction.

    ``paper``: two LSTM layers with 256 units on 80-char sequences.
    ``small``: a single 32-unit LSTM.  Sequence length is a property of the
    data, not the model, so it is not fixed here.
    """
    if size == "paper":
        lstm_sizes = [256, 256]
    elif size == "small":
        lstm_sizes = [32]
    else:
        raise ValueError(f"unknown size {size!r}")

    layers: list = [Embedding(vocab_size, embedding_dim, rng)]
    features = embedding_dim
    for width in lstm_sizes:
        layers.append(LSTM(features, width, rng))
        features = width
    layers.append(LastTimeStep())
    layers.append(Dense(features, vocab_size, rng))
    return Classifier(Sequential(layers))


def build_cifar_cnn(
    rng: np.random.Generator,
    *,
    image_size: int = 16,
    in_channels: int = 3,
    num_classes: int = 100,
    size: str = "small",
) -> Classifier:
    """CNN for the CIFAR-100-like task.

    ``paper``: three conv layers (32, 64, 128 filters) and dense layers
    256/128 before the 100-way output.  ``small``: the same three-stage
    shape with narrow widths on 16x16 inputs.
    """
    if size == "paper":
        convs = [(32, 5, 2), (64, 5, 2), (128, 5, 2)]
        hidden = [256, 128]
    elif size == "small":
        convs = [(8, 3, 1), (16, 3, 1), (32, 3, 1)]
        hidden = [64]
    else:
        raise ValueError(f"unknown size {size!r}")

    layers: list = []
    channels = in_channels
    spatial = image_size
    for filters, kernel, padding in convs:
        layers.append(Conv2D(channels, filters, kernel, rng, padding=padding))
        layers.append(ReLU())
        layers.append(MaxPool2D(2, 2))
        spatial = _conv_out(spatial, kernel, 1, padding)
        spatial = _conv_out(spatial, 2, 2, 0)
        channels = filters
    layers.append(Flatten())
    features = channels * spatial * spatial
    for width in hidden:
        layers.append(Dense(features, width, rng, init="he"))
        layers.append(ReLU())
        features = width
    layers.append(Dense(features, num_classes, rng))
    return Classifier(Sequential(layers))


def build_logistic_regression(
    rng: np.random.Generator, *, in_features: int = 60, num_classes: int = 10
) -> Classifier:
    """Multinomial logistic regression, the FedProx synthetic-data model."""
    return Classifier(Sequential([Dense(in_features, num_classes, rng)]))


def build_mlp(
    rng: np.random.Generator,
    *,
    in_features: int,
    hidden: tuple[int, ...] = (32,),
    num_classes: int = 10,
) -> Classifier:
    """Generic MLP; flattens any input shape, handy for tests and demos."""
    layers: list = [Flatten()]
    features = in_features
    for width in hidden:
        layers.append(Dense(features, width, rng, init="he"))
        layers.append(ReLU())
        features = width
    layers.append(Dense(features, num_classes, rng))
    return Classifier(Sequential(layers))
