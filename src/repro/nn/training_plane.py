"""Lockstep training plane: batched forward/backward SGD across models.

A federated round's dominant cost is K clients each running the same
local-SGD loop over the same architecture — K independent Python loops
issuing tiny numpy calls.  This module fuses them: the K models' weights
live as rows of one ``(K, P)`` float64 stack, viewed zero-copy as
per-parameter ``(K, *shape)`` stacks
(:meth:`~repro.nn.serialization.FlatSpec.unflatten_many`), and every
global batch index advances **all** models with one fused forward
(cached activations), one batched loss, one fused backward
(grad accumulation into a ``(K, P)`` gradient stack), and one
element-wise SGD update — a *superstep*.

Equivalence contract: the fused kernels perform, model for model, the
same numpy products, reductions, and element-wise updates the sequential
``train_batch`` loop performs, so in float64 the trained weights — and
the per-batch losses — are **bit-identical** to training each client one
after another.  Train-mode dropout holds too: each model draws its masks
from a forked stream positioned exactly where the sequential run's
shared layer stream would have been when that model's training began
(:meth:`~repro.nn.layers.dropout.Dropout.fork_stream`), and the layer's
own stream is advanced past all of them afterwards, so subsequent
rounds continue from the same state either way.

Models whose layers lack fused training kernels (conv, LSTM, embedding,
pooling), and jobs whose batch schedules disagree, fall back to the
sequential per-model loop automatically — same entry point, same
results, no fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.nn.layers.dropout import Dropout
from repro.nn.losses import softmax_cross_entropy_many
from repro.nn.optimizers import SGD

if TYPE_CHECKING:  # only for annotations; no runtime import cycle
    from repro.nn.model import Classifier

__all__ = ["TrainJob", "LockstepTrainer", "train_grouped"]


def train_grouped(
    jobs_by_model: "list[tuple[Classifier, list[TrainJob]]]",
) -> dict:
    """Advance every model's whole job list in lockstep; tag -> (row, loss).

    The one-superstep entry point shared by the round substrate
    (:func:`repro.substrate.round_plan.run_training_plane_round`) and the
    event-driven simulator (:mod:`repro.sim`): each ``(model, jobs)``
    pair goes through **one** :meth:`LockstepTrainer.train` call — all of
    a model's jobs must share that call because dropout stream order is
    defined across the whole job list.  Jobs must carry their own
    ``lr``/``momentum`` (the first job's values seed the trainer's
    defaults) and a hashable ``tag`` identifying the result.
    """
    trained: dict = {}
    for model, jobs in jobs_by_model:
        if not jobs:
            continue
        if jobs[0].lr is None:
            raise ValueError("train_grouped jobs must carry an explicit lr")
        trainer = LockstepTrainer(
            lr=jobs[0].lr, momentum=jobs[0].momentum or 0.0
        )
        for job, outcome in zip(jobs, trainer.train(model, jobs)):
            trained[job.tag] = outcome
    return trained


@dataclass
class TrainJob:
    """One model's local-training work, in lockstep-ready form.

    ``batches`` is the full batch index schedule (all epochs flattened,
    in training order) as produced by
    :func:`~repro.nn.model.plan_local_batches` — planning it is how the
    caller consumes the client's shuffle rng, so the trainer itself
    draws nothing from it.  ``start_flat`` is the starting weights as
    one flat ``(P,)`` vector; float32 rows (e.g. out of a float32 weight
    arena) are widened to float64 exactly as ``set_weights`` would cast
    them.  ``lr``/``momentum`` override the trainer's optimizer config
    for this job (``None`` inherits it) — jobs with different configs
    cannot share supersteps, so they land in separate fused groups, but
    they still belong in **one** :meth:`LockstepTrainer.train` call:
    dropout stream order is defined across a model's whole job list.
    """

    x: np.ndarray
    y: np.ndarray
    batches: list[np.ndarray]
    start_flat: np.ndarray
    tag: object = None
    lr: float | None = None
    momentum: float | None = None

    def signature(self, default_lr: float, default_momentum: float) -> tuple:
        """Lockstep-compatibility key: jobs fuse only when every
        superstep stacks same-shaped batches and applies the same
        optimizer update."""
        return (
            tuple(len(idx) for idx in self.batches),
            tuple(self.x.shape[1:]),
            self.x.dtype.str,
            self.y.dtype.str,
            self.lr if self.lr is not None else default_lr,
            self.momentum if self.momentum is not None else default_momentum,
        )


@dataclass
class _Group:
    """Jobs that advance together, in caller (round) order."""

    indices: list[int] = field(default_factory=list)
    jobs: list[TrainJob] = field(default_factory=list)


class LockstepTrainer:
    """Advance several same-architecture local-SGD runs in lockstep.

    The trainer's ``lr``/``momentum`` are the default optimizer
    configuration (the plain ``SGD(lr, momentum)`` every DAG client
    uses); individual jobs may override it.  :meth:`train` takes the
    jobs of **one** model in the caller's sequential order, groups them
    by batch-schedule/optimizer signature, and runs each group's
    supersteps fused — or falls back to the sequential per-model loop
    when the model has unfused layers.  Results come back in job order
    either way, bit-identical between the two paths.  Dropout streams
    are forked once across the *whole* job list (client-major, the
    sequential interleaving), so a model's jobs must all arrive in one
    call even when optimizer configs differ between them.
    """

    def __init__(self, *, lr: float, momentum: float = 0.0):
        self.lr = lr
        self.momentum = momentum

    def _job_config(self, job: TrainJob) -> tuple[float, float]:
        return (
            job.lr if job.lr is not None else self.lr,
            job.momentum if job.momentum is not None else self.momentum,
        )

    # ------------------------------------------------------------- entry
    def train(
        self, model: "Classifier", jobs: list[TrainJob]
    ) -> list[tuple[np.ndarray, float]]:
        """Train every job from its ``start_flat``; returns, per job in
        order, ``(trained_flat_row, mean_batch_loss)`` — exactly what
        the sequential ``set_weights`` + ``train_local`` pair produces.
        """
        if not jobs:
            return []
        total = model.flat_spec.total
        for job in jobs:
            if job.start_flat.shape != (total,):
                raise ValueError(
                    f"start_flat must have shape ({total},), "
                    f"got {job.start_flat.shape}"
                )
        has_params = any(layer.parameters() for layer in model.net.layers)
        if not model.supports_fused_train or not has_params:
            return [self._train_sequential(model, job) for job in jobs]

        groups: dict[tuple, _Group] = {}
        for index, job in enumerate(jobs):
            group = groups.setdefault(
                job.signature(self.lr, self.momentum), _Group()
            )
            group.indices.append(index)
            group.jobs.append(job)

        dropout_streams = self._fork_dropout_streams(model, jobs)
        results: list[tuple[np.ndarray, float] | None] = [None] * len(jobs)
        for group in groups.values():
            group_streams = {
                layer_index: [streams[i] for i in group.indices]
                for layer_index, streams in dropout_streams.items()
            }
            stack, losses = self._train_group(model, group.jobs, group_streams)
            for row_index, job_index in enumerate(group.indices):
                results[job_index] = (stack[row_index], losses[row_index])
        return results  # type: ignore[return-value]

    # ---------------------------------------------------------- fallback
    def _train_sequential(
        self, model: "Classifier", job: TrainJob
    ) -> tuple[np.ndarray, float]:
        """The per-model reference loop over a precomputed schedule.

        Identical to ``Classifier.train_local`` with the same schedule:
        the trainer's only deviation is that shuffles were planned ahead
        (which consumes the shuffle rng identically).
        """
        lr, momentum = self._job_config(job)
        model.load_flat(job.start_flat)
        optimizer = SGD(lr, momentum=momentum)
        losses = [
            model.train_batch(job.x[idx], job.y[idx], optimizer)
            for idx in job.batches
        ]
        return model.get_flat(), float(np.mean(losses))

    # ----------------------------------------------------- dropout streams
    @staticmethod
    def _probe_dropout_sample_shapes(
        model: "Classifier", job: TrainJob
    ) -> dict[int, tuple[int, ...]]:
        """Per-sample input shape at each train-active dropout layer.

        One evaluation-mode forward over the job's first batch, recording
        shapes layer by layer (eval forwards draw nothing, so no stream
        is consumed).  Per-sample shapes are batch-size independent, so
        one probe serves every group of the model.
        """
        shapes: dict[int, tuple[int, ...]] = {}
        x = job.x[job.batches[0]]
        for index, layer in enumerate(model.net.layers):
            if isinstance(layer, Dropout) and layer.train_active:
                shapes[index] = x.shape[1:]
            x = layer.forward(x, train=False)
        return shapes

    def _fork_dropout_streams(
        self, model: "Classifier", jobs: list[TrainJob]
    ) -> dict[int, list[np.random.Generator]]:
        """One forked stream per (train-active dropout layer, job).

        Job ``j``'s stream for a layer starts where the layer's own
        generator would stand after jobs ``0..j-1`` drew all their masks
        — the sequential interleaving, client-major.  The layer
        generator itself is advanced past every job's draws so the next
        (sequential or fused) training run continues identically.
        """
        if not any(
            isinstance(layer, Dropout) and layer.train_active
            for layer in model.net.layers
        ):
            return {}
        sample_shapes = self._probe_dropout_sample_shapes(model, jobs[0])
        streams: dict[int, list[np.random.Generator]] = {}
        for layer_index, sample_shape in sample_shapes.items():
            layer = model.net.layers[layer_index]
            per_sample = int(np.prod(sample_shape, dtype=np.int64)) if sample_shape else 1
            offset = 0
            forked: list[np.random.Generator] = []
            for job in jobs:
                forked.append(layer.fork_stream(offset))
                offset += per_sample * sum(len(idx) for idx in job.batches)
            layer.consume_draws(offset)
            streams[layer_index] = forked
        return streams

    # ---------------------------------------------------------- supersteps
    def _train_group(
        self,
        model: "Classifier",
        jobs: list[TrainJob],
        layer_streams: dict[int, list[np.random.Generator]],
    ) -> tuple[np.ndarray, list[float]]:
        """Fused supersteps over one compatible group; returns the
        trained ``(K, P)`` stack and per-job mean losses."""
        spec = model.flat_spec
        net = model.net
        k = len(jobs)
        lr, momentum = self._job_config(jobs[0])  # uniform per signature
        stack = np.empty((k, spec.total), dtype=np.float64)
        for row, job in zip(stack, jobs):
            row[...] = job.start_flat  # widens float32 rows like set_weights
        params = spec.unflatten_many(stack)
        grad_stack = np.zeros_like(stack)
        grads = spec.unflatten_many(grad_stack)
        velocity = np.zeros_like(stack) if momentum != 0.0 else None
        lowest_param_layer = min(
            i for i, layer in enumerate(net.layers) if layer.parameters()
        )
        losses: list[list[float]] = [[] for _ in range(k)]
        sample_shape = jobs[0].x.shape[1:]
        label_dtype = jobs[0].y.dtype
        for batch_index in range(len(jobs[0].batches)):
            batch_len = len(jobs[0].batches[batch_index])
            # Gather straight into the stacked buffers (one copy per job,
            # no intermediate per-job arrays + restack).
            xb = np.empty((k, batch_len) + sample_shape, dtype=jobs[0].x.dtype)
            yb = np.empty((k, batch_len), dtype=label_dtype)
            for row_index, job in enumerate(jobs):
                idx = job.batches[batch_index]
                np.take(job.x, idx, axis=0, out=xb[row_index])
                np.take(job.y, idx, axis=0, out=yb[row_index])
            grad_stack.fill(0.0)  # zero where consumed, like train_batch
            caches: list[dict] = [{} for _ in net.layers]
            for layer_index, streams in layer_streams.items():
                caches[layer_index]["streams"] = streams
            logits, _ = net.forward_many_train(xb, params, caches, batched=True)
            batch_losses, grad = softmax_cross_entropy_many(logits, yb)
            net.backward_many_train(
                grad, params, grads, caches, stop_at=lowest_param_layer
            )
            if velocity is None:
                stack -= lr * grad_stack
            else:
                # Mirrors SGD._direction: v = momentum * v + grad.
                velocity *= momentum
                velocity += grad_stack
                stack -= lr * velocity
            for row_index, loss in enumerate(batch_losses.tolist()):
                losses[row_index].append(loss)
        return stack, [float(np.mean(job_losses)) for job_losses in losses]
