"""Round plans: the per-client work of one simulated round, made portable.

One round of DAG learning decomposes into independent *work units* — for
each active client: two biased walks over a **frozen** end-of-last-round
tangle view, local training from the aggregated tip models, and the
publish decision.  Nothing a client does in round *r* can observe
anything published in round *r* (concurrent publication is the paper's
visibility model), so the units are embarrassingly parallel.

This module gives the units an explicit, picklable form so any
:class:`~repro.substrate.executor.Executor` can evaluate them:

- :class:`ClientWorkUnit` — which client, which round, honest or attack;
- :class:`RoundContext` — everything shared by the round's units (the
  frozen view, protocol config, the rng factory seed);
- :func:`execute_unit` — runs one unit to a :class:`ClientRoundResult`;
- :func:`apply_result` — folds a result back into the canonical client.

Determinism: the walk rng is keyed ``("walk", round, client)`` via
:class:`~repro.utils.rng.RngFactory`, and training randomness comes from
the client's own generator whose state travels inside the (possibly
copied) :class:`~repro.fl.client.Client`.  A worker process therefore
draws exactly the numbers the serial path would, and
:class:`ClientStateDelta` carries the advanced state back so the next
round starts identically — serial and parallel execution produce
bit-identical round records for a fixed seed.

Transaction ids are **not** assigned inside units: the id counter is
shared tangle state, so the coordinator assigns ids after the fact, in
active-client order over the units that chose to publish — the exact
order the serial loop produced historically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.dag.tip_selection import (
    AccuracyTipSelector,
    RandomTipSelector,
    TipSelector,
    WeightedTipSelector,
)
from repro.fl.aggregation import FLAT_AGGREGATORS, get_aggregator
from repro.fl.config import DagConfig
from repro.nn.serialization import flatten_weights
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # imported lazily to keep the layer boundary clean
    from repro.fl.client import Client

__all__ = [
    "ClientWorkUnit",
    "ClientStateDelta",
    "ClientRoundResult",
    "RoundContext",
    "build_selector",
    "execute_unit",
    "apply_result",
]


def build_selector(
    client: "Client",
    store,
    config: DagConfig,
    evaluation_counter: Callable[[int], None] | None = None,
) -> TipSelector:
    """Tip selector for ``client`` per the protocol config.

    ``store`` is any tangle-like object (:class:`~repro.dag.tangle.Tangle`
    or a view) used to resolve transaction models for accuracy
    evaluation.  The accuracy selector is wired to the client's *batched*
    cached evaluation (:meth:`~repro.fl.client.Client.tx_accuracies`), the
    contract :class:`~repro.dag.tip_selection.AccuracyTipSelector`
    documents — which routes each walk step's cache misses through the
    fused multi-model forward pass
    (:meth:`~repro.nn.model.Classifier.accuracy_many`) whenever the
    model's layers support it.  Both simulators (round-based and async)
    and every executor therefore share one evaluation plane.

    ``config.walk_engine`` switches both walking selectors to the
    lockstep multi-walk engine (:mod:`repro.dag.walk_engine`): all of a
    selection's particles advance in frontier-batched supersteps over a
    per-epoch CSR snapshot of ``store``, and each superstep's union
    frontier reaches ``tx_accuracies`` as **one** batch — wider fused
    evaluation batches than any single particle's step.
    """
    if config.selector == "random":
        return RandomTipSelector()
    if config.selector == "weighted":
        return WeightedTipSelector(
            config.weighted_alpha,
            depth_range=config.depth_range,
            engine=config.walk_engine,
        )
    return AccuracyTipSelector(
        batch_accuracy_fn=lambda tx_ids: client.tx_accuracies(store, tx_ids),
        alpha=config.alpha,
        normalization=config.normalization,
        depth_range=config.depth_range,
        evaluation_counter=evaluation_counter,
        engine=config.walk_engine,
        score_cache_fn=client.tx_accuracy_cache,
        cache_epoch_fn=lambda: client.cache_epoch,
    )


@dataclass(frozen=True)
class ClientWorkUnit:
    """One client's slice of a round: who works, and how."""

    client_id: int
    round_index: int
    attack: str | None = None  # None = honest; "random_weights" = attacker


@dataclass
class ClientStateDelta:
    """Client-side state advanced by a unit, to fold back at the barrier.

    Only captured for executors that cross a process boundary (the unit
    ran on a pickled copy; the delta is how the coordinator's client
    catches up).  In-process executors mutate the canonical client
    directly and skip the snapshot (``RoundContext.capture_state``).
    """

    rng_state: dict
    tx_accuracy_cache: dict[str, float]
    evaluations: int
    personal_tail: list[np.ndarray] | None


@dataclass
class ClientRoundResult:
    """Everything a work unit produced, before tangle mutation.

    ``flat_weights`` is the published model as **one contiguous 1-D
    vector** — the only form a model crosses the process boundary in.
    The coordinator turns it into an arena row on commit
    (:meth:`Transaction.from_flat`); no per-layer list is ever pickled.
    """

    client_id: int
    publish: bool
    parents: tuple[str, ...] = ()
    flat_weights: np.ndarray | None = None
    tags: dict = field(default_factory=dict)
    reference_accuracy: float | None = None
    test_accuracy: float | None = None
    test_loss: float | None = None
    walk_duration: float | None = None
    walk_evaluations: int | None = None
    state: ClientStateDelta | None = None


@dataclass(frozen=True)
class RoundContext:
    """Round-shared inputs: the frozen view and protocol parameters.

    ``view`` is whatever the simulator's visibility rule exposes for the
    round (the raw tangle when there is no propagation delay); it must
    not change while units execute.  ``rng_factory`` reconstructs the
    per-``(round, client)`` walk streams identically in any process.
    ``capture_state`` requests :class:`ClientStateDelta` snapshots in the
    results; coordinators set it to ``False`` for executors that run
    units on the canonical objects (``shares_memory``), where the
    snapshot/restore round-trip would copy growing caches for nothing.
    """

    view: object
    config: DagConfig
    rng_factory: RngFactory
    capture_state: bool = True


def _aggregate_parents(
    context: RoundContext, tips: list[str], config: DagConfig, client: "Client"
) -> list[np.ndarray]:
    """Merge the selected tip models per the protocol's aggregator.

    Fast path: when every parent lives in the same weight arena with the
    model's architecture, the ``(k, P)`` stack comes straight off the
    slab (``WeightArena.rows`` — a zero-copy slice for contiguous rows,
    one gather otherwise) and the merge is one stacked reduction — no
    per-layer lists are built for the inputs.  The result values are
    identical to the list-of-arrays facade (same matrix, same numpy
    reduction); the facade remains the fallback for foreign-shaped
    models.
    """
    parents = [context.view.get(t) for t in tips]
    spec = client.model.flat_spec
    locations = [tx.arena_location() for tx in parents]
    if all(loc is not None for loc in locations):
        arena = locations[0][0]
        if arena.spec == spec and all(loc[0] is arena for loc in locations):
            stacked = arena.rows([loc[1] for loc in locations])
            return spec.unflatten(FLAT_AGGREGATORS[config.aggregator](stacked))
    return get_aggregator(config.aggregator)([tx.model_weights for tx in parents])


def _execute_attack(
    context: RoundContext, unit: ClientWorkUnit, rng: np.random.Generator
) -> ClientRoundResult:
    """The random-weights attack: random tips, random payload."""
    tips = RandomTipSelector().select_tips(
        context.view, context.config.num_tips, rng
    )
    genesis = context.view.genesis.model_weights
    # One normal draw per parameter array keeps the rng stream identical
    # to the historical per-layer payload; shipped as a single vector.
    payload = [rng.normal(0.0, 1.0, size=w.shape) for w in genesis]
    return ClientRoundResult(
        client_id=unit.client_id,
        publish=True,
        parents=tuple(dict.fromkeys(tips)),
        flat_weights=flatten_weights(payload),
        tags={"malicious": True},
    )


def execute_unit(payload: tuple[RoundContext, "Client | None", ClientWorkUnit]) -> ClientRoundResult:
    """Run one work unit; pure apart from mutating the given client.

    Takes a single ``(context, client, unit)`` tuple so executors can map
    it directly (``client`` is ``None`` for attack units, which carry no
    client state).
    """
    context, client, unit = payload
    config = context.config
    walk_rng = context.rng_factory.get("walk", unit.round_index, unit.client_id)

    if unit.attack is not None:
        return _execute_attack(context, unit, walk_rng)
    assert client is not None

    evaluations = 0

    def count(candidates: int) -> None:
        nonlocal evaluations
        evaluations += candidates

    selector = build_selector(client, context.view, config, count)
    stopwatch = Stopwatch()
    with stopwatch:
        tips = selector.select_tips(context.view, config.num_tips, walk_rng)

    reference = client.apply_personalization(
        _aggregate_parents(context, tips, config, client)
    )
    reference_accuracy = client.accuracy_of_weights(reference)

    trained, _train_loss = client.train(reference)
    client.update_personal_tail(trained)
    test_loss, test_accuracy = client.evaluate_weights(trained)

    publish = (not config.publish_gate) or test_accuracy >= reference_accuracy
    state = None
    if context.capture_state:
        state = ClientStateDelta(
            rng_state=client.rng.bit_generator.state,
            tx_accuracy_cache=client.tx_accuracy_cache(),
            evaluations=client.evaluations,
            personal_tail=client.personal_tail,
        )
    return ClientRoundResult(
        client_id=unit.client_id,
        publish=publish,
        parents=tuple(dict.fromkeys(tips)) if publish else (),
        flat_weights=flatten_weights(trained) if publish else None,
        tags=dict(client.data.metadata.get("tags", {})),
        reference_accuracy=reference_accuracy,
        test_accuracy=test_accuracy,
        test_loss=test_loss,
        walk_duration=stopwatch.elapsed,
        walk_evaluations=evaluations,
        state=state,
    )


def apply_result(client: "Client", result: ClientRoundResult) -> None:
    """Fold a unit's state delta back into the canonical client.

    Idempotent for serial execution (the client already holds this
    state); for parallel execution it transfers the worker copy's
    advanced rng stream, warmed evaluation cache, evaluation count, and
    personal tail.
    """
    delta = result.state
    if delta is None:
        return
    client.rng.bit_generator.state = delta.rng_state
    client.restore_tx_accuracy_cache(delta.tx_accuracy_cache)
    client.evaluations = delta.evaluations
    client.personal_tail = delta.personal_tail
