"""Round plans: the per-client work of one simulated round, made portable.

One round of DAG learning decomposes into independent *work units* — for
each active client: two biased walks over a **frozen** end-of-last-round
tangle view, local training from the aggregated tip models, and the
publish decision.  Nothing a client does in round *r* can observe
anything published in round *r* (concurrent publication is the paper's
visibility model), so the units are embarrassingly parallel.

This module gives the units an explicit, picklable form so any
:class:`~repro.substrate.executor.Executor` can evaluate them:

- :class:`ClientWorkUnit` — which client, which round, honest or attack;
- :class:`RoundContext` — everything shared by the round's units (the
  frozen view, protocol config, the rng factory seed);
- :func:`execute_unit` — runs one unit to a :class:`ClientRoundResult`;
- :func:`apply_result` — folds a result back into the canonical client.

Determinism: the walk rng is keyed ``("walk", round, client)`` via
:class:`~repro.utils.rng.RngFactory`, and training randomness comes from
the client's own generator whose state travels inside the (possibly
copied) :class:`~repro.fl.client.Client`.  A worker process therefore
draws exactly the numbers the serial path would, and
:class:`ClientStateDelta` carries the advanced state back so the next
round starts identically — serial and parallel execution produce
bit-identical round records for a fixed seed.

Transaction ids are **not** assigned inside units: the id counter is
shared tangle state, so the coordinator assigns ids after the fact, in
active-client order over the units that chose to publish — the exact
order the serial loop produced historically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.dag.tip_selection import (
    AccuracyTipSelector,
    RandomTipSelector,
    TipSelector,
    WeightedTipSelector,
)
from repro.fl.aggregation import FLAT_AGGREGATORS, get_aggregator
from repro.fl.config import DagConfig
from repro.nn.model import plan_local_batches
from repro.nn.serialization import flatten_weights
from repro.nn.training_plane import TrainJob, train_grouped
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # imported lazily to keep the layer boundary clean
    from repro.fl.client import Client

__all__ = [
    "ClientWorkUnit",
    "ClientStateDelta",
    "ClientRoundResult",
    "ClientPrepResult",
    "RoundContext",
    "build_selector",
    "execute_unit",
    "execute_prep_unit",
    "execute_round",
    "probe_in_process",
    "apply_result",
    "plan_client_job",
    "run_training_plane_round",
]


def build_selector(
    client: "Client",
    store,
    config: DagConfig,
    evaluation_counter: Callable[[int], None] | None = None,
) -> TipSelector:
    """Tip selector for ``client`` per the protocol config.

    ``store`` is any tangle-like object (:class:`~repro.dag.tangle.Tangle`
    or a view) used to resolve transaction models for accuracy
    evaluation.  The accuracy selector is wired to the client's *batched*
    cached evaluation (:meth:`~repro.fl.client.Client.tx_accuracies`), the
    contract :class:`~repro.dag.tip_selection.AccuracyTipSelector`
    documents — which routes each walk step's cache misses through the
    fused multi-model forward pass
    (:meth:`~repro.nn.model.Classifier.accuracy_many`) whenever the
    model's layers support it.  Both simulators (round-based and async)
    and every executor therefore share one evaluation plane.

    ``config.walk_engine`` switches both walking selectors to the
    lockstep multi-walk engine (:mod:`repro.dag.walk_engine`): all of a
    selection's particles advance in frontier-batched supersteps over a
    per-epoch CSR snapshot of ``store``, and each superstep's union
    frontier reaches ``tx_accuracies`` as **one** batch — wider fused
    evaluation batches than any single particle's step.
    """
    if config.selector == "random":
        return RandomTipSelector()
    if config.selector == "weighted":
        return WeightedTipSelector(
            config.weighted_alpha,
            depth_range=config.depth_range,
            engine=config.walk_engine,
        )
    return AccuracyTipSelector(
        batch_accuracy_fn=lambda tx_ids: client.tx_accuracies(store, tx_ids),
        alpha=config.alpha,
        normalization=config.normalization,
        depth_range=config.depth_range,
        evaluation_counter=evaluation_counter,
        engine=config.walk_engine,
        score_cache_fn=client.tx_accuracy_cache,
        cache_epoch_fn=lambda: client.cache_epoch,
    )


@dataclass(frozen=True)
class ClientWorkUnit:
    """One client's slice of a round: who works, and how."""

    client_id: int
    round_index: int
    attack: str | None = None  # None = honest; "random_weights" = attacker


@dataclass
class ClientStateDelta:
    """Client-side state advanced by a unit, to fold back at the barrier.

    Only captured for executors that cross a process boundary (the unit
    ran on a pickled copy; the delta is how the coordinator's client
    catches up).  In-process executors mutate the canonical client
    directly and skip the snapshot (``RoundContext.capture_state``).

    ``cache_entries`` is **delta-only** in the common case: the
    evaluations the unit *added* (``Client.cache_entries_since`` against
    a mark taken at unit start), merged into the canonical cache without
    an epoch bump — exactly what in-process warming does.  A unit that
    reset its cache mid-flight (personal-tail adoption) cannot express
    itself as a suffix; it ships the full post-reset cache with
    ``cache_replace=True`` and is restored wholesale (with the epoch
    bump the serial path's reset performed).  Either way, what crosses
    the boundary is what changed — a warmed thousand-entry cache no
    longer re-ships every round.
    """

    rng_state: dict
    cache_entries: dict[str, float]
    cache_replace: bool
    evaluations: int
    personal_tail: list[np.ndarray] | None


def _capture_state_delta(
    client: "Client", cache_mark: tuple[int, int]
) -> ClientStateDelta:
    """Snapshot what a unit changed on its (copied) client."""
    entries = client.cache_entries_since(cache_mark)
    return ClientStateDelta(
        rng_state=client.rng.bit_generator.state,
        cache_entries=client.tx_accuracy_cache() if entries is None else entries,
        cache_replace=entries is None,
        evaluations=client.evaluations,
        personal_tail=client.personal_tail,
    )


@dataclass
class ClientRoundResult:
    """Everything a work unit produced, before tangle mutation.

    ``flat_weights`` is the published model as **one contiguous 1-D
    vector** — the only form a model crosses the process boundary in.
    The coordinator turns it into an arena row on commit
    (:meth:`Transaction.from_flat`); no per-layer list is ever pickled.
    """

    client_id: int
    publish: bool
    parents: tuple[str, ...] = ()
    flat_weights: np.ndarray | None = None
    tags: dict = field(default_factory=dict)
    reference_accuracy: float | None = None
    test_accuracy: float | None = None
    test_loss: float | None = None
    walk_duration: float | None = None
    walk_evaluations: int | None = None
    state: ClientStateDelta | None = None


@dataclass(frozen=True)
class RoundContext:
    """Round-shared inputs: the frozen view and protocol parameters.

    ``view`` is whatever the simulator's visibility rule exposes for the
    round (the raw tangle when there is no propagation delay); it must
    not change while units execute.  ``rng_factory`` reconstructs the
    per-``(round, client)`` walk streams identically in any process.
    ``capture_state`` requests :class:`ClientStateDelta` snapshots in the
    results; coordinators set it to ``False`` for executors that run
    units on the canonical objects (``shares_memory``), where the
    snapshot/restore round-trip would copy growing caches for nothing.
    """

    view: object
    config: DagConfig
    rng_factory: RngFactory
    capture_state: bool = True


def _aggregate_parents(
    context: RoundContext, tips: list[str], config: DagConfig, client: "Client"
) -> list[np.ndarray]:
    """Merge the selected tip models per the protocol's aggregator.

    Fast path: when every parent lives in the same weight arena with the
    model's architecture, the ``(k, P)`` stack comes straight off the
    slab (``WeightArena.rows`` — a zero-copy slice for contiguous rows,
    one gather otherwise) and the merge is one stacked reduction — no
    per-layer lists are built for the inputs.  The result values are
    identical to the list-of-arrays facade (same matrix, same numpy
    reduction); the facade remains the fallback for foreign-shaped
    models.
    """
    parents = [context.view.get(t) for t in tips]
    spec = client.model.flat_spec
    locations = [tx.arena_location() for tx in parents]
    if all(loc is not None for loc in locations):
        arena = locations[0][0]
        if arena.spec == spec and all(loc[0] is arena for loc in locations):
            stacked = arena.rows([loc[1] for loc in locations])
            return spec.unflatten(FLAT_AGGREGATORS[config.aggregator](stacked))
    return get_aggregator(config.aggregator)([tx.model_weights for tx in parents])


def _execute_attack(
    context: RoundContext, unit: ClientWorkUnit, rng: np.random.Generator
) -> ClientRoundResult:
    """The random-weights attack: random tips, random payload."""
    tips = RandomTipSelector().select_tips(
        context.view, context.config.num_tips, rng
    )
    genesis = context.view.genesis.model_weights
    # One normal draw per parameter array keeps the rng stream identical
    # to the historical per-layer payload; shipped as a single vector.
    payload = [rng.normal(0.0, 1.0, size=w.shape) for w in genesis]
    return ClientRoundResult(
        client_id=unit.client_id,
        publish=True,
        parents=tuple(dict.fromkeys(tips)),
        flat_weights=flatten_weights(payload),
        tags={"malicious": True},
    )


def _run_walk_phase(
    context: RoundContext, client: "Client", walk_rng: np.random.Generator
) -> tuple[list[str], list[np.ndarray], float, float | None, int]:
    """The pre-training half of a unit, shared by both round shapes.

    Tip selection, parent aggregation (with the client's personal tail
    grafted on), and the reference (publish-gate baseline) evaluation.
    Returns ``(tips, reference_weights, reference_accuracy,
    walk_duration, walk_evaluations)``.  :func:`execute_unit` and
    :func:`execute_prep_unit` both run exactly this code, so the
    ``training_plane`` knob cannot drift the walk half of a round.
    """
    config = context.config
    evaluations = 0

    def count(candidates: int) -> None:
        nonlocal evaluations
        evaluations += candidates

    selector = build_selector(client, context.view, config, count)
    stopwatch = Stopwatch()
    with stopwatch:
        tips = selector.select_tips(context.view, config.num_tips, walk_rng)

    reference = client.apply_personalization(
        _aggregate_parents(context, tips, config, client)
    )
    reference_accuracy = client.accuracy_of_weights(reference)
    return tips, reference, reference_accuracy, stopwatch.elapsed, evaluations


def execute_unit(payload: tuple[RoundContext, "Client | None", ClientWorkUnit]) -> ClientRoundResult:
    """Run one work unit; pure apart from mutating the given client.

    Takes a single ``(context, client, unit)`` tuple so executors can map
    it directly (``client`` is ``None`` for attack units, which carry no
    client state).
    """
    context, client, unit = payload
    config = context.config
    walk_rng = context.rng_factory.get("walk", unit.round_index, unit.client_id)

    if unit.attack is not None:
        return _execute_attack(context, unit, walk_rng)
    assert client is not None
    cache_mark = client.cache_mark()

    tips, reference, reference_accuracy, walk_duration, evaluations = (
        _run_walk_phase(context, client, walk_rng)
    )

    trained, _train_loss = client.train(reference)
    client.update_personal_tail(trained)
    test_loss, test_accuracy = client.evaluate_weights(trained)

    publish = (not config.publish_gate) or test_accuracy >= reference_accuracy
    state = None
    if context.capture_state:
        state = _capture_state_delta(client, cache_mark)
    return ClientRoundResult(
        client_id=unit.client_id,
        publish=publish,
        parents=tuple(dict.fromkeys(tips)) if publish else (),
        flat_weights=flatten_weights(trained) if publish else None,
        tags=dict(client.data.metadata.get("tags", {})),
        reference_accuracy=reference_accuracy,
        test_accuracy=test_accuracy,
        test_loss=test_loss,
        walk_duration=walk_duration,
        walk_evaluations=evaluations,
        state=state,
    )


def _apply_state_delta(client: "Client", delta: ClientStateDelta) -> None:
    """Transfer a worker copy's advanced state onto the canonical client."""
    client.rng.bit_generator.state = delta.rng_state
    if delta.cache_replace:
        client.restore_tx_accuracy_cache(delta.cache_entries)
    else:
        client.merge_tx_accuracy_cache(delta.cache_entries)
    client.evaluations = delta.evaluations
    client.personal_tail = delta.personal_tail


def apply_result(client: "Client", result: ClientRoundResult) -> None:
    """Fold a unit's state delta back into the canonical client.

    Idempotent for serial execution (the client already holds this
    state); for parallel execution it transfers the worker copy's
    advanced rng stream, warmed evaluation cache, evaluation count, and
    personal tail.
    """
    if result.state is not None:
        _apply_state_delta(client, result.state)


def probe_in_process(executor, payloads: list) -> bool:
    """Whether mapping ``payloads`` will stay in the calling process.

    Prefers the payload-aware probe (mirrors an
    :class:`~repro.substrate.executor.AutoExecutor`'s byte-cost routing
    exactly), falls back to the count-only probe, then to the static
    ``shares_memory`` flag.  Coordinators use the answer to decide
    ``RoundContext.capture_state``: the only unsafe mistake is claiming
    in-process for a round that crosses a boundary, and every fallback
    here errs the other way.
    """
    payload_probe = getattr(executor, "will_run_in_process_payloads", None)
    if payload_probe is not None:
        return payload_probe(payloads)
    count_probe = getattr(executor, "will_run_in_process", None)
    if count_probe is not None:
        return count_probe(len(payloads))
    return getattr(executor, "shares_memory", False)


def execute_round(
    executor,
    *,
    tangle,
    view,
    config: DagConfig,
    rng_factory: RngFactory,
    units: list[ClientWorkUnit],
    clients: dict[int, "Client"],
) -> list[ClientRoundResult]:
    """Run one planned round through ``executor`` — the coordinator half
    shared by both simulators (:class:`~repro.fl.dag_learning.
    TangleLearning` and :class:`~repro.sim.engine.TangleSim`).

    When the executor can fan out (``parallelism > 1``), the round's
    heavyweight state is exported to shared memory *before* anything
    else: the tangle's weight arena (:meth:`~repro.dag.tangle.Tangle.
    share_memory`) and each active client's dataset tensors — both
    idempotent, so steady-state rounds pay a dictionary check.  From
    then on pickling a payload ships attach-by-name handles plus the
    per-round scalars, not the slabs.  The ordering matters for the
    router too: the cost model must see the payloads *after* export,
    otherwise an unshared tangle prices every round out of the pool and
    the segments would never pay off.

    The executor is then probed (:func:`probe_in_process`) so
    serial-routed rounds skip the state snapshot/capture round-trip,
    and the units dispatch through the training plane or a plain
    :func:`execute_unit` map.  The caller folds results back
    (:func:`apply_result`) and commits publications; results arrive in
    unit order either way.
    """
    if getattr(executor, "parallelism", 1) > 1:
        share = getattr(tangle, "share_memory", None)
        if share is not None:
            share()
        for unit in units:
            if unit.attack is None:
                clients[unit.client_id].data.share_memory()

    def build_payloads(context: RoundContext) -> list[tuple]:
        return [
            (
                context,
                None if unit.attack is not None else clients[unit.client_id],
                unit,
            )
            for unit in units
        ]

    context = RoundContext(
        view=view, config=config, rng_factory=rng_factory, capture_state=True
    )
    payloads = build_payloads(context)
    if probe_in_process(executor, payloads):
        context = RoundContext(
            view=view, config=config, rng_factory=rng_factory, capture_state=False
        )
        payloads = build_payloads(context)
    if config.training_plane:
        return run_training_plane_round(executor, context, payloads, clients)
    return executor.map(execute_unit, payloads)


# --------------------------------------------------------------------------
# Training-plane rounds: walk per client, train in lockstep, finalize.
# --------------------------------------------------------------------------


@dataclass
class ClientPrepResult:
    """Everything an honest unit produces *before* local training.

    The training-plane round splits :func:`execute_unit` at the training
    boundary: walks, parent aggregation, and the reference evaluation
    stay per-client (and keep parallelizing across workers); local
    training then runs on the coordinator in fused lockstep supersteps
    over the stacked reference weights.  ``reference_flat`` is the
    client's post-personalization starting point as one float64 vector —
    the row the lockstep ``(K, P)`` stack is assembled from.

    Attack units never train, so their prep carries the finished
    :class:`ClientRoundResult` in ``attack_result`` instead.
    """

    client_id: int
    attack_result: ClientRoundResult | None = None
    tips: tuple[str, ...] = ()
    reference_flat: np.ndarray | None = None
    reference_accuracy: float | None = None
    walk_duration: float | None = None
    walk_evaluations: int | None = None
    state: ClientStateDelta | None = None


def execute_prep_unit(
    payload: tuple[RoundContext, "Client | None", ClientWorkUnit]
) -> ClientPrepResult:
    """The walk/aggregation half of :func:`execute_unit`.

    Performs tip selection, parent aggregation, and the reference
    (publish-gate baseline) evaluation — everything up to, but not
    including, local training.  It runs literally the same code as the
    first half of :func:`execute_unit` (:func:`_run_walk_phase`), and
    the walk rng is factory-keyed while the client's shuffle rng is
    untouched here, so splitting the unit cannot shift any stream.
    """
    context, client, unit = payload
    walk_rng = context.rng_factory.get("walk", unit.round_index, unit.client_id)

    if unit.attack is not None:
        return ClientPrepResult(
            client_id=unit.client_id,
            attack_result=_execute_attack(context, unit, walk_rng),
        )
    assert client is not None
    cache_mark = client.cache_mark()

    tips, reference, reference_accuracy, walk_duration, evaluations = (
        _run_walk_phase(context, client, walk_rng)
    )

    state = None
    if context.capture_state:
        state = _capture_state_delta(client, cache_mark)
    return ClientPrepResult(
        client_id=unit.client_id,
        tips=tuple(tips),
        reference_flat=client.model.flat_spec.flatten(reference),
        reference_accuracy=reference_accuracy,
        walk_duration=walk_duration,
        walk_evaluations=evaluations,
        state=state,
    )


def plan_client_job(client: "Client", start_flat: np.ndarray, tag: object) -> TrainJob:
    """One client's local training as a lockstep :class:`TrainJob`.

    Planning the batch schedule here is deliberate — it consumes the
    client's shuffle rng exactly as ``train_local`` would, so callers
    must plan jobs in the same order the sequential path would train
    them.  Shared by the round substrate and the event-driven simulator
    (:mod:`repro.sim`), whose supersteps stack these jobs per model into
    one :func:`repro.nn.training_plane.train_grouped` call.
    """
    train_config = client.config
    batches = plan_local_batches(
        client.data.x_train.shape[0],
        client.rng,
        epochs=train_config.local_epochs,
        batch_size=train_config.batch_size,
        max_batches=train_config.local_batches,
    )
    return TrainJob(
        x=client.data.x_train,
        y=client.data.y_train,
        batches=batches,
        start_flat=start_flat,
        tag=tag,
        lr=train_config.learning_rate,
        momentum=train_config.momentum,
    )


def run_training_plane_round(
    executor,
    context: RoundContext,
    payloads: list[tuple[RoundContext, "Client | None", ClientWorkUnit]],
    clients: dict[int, "Client"],
) -> list[ClientRoundResult]:
    """One round with lockstep local training; drop-in for the
    ``executor.map(execute_unit, payloads)`` call.

    Three phases:

    1. **Prep** — :func:`execute_prep_unit` per unit through the given
       executor (walks and reference evaluations parallelize exactly as
       whole units did); worker state deltas fold into the canonical
       clients immediately, because phase 2 consumes their rng streams.
    2. **Lockstep training** — jobs are planned in active-client order
       (consuming each client's shuffle rng exactly as ``train_local``
       would), grouped by shared model and optimizer configuration, and
       advanced by :class:`~repro.nn.training_plane.LockstepTrainer` in
       fused supersteps.  Mixed-architecture rounds simply form one
       group per model; unfused models fall back per model inside the
       trainer.
    3. **Finalize** — per client in order: personal-tail update, test
       evaluation of the trained row, publish gate — producing the same
       :class:`ClientRoundResult` fields, bit for bit, as
       :func:`execute_unit`.

    Because lockstep training is bit-identical to the per-client loop,
    the round's results are identical to the non-plane path no matter
    which executor ran phase 1.  The returned results carry no state
    deltas (phases 2-3 already ran on the canonical clients).
    """
    preps = executor.map(execute_prep_unit, payloads)
    for payload, prep in zip(payloads, preps):
        unit = payload[2]
        if unit.attack is None and prep.state is not None:
            _apply_state_delta(clients[prep.client_id], prep.state)

    # Plan jobs in active order; group by model so mixed-architecture
    # rounds fuse what they can, per model.  Dropout stream order is
    # client-major *across* a model's whole job list, so all of a
    # model's jobs must go through ONE trainer call — jobs carry their
    # own optimizer config, and fusion within the call requires it to
    # be uniform across the fused rows.
    model_jobs: dict[int, tuple] = {}  # id(model) -> (model, jobs)
    for index, (payload, prep) in enumerate(zip(payloads, preps)):
        if payload[2].attack is not None:
            continue
        client = clients[prep.client_id]
        job = plan_client_job(client, prep.reference_flat, index)
        model_jobs.setdefault(id(client.model), (client.model, []))[1].append(job)

    trained: dict[int, tuple[np.ndarray, float]] = train_grouped(
        list(model_jobs.values())
    )

    config = context.config
    results: list[ClientRoundResult] = []
    for index, (payload, prep) in enumerate(zip(payloads, preps)):
        if payload[2].attack is not None:
            assert prep.attack_result is not None
            results.append(prep.attack_result)
            continue
        client = clients[prep.client_id]
        row, _train_loss = trained[index]
        if client.personal_params:
            client.update_personal_tail(client.model.flat_spec.unflatten(row))
        test_loss, test_accuracy = client.evaluate_flat(row)
        publish = (not config.publish_gate) or test_accuracy >= prep.reference_accuracy
        results.append(
            ClientRoundResult(
                client_id=prep.client_id,
                publish=publish,
                parents=tuple(dict.fromkeys(prep.tips)) if publish else (),
                flat_weights=row if publish else None,
                tags=dict(client.data.metadata.get("tags", {})),
                reference_accuracy=prep.reference_accuracy,
                test_accuracy=test_accuracy,
                test_loss=test_loss,
                walk_duration=prep.walk_duration,
                walk_evaluations=prep.walk_evaluations,
            )
        )
    return results
