"""repro.substrate — the round-execution layer.

The federated simulators (:mod:`repro.fl`) describe *what* happens in a
round; this package decides *how* that work runs.  The split follows the
middleware tradition of separating the coordination substrate from
application logic: simulators build a round plan of independent
per-client work units over a frozen tangle view, and an executor
evaluates them — serially or across a process pool — with bit-identical
results for a fixed seed.

- :mod:`repro.substrate.executor` — :class:`Executor` strategies
  (:class:`SerialExecutor`, :class:`ParallelExecutor`,
  :class:`AutoExecutor`, :func:`make_executor`); selected through the
  ``parallelism`` knob of :class:`repro.fl.config.DagConfig` (``"auto"``
  routes per round: serial on single-core machines or tiny round plans,
  a machine-sized pool otherwise).
- :mod:`repro.substrate.round_plan` — picklable work units, the shared
  :class:`RoundContext`, :func:`execute_unit`, and the state-delta
  machinery that folds worker results back into coordinator clients.
  :func:`run_training_plane_round` is the lockstep-training variant of a
  round: per-client walk/aggregation units (:func:`execute_prep_unit`)
  through any executor, then one fused local-SGD pass across all
  participants (:mod:`repro.nn.training_plane`), then per-client
  finalization — bit-identical to mapping :func:`execute_unit`.

See ``docs/architecture.md`` for the layer map and a walkthrough of one
round through this substrate.
"""

from repro.substrate.cost import estimate_payload
from repro.substrate.executor import (
    AutoExecutor,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    available_cores,
    make_executor,
)
from repro.substrate.round_plan import (
    ClientPrepResult,
    ClientRoundResult,
    ClientStateDelta,
    ClientWorkUnit,
    RoundContext,
    apply_result,
    build_selector,
    execute_prep_unit,
    execute_round,
    execute_unit,
    plan_client_job,
    probe_in_process,
    run_training_plane_round,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "AutoExecutor",
    "available_cores",
    "estimate_payload",
    "make_executor",
    "ClientWorkUnit",
    "ClientStateDelta",
    "ClientPrepResult",
    "ClientRoundResult",
    "RoundContext",
    "build_selector",
    "execute_unit",
    "execute_prep_unit",
    "execute_round",
    "probe_in_process",
    "apply_result",
    "plan_client_job",
    "run_training_plane_round",
]
