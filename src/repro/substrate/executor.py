"""Executors: how a round's per-client work units get run.

The simulators describe *what* each active client does in a round
(:mod:`repro.substrate.round_plan`); an executor decides *how* those
descriptions are evaluated — in-process one after another
(:class:`SerialExecutor`) or fanned out over worker processes
(:class:`ParallelExecutor`).  Both produce the same results for the same
inputs: work units are pure functions of a frozen tangle view plus
per-client state, and every random draw comes from a stream keyed by
``(round, client)``, so evaluation order cannot leak into the outcome.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Protocol, Sequence, TypeVar

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
]

T = TypeVar("T")
R = TypeVar("R")


class Executor(Protocol):
    """Strategy for evaluating a batch of independent work units."""

    #: Number of concurrent workers this executor targets (1 = serial).
    parallelism: int

    #: True when work units run on the caller's own objects (no pickling),
    #: so coordinators can skip state snapshot/restore round-trips.
    shares_memory: bool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Evaluate ``fn`` over ``items``, preserving input order."""
        ...

    def close(self) -> None:
        """Release any worker resources (idempotent)."""
        ...


class SerialExecutor:
    """Evaluate work units one after another in the calling process.

    The reference implementation: the parallel executor is correct
    exactly when it is indistinguishable from this one.
    """

    parallelism = 1
    shares_memory = True

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:  # nothing to release
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ParallelExecutor:
    """Evaluate work units concurrently in a process pool.

    Uses :class:`concurrent.futures.ProcessPoolExecutor` with the
    ``fork`` start method where available (cheap workers sharing the
    parent's loaded modules) and the platform default elsewhere.  The
    pool is created lazily on first use and reused across rounds; call
    :meth:`close` (or use the executor as a context manager) to shut the
    workers down.

    ``fn`` and the items must be picklable; items are distributed in
    contiguous chunks so per-round payload shared between units is
    serialized once per chunk rather than once per unit — with the
    flat-weight plane, the shared :class:`RoundContext`'s tangle pickles
    its whole model store as **one contiguous arena slab** per chunk
    instead of one small array per layer per transaction, and each
    result returns at most one model vector.  ``chunksize`` overrides
    the default one-chunk-per-worker split (useful when unit runtimes
    are very uneven).
    """

    shares_memory = False

    def __init__(self, workers: int | None = None, *, chunksize: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.parallelism = workers or (os.cpu_count() or 2)
        self.chunksize = chunksize
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.parallelism, mp_context=context
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:  # pool overhead buys nothing
            return [fn(items[0])]
        chunksize = self.chunksize or max(1, math.ceil(len(items) / self.parallelism))
        return list(self._ensure_pool().map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def make_executor(parallelism: int) -> Executor:
    """Executor for a ``parallelism`` knob value.

    ``1`` (the default everywhere) is the serial reference path, ``n > 1``
    a process pool with ``n`` workers, and ``0`` a process pool sized to
    the machine (``os.cpu_count()``).
    """
    if parallelism < 0:
        raise ValueError(f"parallelism must be >= 0, got {parallelism}")
    if parallelism == 1:
        return SerialExecutor()
    return ParallelExecutor(workers=parallelism or None)
