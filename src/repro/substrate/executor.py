"""Executors: how a round's per-client work units get run.

The simulators describe *what* each active client does in a round
(:mod:`repro.substrate.round_plan`); an executor decides *how* those
descriptions are evaluated — in-process one after another
(:class:`SerialExecutor`) or fanned out over worker processes
(:class:`ParallelExecutor`).  Both produce the same results for the same
inputs: work units are pure functions of a frozen tangle view plus
per-client state, and every random draw comes from a stream keyed by
``(round, client)``, so evaluation order cannot leak into the outcome.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Protocol, Sequence, TypeVar

from repro.substrate.cost import estimate_payload

_LOG = logging.getLogger(__name__)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "AutoExecutor",
    "available_cores",
    "make_executor",
]


def available_cores() -> int:
    """Cores actually usable by this process (affinity-mask aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platform without affinity masks
        return os.cpu_count() or 1

T = TypeVar("T")
R = TypeVar("R")


class Executor(Protocol):
    """Strategy for evaluating a batch of independent work units."""

    #: Number of concurrent workers this executor targets (1 = serial).
    parallelism: int

    #: True when work units run on the caller's own objects (no pickling),
    #: so coordinators can skip state snapshot/restore round-trips.
    shares_memory: bool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Evaluate ``fn`` over ``items``, preserving input order."""
        ...

    def close(self) -> None:
        """Release any worker resources (idempotent)."""
        ...


class SerialExecutor:
    """Evaluate work units one after another in the calling process.

    The reference implementation: the parallel executor is correct
    exactly when it is indistinguishable from this one.
    """

    parallelism = 1
    shares_memory = True

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:  # nothing to release
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ParallelExecutor:
    """Evaluate work units concurrently in a process pool.

    Uses :class:`concurrent.futures.ProcessPoolExecutor` with the
    ``fork`` start method where available (cheap workers sharing the
    parent's loaded modules) and the platform default elsewhere.  The
    pool is created lazily on first use and reused across rounds; call
    :meth:`close` (or use the executor as a context manager) to shut the
    workers down.

    ``fn`` and the items must be picklable; items are distributed in
    contiguous chunks so per-round payload shared between units is
    serialized once per chunk rather than once per unit — with the
    flat-weight plane, the shared :class:`RoundContext`'s tangle pickles
    its whole model store as **one contiguous arena slab** per chunk
    instead of one small array per layer per transaction (or, once the
    tangle has been :meth:`~repro.dag.tangle.Tangle.share_memory`'d, as
    a few-hundred-byte attach-by-name handle), and each result returns
    at most one model vector.  ``chunksize`` overrides the default
    one-chunk-per-worker split (useful when unit runtimes are very
    uneven).

    **Worker-crash resilience.**  A worker dying mid-round (OOM killer,
    segfault, ``os._exit``) breaks the whole pool —
    :class:`~concurrent.futures.process.BrokenProcessPool`.  Because
    work units are pure functions of their pickled payload (workers
    never mutate coordinator state), the round can be re-run serially
    in-process with bit-identical results: :meth:`map` does exactly
    that, discards the broken pool (a fresh one is created lazily on
    the next round), and records the event in
    ``mode_counts["fallback"]``.
    """

    shares_memory = False

    def __init__(self, workers: int | None = None, *, chunksize: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.parallelism = workers or (os.cpu_count() or 2)
        self.chunksize = chunksize
        self._pool: ProcessPoolExecutor | None = None
        self.mode_counts = {"parallel": 0, "fallback": 0, "shutdown_error": 0}
        self.last_mode: str | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.parallelism, mp_context=context
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:  # pool overhead buys nothing
            return [fn(items[0])]
        chunksize = self.chunksize or max(1, math.ceil(len(items) / self.parallelism))
        try:
            results = list(self._ensure_pool().map(fn, items, chunksize=chunksize))
        except BrokenProcessPool:
            # A worker died mid-round.  Nothing it did is visible to the
            # coordinator (workers only mutate their pickled copies), so
            # re-running the whole batch serially in-process is
            # bit-identical to a successful parallel round.
            self._discard_broken_pool()
            self.last_mode = "fallback"
            self.mode_counts["fallback"] += 1
            return [fn(item) for item in items]
        self.last_mode = "parallel"
        self.mode_counts["parallel"] += 1
        return results

    def _note_swallowed_shutdown(self, where: str, exc: BaseException) -> None:
        """A pool shutdown failed but must not mask the caller's work:
        count it (``mode_counts["shutdown_error"]``) and log the type,
        so the event is observable instead of silently vanishing."""
        self.mode_counts["shutdown_error"] += 1
        _LOG.warning(
            "pool shutdown in %s raised %s: %s", where, type(exc).__name__, exc
        )

    def _discard_broken_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False)
            except (OSError, RuntimeError) as exc:
                # The concrete ways tearing down an already-broken pool
                # fails (dead pipes, double-shutdown races).  Anything
                # else is a programming error and propagates.
                self._note_swallowed_shutdown("_discard_broken_pool", exc)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        if getattr(self, "_pool", None) is None:
            return  # nothing held, or __init__ never finished
        try:
            self.close()
        except (OSError, RuntimeError) as exc:
            # Close at garbage-collection time can race interpreter or
            # worker teardown; those concrete failures are counted and
            # logged, not silenced wholesale.
            self._note_swallowed_shutdown("__del__", exc)


class AutoExecutor:
    """Route each round to serial or parallel execution by measured fit.

    The process pool only pays off when (a) the machine has at least two
    usable cores — on a single-core box time-slicing makes a parallel
    win physically impossible, the regression ``BENCH_substrate.json``
    recorded — (b) the round plan has enough units to amortize pool
    coordination, and (c) the *bytes* work out: what crosses the process
    boundary must be small relative to the work the units represent.
    The old router could only see the unit count; this one runs the
    :func:`repro.substrate.cost.estimate_payload` cost model over the
    actual payloads, producing ``(ipc, dense)`` — bytes that would
    pickle vs. the dense working set the units touch — and routes
    serial when

    - the machine is single-core (unless ``workers`` overrides), or
    - the batch has fewer than ``min_units`` items, or
    - ``ipc`` exceeds ``ipc_budget`` (shipping the payload would cost
      more than the pool saves; an *unshared* tangle or dataset lands
      here, which is why coordinators export to shared memory before
      routing), or
    - ``dense`` is below ``min_work_bytes`` (the round's working set is
      too small for per-unit compute to amortize coordination).

    Larger rounds fan out over a lazily created machine-sized
    :class:`ParallelExecutor`.  Because work units draw from keyed rng
    streams, the route cannot affect results — only wall-clock.

    ``mode_counts`` / ``last_mode`` record the decisions (including
    mid-round worker-crash ``"fallback"`` degradations, see
    :class:`ParallelExecutor`) so benchmarks and experiments can report
    which mode auto picked; ``last_estimate`` keeps the most recent
    ``(ipc, dense)`` pair.

    Passing ``workers`` explicitly is an override of the machine
    sizing, *including* the single-core guard: ``AutoExecutor(workers=2)``
    will route large batches to a 2-worker pool even on a one-core
    machine.  Leave it unset to get the guarded default.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        min_units: int = 4,
        ipc_budget: int = 8 << 20,
        min_work_bytes: int = 1 << 20,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_units < 1:
            raise ValueError(f"min_units must be >= 1, got {min_units}")
        if ipc_budget < 0 or min_work_bytes < 0:
            raise ValueError("ipc_budget and min_work_bytes must be >= 0")
        self.cores = available_cores()
        self.parallelism = workers or (self.cores if self.cores >= 2 else 1)
        self.min_units = min_units
        self.ipc_budget = ipc_budget
        self.min_work_bytes = min_work_bytes
        self._serial = SerialExecutor()
        self._parallel: ParallelExecutor | None = None
        self.mode_counts = {"serial": 0, "parallel": 0, "fallback": 0}
        self.last_mode: str | None = None
        self.last_estimate: tuple[int, int] | None = None

    @property
    def shares_memory(self) -> bool:
        # Only claim in-process execution when parallel routing is
        # impossible; otherwise coordinators that cannot predict the
        # batch must capture state deltas, because any given round may
        # cross a process boundary.  Coordinators that do hold the
        # payloads should ask :meth:`will_run_in_process_payloads` and
        # skip the snapshot/restore round-trip for serial-routed rounds.
        return self.parallelism == 1

    def _route_in_process(self, items: Sequence) -> bool:
        """The routing decision :meth:`map` uses — True means serial.

        Deterministic in the payloads, so probing before ``map`` with
        the same items always agrees with the dispatch itself.
        """
        if self.parallelism == 1 or len(items) < self.min_units:
            return True
        ipc, dense = estimate_payload(items)
        self.last_estimate = (ipc, dense)
        return ipc > self.ipc_budget or dense < self.min_work_bytes

    def will_run_in_process(self, unit_count: int) -> bool:
        """Count-only probe: True when ``unit_count`` items *certainly*
        stay in-process.

        Without seeing the payloads this can only decide the cheap
        directions (single-core, below ``min_units``); a False here
        means "may go parallel" — the byte thresholds can still route
        the actual ``map`` serially, which is safe for coordinators
        (capturing state for an in-process round wastes a copy but
        cannot corrupt results).  Coordinators holding the payloads
        should prefer :meth:`will_run_in_process_payloads`, which
        mirrors :meth:`map` exactly.
        """
        return self.parallelism == 1 or unit_count < self.min_units

    def will_run_in_process_payloads(self, items: Sequence) -> bool:
        """Payload-aware probe: mirrors :meth:`map`'s routing exactly."""
        return self._route_in_process(items)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if self._route_in_process(items):
            self.last_mode = "serial"
            self.mode_counts["serial"] += 1
            return self._serial.map(fn, items)
        if self._parallel is None:
            self._parallel = ParallelExecutor(workers=self.parallelism)
        fallbacks_before = self._parallel.mode_counts["fallback"]
        results = self._parallel.map(fn, items)
        if self._parallel.mode_counts["fallback"] > fallbacks_before:
            self.last_mode = "fallback"
            self.mode_counts["fallback"] += 1
        else:
            self.last_mode = "parallel"
            self.mode_counts["parallel"] += 1
        return results

    def close(self) -> None:
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "AutoExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def make_executor(parallelism: int | str) -> Executor:
    """Executor for a ``parallelism`` knob value.

    ``1`` (the default everywhere) is the serial reference path, ``n > 1``
    a process pool with ``n`` workers, ``0`` a process pool sized to
    the machine (``os.cpu_count()``), and ``"auto"`` an
    :class:`AutoExecutor` that falls back to serial on single-core
    machines and for rounds too small to amortize pool coordination.
    """
    if isinstance(parallelism, str):
        if parallelism != "auto":
            raise ValueError(
                f"parallelism must be an int >= 0 or 'auto', got {parallelism!r}"
            )
        return AutoExecutor()
    if parallelism < 0:
        raise ValueError(f"parallelism must be >= 0, got {parallelism}")
    if parallelism == 1:
        return SerialExecutor()
    return ParallelExecutor(workers=parallelism or None)
