"""Payload-size cost model for routing rounds between executors.

A process pool pays twice per round: the payload is pickled across the
boundary (bytes **actually sent**) and the workers must have enough
compute to amortize the coordination.  Neither is visible from a unit
*count* — the heuristic the router used to rely on — so this module
estimates two numbers for a batch of work items:

- ``ipc`` — bytes that will cross the process boundary.  Shared-memory
  backed objects (a :meth:`~repro.dag.arena.WeightArena.to_shared` arena,
  an exported :class:`~repro.data.base.ClientData`) count as their
  attach-by-name handles, not their tensors.
- ``dense`` — the working-set bytes the units touch (the same objects at
  full size, shared or not).  This is the router's compute proxy: in
  this system per-unit work scales with model and dataset size, so a
  round whose dense footprint is tiny cannot possibly out-run the pool's
  coordination overhead, no matter how many units it has.

Estimation is structural, not ``pickle.dumps``: the walker recurses
through containers and object ``__dict__``s with an id-based memo
(mirroring pickle's memoization — a context shared by every unit is
counted once), and heavyweight classes short-circuit it with a
``_cost_footprint(walk) -> (ipc, dense)`` hook (arena, tangle, views,
client, client data).  Unknown leaves cost a small constant; the point
is routing, not accounting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["estimate_payload"]

#: Flat per-object estimate for leaves the walker cannot introspect.
_LEAF_NBYTES = 64

#: Recursion cutoff: a payload deeper than this is not a round payload.
_MAX_DEPTH = 8


def estimate_payload(items) -> tuple[int, int]:
    """``(ipc_bytes, dense_bytes)`` estimate for mapping ``items``.

    ``ipc_bytes`` approximates what pickling the batch ships (memoized
    like pickle: shared objects count once); ``dense_bytes`` is the same
    walk with shared-memory residency ignored — the working-set proxy.
    """
    seen: set[int] = set()

    def walk(obj, depth: int = 0) -> tuple[int, int]:
        if obj is None or isinstance(obj, (bool, int, float, complex)):
            return 28, 28
        object_id = id(obj)
        if object_id in seen:
            return 0, 0
        seen.add(object_id)
        hook = getattr(obj, "_cost_footprint", None)
        if hook is not None:
            return hook(lambda child: walk(child, depth + 1))
        if isinstance(obj, np.ndarray):
            return obj.nbytes + 96, obj.nbytes + 96
        if isinstance(obj, (str, bytes, bytearray)):
            return len(obj) + 49, len(obj) + 49
        if depth >= _MAX_DEPTH:
            return _LEAF_NBYTES, _LEAF_NBYTES
        if isinstance(obj, (tuple, list, set, frozenset)):
            ipc = dense = 56 + 8 * len(obj)
            for child in obj:
                child_ipc, child_dense = walk(child, depth + 1)
                ipc += child_ipc
                dense += child_dense
            return ipc, dense
        if isinstance(obj, dict):
            ipc = dense = 64 + 16 * len(obj)
            for key, value in obj.items():
                for child in (key, value):
                    child_ipc, child_dense = walk(child, depth + 1)
                    ipc += child_ipc
                    dense += child_dense
            return ipc, dense
        attributes = getattr(obj, "__dict__", None)
        if attributes:
            ipc, dense = walk(attributes, depth + 1)
            return ipc + _LEAF_NBYTES, dense + _LEAF_NBYTES
        return _LEAF_NBYTES, _LEAF_NBYTES

    total_ipc = total_dense = 0
    for item in items:
        item_ipc, item_dense = walk(item)
        total_ipc += item_ipc
        total_dense += item_dense
    return total_ipc, total_dense
