"""Wall-clock measurement helpers used by the scalability experiments."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating stopwatch.

    Used to measure the duration of random walks (Figure 15).  Supports use
    as a context manager; ``elapsed`` accumulates over repeated uses so a
    single stopwatch can total many walk segments.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:
            return
        lap = time.perf_counter() - self._start
        self.elapsed += lap
        self.laps.append(lap)
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time and lap history."""
        self.elapsed = 0.0
        self.laps = []
        self._start = None

    @property
    def mean_lap(self) -> float:
        """Mean duration of recorded laps (0.0 when no laps recorded)."""
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)
