"""Deterministic random-number management.

All randomness in the library flows through :class:`numpy.random.Generator`
instances.  Experiments take a single integer seed and derive independent
child streams for every stochastic component (data generation, client
sampling, random walks, attacks) so that results are reproducible and the
consumption of randomness by one component never shifts another.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory", "advance_rng", "child_rng", "clone_rng", "ensure_rng"]


def ensure_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def clone_rng(rng: np.random.Generator) -> np.random.Generator:
    """Independent generator starting at ``rng``'s exact current state.

    The clone and the original then evolve separately; neither advances
    the other.  Used by the lockstep training plane to give each model
    of a fused group its own dropout stream.
    """
    bit = type(rng.bit_generator)()
    bit.state = rng.bit_generator.state
    return np.random.Generator(bit)


def advance_rng(rng: np.random.Generator, draws: int) -> np.random.Generator:
    """Advance ``rng`` in place as if ``draws`` uniform doubles had been drawn.

    numpy's ``Generator.random`` consumes exactly one 64-bit step per
    double, so bit generators with an ``advance`` method (PCG64, the
    ``default_rng`` family) jump in O(log n); anything else falls back to
    drawing and discarding in chunks.  Returns ``rng`` for chaining.
    """
    if draws < 0:
        raise ValueError(f"draws must be >= 0, got {draws}")
    if draws == 0:
        return rng
    advance = getattr(rng.bit_generator, "advance", None)
    if advance is not None:
        advance(int(draws))
        return rng
    remaining = int(draws)
    while remaining:
        chunk = min(remaining, 1 << 16)
        rng.random(chunk)
        remaining -= chunk
    return rng


def child_rng(rng: np.random.Generator, *key: int | str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key.

    String keys are hashed into integers in a platform-independent way so
    that e.g. ``child_rng(rng, "walk", 3)`` always maps to the same stream
    for the same parent state.  The parent generator is *not* advanced.
    """
    ints: list[int] = []
    for part in key:
        if isinstance(part, str):
            acc = 0
            for ch in part:
                acc = (acc * 131 + ord(ch)) % (2**63)
            ints.append(acc)
        else:
            ints.append(int(part) % (2**63))
    state_word = int(rng.bit_generator.state["state"]["state"]) % (2**63)
    seed_seq = np.random.SeedSequence([state_word, *ints])
    return np.random.default_rng(seed_seq)


class RngFactory:
    """Factory producing named, independent random streams from one seed.

    >>> streams = RngFactory(7)
    >>> a = streams.get("data")
    >>> b = streams.get("walk", 0)

    Repeated calls with the same key return generators with identical
    initial state, which makes it easy to re-create a stream for replay.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)

    def get(self, *key: int | str) -> np.random.Generator:
        """Return a fresh generator for the given key path."""
        ints: list[int] = [self.seed]
        for part in key:
            if isinstance(part, str):
                acc = 0
                for ch in part:
                    acc = (acc * 131 + ord(ch)) % (2**63)
                ints.append(acc)
            else:
                ints.append(int(part) % (2**63))
        return np.random.default_rng(np.random.SeedSequence(ints))

    def spawn(self, *key: int | str) -> "RngFactory":
        """Return a sub-factory whose streams are independent of ours."""
        sub_seed = int(self.get(*key, "spawn").integers(0, 2**62))
        return RngFactory(sub_seed)
