"""Shared utilities: seeded RNG streams, timers, and light validation."""

from repro.utils.rng import RngFactory, child_rng, ensure_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "RngFactory",
    "child_rng",
    "ensure_rng",
    "Stopwatch",
    "check_positive",
    "check_probability",
]
