"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

__all__ = ["check_positive", "check_probability"]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
