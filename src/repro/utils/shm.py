"""Process-shared memory segments with explicit, leak-proof lifecycle.

The parallel substrate's zero-copy plane: the :class:`~repro.dag.arena.
WeightArena` slab and every client's dataset tensors live in named
``multiprocessing.shared_memory`` segments, so crossing a process
boundary ships a **name**, not the bytes.  This module owns the two
sides of that protocol:

- the **owner** side (the coordinator): :func:`create_segment` allocates
  a named segment and records it in a per-process registry;
  :func:`unlink_segment` removes its filesystem name (idempotent), and
  :func:`release_all` — registered with :mod:`atexit` — guarantees no
  segment this process created outlives the interpreter;
- the **attach** side (pool workers): :func:`attach_cached` maps a
  segment by name once and caches the mapping keyed by the owning
  object's ``uid``, so a persistent worker re-attaches only when the
  owner republished a new segment (capacity growth) — per-round cost is
  a dictionary lookup, not an ``mmap``.

Names carry a recognizable prefix plus the creating pid
(``repro-shm-<pid>-<seq>-<nonce>``), so test harnesses and CI can
assert that a run left nothing behind in ``/dev/shm``
(:func:`segment_prefix`, :func:`owned_segment_names`).

Unlinking never invalidates live mappings (POSIX semantics): readers
holding numpy views into an unlinked segment keep working, and the
memory is returned when the last mapping is garbage-collected.  That is
why stale attachments are simply *dropped*, never force-closed — an
explicit ``close()`` under live numpy views raises ``BufferError``.

The registry records the creating pid so that ``fork``-spawned workers,
which inherit the parent's module state, can never unlink segments the
parent still owns.
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import threading
from multiprocessing import resource_tracker, shared_memory

__all__ = [
    "create_segment",
    "attach_segment",
    "attach_cached",
    "unlink_segment",
    "release_all",
    "owned_segment_names",
    "segment_prefix",
    "new_uid",
]

_PREFIX = "repro-shm"

#: Segments created by THIS process: name -> (creating pid, SharedMemory).
_owned: dict[str, tuple[int, shared_memory.SharedMemory]] = {}

#: Attachments made by this process: owner uid -> (segment name, SharedMemory).
_attached: dict[str, tuple[str, shared_memory.SharedMemory]] = {}

_counter = 0


def segment_prefix() -> str:
    """The name prefix of every segment this library creates."""
    return _PREFIX


def new_uid() -> str:
    """A stable identity for an object that republishes segments over time.

    Attach caches key on the uid, so a new *generation* (new segment
    name, same uid) replaces the old mapping instead of piling up.
    """
    return f"{os.getpid()}-{secrets.token_hex(6)}"


def _untrack(name: str) -> None:
    """Drop a segment from the resource tracker's bookkeeping.

    Attach-side mappings must not be tracked: with the ``fork`` start
    method, pool workers share the parent's tracker, and attach-side
    registrations would make worker exits look like leaks (and, at
    interpreter shutdown, unlink segments the owner still serves).
    Owner-side registrations are *kept* so a hard-killed coordinator
    still gets its segments reaped by the tracker.
    """
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # tracker layouts differ across versions; best-effort
        pass


def _retrack(name: str) -> None:
    """Re-register a segment right before the owner unlinks it.

    The tracker's cache is one shared *set* across fork-children: a
    worker's attach-side :func:`_untrack` also erases the owner's
    registration, so the owner's eventual ``unlink()`` would send an
    unbalanced unregister and the tracker process would print a
    ``KeyError`` traceback.  Registering is idempotent; doing it just
    before unlink keeps the pair balanced and the tracker silent.
    """
    try:
        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:  # best-effort, mirroring _untrack
        pass


#: Handlers that were installed before ours, for chaining: signum -> handler.
_previous_handlers: dict[int, object] = {}
_reapers_installed = False


def _reap_and_chain(signum, frame) -> None:
    """Signal handler: unlink owned segments, then behave as if we were
    never installed.

    ``atexit`` only runs on orderly interpreter exit; a coordinator
    killed by SIGTERM (CI timeouts, orchestrators) or interrupted at the
    terminal would otherwise leak its ``/dev/shm`` segments until the
    resource tracker notices.  Chaining preserves the pre-existing
    semantics: a previously installed Python handler is invoked (for
    SIGINT that is the default handler raising ``KeyboardInterrupt``),
    and ``SIG_DFL`` is re-delivered so the process still dies with the
    correct termination status.
    """
    release_all()
    previous = _previous_handlers.get(signum, signal.SIG_DFL)
    if callable(previous):
        previous(signum, frame)
    elif previous != signal.SIG_IGN:
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_signal_reapers() -> None:
    """Install the SIGTERM/SIGINT reapers once, lazily, from the first
    :func:`create_segment` call.

    Lazy so that merely importing this module never touches signal
    state, and only from the main thread (``signal.signal`` is illegal
    elsewhere) — a coordinator that first allocates from a worker thread
    simply stays on the atexit + resource-tracker safety nets until the
    main thread allocates.
    """
    global _reapers_installed
    if _reapers_installed:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous = signal.getsignal(signum)
            signal.signal(signum, _reap_and_chain)
        except (ValueError, OSError):  # exotic embedding; keep safety nets
            continue
        _previous_handlers[signum] = previous
    _reapers_installed = True


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Allocate a new named segment of at least ``nbytes`` bytes."""
    global _counter
    _install_signal_reapers()
    _counter += 1
    name = f"{_PREFIX}-{os.getpid()}-{_counter}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
    _owned[name] = (os.getpid(), shm)
    return shm


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment by name (untracked; see :func:`_untrack`)."""
    shm = shared_memory.SharedMemory(name=name)
    _untrack(name)
    return shm


def attach_cached(uid: str, name: str) -> shared_memory.SharedMemory:
    """Attach once per ``(uid, name)``; later calls are dictionary lookups.

    When ``uid`` was previously attached under a *different* name (the
    owner grew and republished), the stale mapping is dropped from the
    cache — garbage collection unmaps it once the last view dies.
    """
    cached = _attached.get(uid)
    if cached is not None and cached[0] == name:
        return cached[1]
    shm = attach_segment(name)
    _attached[uid] = (name, shm)
    return shm


def unlink_segment(name: str) -> None:
    """Remove a segment's name from the filesystem (idempotent).

    Only acts on segments created by the *current* process — a forked
    worker inheriting the registry must never reap its parent's
    segments.  Live mappings (local or in workers) stay valid.
    """
    entry = _owned.pop(name, None)
    if entry is None:
        return
    pid, shm = entry
    if pid != os.getpid():
        return
    _retrack(name)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def owned_segment_names() -> set[str]:
    """Names of segments created (and not yet unlinked) by this process."""
    pid = os.getpid()
    return {name for name, (owner, _) in _owned.items() if owner == pid}


def release_all() -> None:
    """Unlink every segment this process still owns (atexit safety net)."""
    for name in list(_owned):
        unlink_segment(name)


atexit.register(release_all)
