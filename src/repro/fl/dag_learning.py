"""The specializing-DAG learning simulator (the paper's Section 4).

Discrete-round simulation: in every round a sample of clients each (1)
runs the biased random walk twice to select two tips, (2) averages the two
tip models, (3) trains the average on local data, and (4) publishes the
result as a new transaction approving the two tips — if it beats the
reference (consensus) model on local test data.  New transactions become
visible to others only at the end of the round, which models concurrent
publication.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import (
    AccuracyTipSelector,
    RandomTipSelector,
    TipSelector,
    WeightedTipSelector,
)
from repro.dag.transaction import Transaction
from repro.dag.view import TangleView
from repro.data.base import FederatedDataset
from repro.fl.aggregation import get_aggregator
from repro.fl.client import Client
from repro.fl.config import DagConfig, TrainingConfig
from repro.fl.records import RoundRecord
from repro.nn.model import Classifier
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch

__all__ = ["TangleLearning"]

ModelBuilder = Callable[[np.random.Generator], Classifier]


class TangleLearning:
    """End-to-end simulator for DAG-based decentralized federated learning."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_builder: ModelBuilder,
        train_config: TrainingConfig,
        dag_config: DagConfig = DagConfig(),
        *,
        clients_per_round: int = 10,
        seed: int = 0,
        attackers: dict[int, str] | None = None,
    ):
        """``attackers`` maps client id -> attack type.  Supported:
        ``"random_weights"`` — the client publishes randomly drawn weights
        instead of training (the first attack of the Section 4.4 threat
        model).  Attackers approve uniformly random tips: as the paper
        argues, an attacker targeting the whole network would not use the
        accuracy-aware selection."""
        self.dataset = dataset
        self.dag_config = dag_config
        self.clients_per_round = min(clients_per_round, dataset.num_clients)
        self._rngs = RngFactory(seed)

        self.model = model_builder(self._rngs.get("model-init"))
        genesis_weights = self.model.get_weights()
        self.tangle = Tangle(genesis_weights)
        self.clients: dict[int, Client] = {
            cd.client_id: Client(
                cd, self.model, train_config, self._rngs.get("client", cd.client_id)
            )
            for cd in dataset.clients
        }
        if dag_config.personal_params > 0:
            for client in self.clients.values():
                client.enable_personalization(
                    dag_config.personal_params, genesis_weights
                )
        self.attackers: dict[int, str] = dict(attackers or {})
        for client_id, attack in self.attackers.items():
            if client_id not in self.clients:
                raise ValueError(f"attacker {client_id} is not a client")
            if attack != "random_weights":
                raise ValueError(f"unknown attack type {attack!r}")
        self._sampler = self._rngs.get("round-sampler")
        self._aggregate = get_aggregator(dag_config.aggregator)
        self.round_index = 0
        self.history: list[RoundRecord] = []

    # ------------------------------------------------------------ selectors
    def make_selector(
        self, client: Client, evaluation_counter: Callable[[int], None] | None = None
    ) -> TipSelector:
        """Tip selector for ``client`` according to the protocol config."""
        cfg = self.dag_config
        if cfg.selector == "random":
            return RandomTipSelector()
        if cfg.selector == "weighted":
            return WeightedTipSelector(
                cfg.weighted_alpha, depth_range=cfg.depth_range
            )
        return AccuracyTipSelector(
            lambda tx_id: client.tx_accuracy(self.tangle, tx_id),
            alpha=cfg.alpha,
            normalization=cfg.normalization,
            depth_range=cfg.depth_range,
            evaluation_counter=evaluation_counter,
        )

    # -------------------------------------------------------------- rounds
    def _selection_view(self):
        """What clients can see this round.

        Transactions of the current round are never visible (they are
        published concurrently); a positive ``visibility_delay``
        additionally hides the most recent rounds, modelling propagation
        delay.
        """
        delay = self.dag_config.visibility_delay
        if delay <= 0:
            return self.tangle
        return TangleView(self.tangle, self.round_index - 1 - delay)

    def _attacker_transaction(
        self, client_id: int, view, rng: np.random.Generator
    ) -> Transaction:
        """A random-weights attack update approving uniformly random tips."""
        tips = RandomTipSelector().select_tips(view, self.dag_config.num_tips, rng)
        genesis = self.tangle.genesis.model_weights
        payload = [rng.normal(0.0, 1.0, size=w.shape) for w in genesis]
        return Transaction(
            tx_id=self.tangle.next_tx_id(client_id),
            parents=tuple(dict.fromkeys(tips)),
            model_weights=payload,
            issuer=client_id,
            round_index=self.round_index,
            tags={"malicious": True},
        )

    def run_round(self) -> RoundRecord:
        """Simulate one discrete round; returns its record."""
        cfg = self.dag_config
        active_ids = sorted(
            self._sampler.choice(
                sorted(self.clients),
                size=self.clients_per_round,
                replace=False,
            ).tolist()
        )
        record = RoundRecord(round_index=self.round_index, active_clients=active_ids)
        pending: list[Transaction] = []
        view = self._selection_view()

        for client_id in active_ids:
            client = self.clients[client_id]
            walk_rng = self._rngs.get("walk", self.round_index, client_id)

            if client_id in self.attackers:
                pending.append(
                    self._attacker_transaction(client_id, view, walk_rng)
                )
                continue

            evaluations = 0

            def count(candidates: int) -> None:
                nonlocal evaluations
                evaluations += candidates

            selector = self.make_selector(client, evaluation_counter=count)
            stopwatch = Stopwatch()
            with stopwatch:
                tips = selector.select_tips(view, cfg.num_tips, walk_rng)
            record.walk_duration[client_id] = stopwatch.elapsed
            record.walk_evaluations[client_id] = evaluations

            parent_models = [self.tangle.get(t).model_weights for t in tips]
            reference = client.apply_personalization(
                self._aggregate(parent_models)
            )
            _, reference_accuracy = client.evaluate_weights(reference)
            record.reference_accuracy[client_id] = reference_accuracy

            trained, _train_loss = client.train(reference)
            client.update_personal_tail(trained)
            test_loss, test_accuracy = client.evaluate_weights(trained)
            record.client_accuracy[client_id] = test_accuracy
            record.client_loss[client_id] = test_loss

            if (not cfg.publish_gate) or test_accuracy >= reference_accuracy:
                unique_parents = tuple(dict.fromkeys(tips))
                tx = Transaction(
                    tx_id=self.tangle.next_tx_id(client_id),
                    parents=unique_parents,
                    model_weights=trained,
                    issuer=client_id,
                    round_index=self.round_index,
                    tags=dict(self.clients[client_id].data.metadata.get("tags", {})),
                )
                pending.append(tx)

        for tx in pending:
            self.tangle.add(tx)
            record.published.append(tx.tx_id)

        self.round_index += 1
        self.history.append(record)
        return record

    def run(self, rounds: int) -> list[RoundRecord]:
        """Run ``rounds`` rounds; returns the records of this call."""
        return [self.run_round() for _ in range(rounds)]

    # ------------------------------------------------------------ consensus
    def reference_tip(self, client_id: int, *, key: str = "reference") -> str:
        """The transaction a client currently considers its consensus.

        One extra biased walk (not counted in round bookkeeping); used by
        evaluation code, e.g. the poisoning metrics, which measure "the
        reference model that the clients selected from the DAG".
        """
        client = self.clients[client_id]
        selector = self.make_selector(client)
        rng = self._rngs.get(key, self.round_index, client_id)
        return selector.select_tips(self._selection_view(), 1, rng)[0]

    def consensus_accuracy(self, client_id: int) -> float:
        """Accuracy of the client's current reference model on local test."""
        tip = self.reference_tip(client_id)
        return self.clients[client_id].tx_accuracy(self.tangle, tip)
