"""The specializing-DAG learning simulator (the paper's Section 4).

Discrete-round simulation: in every round a sample of clients each (1)
runs the biased random walk twice to select two tips, (2) averages the two
tip models, (3) trains the average on local data, and (4) publishes the
result as a new transaction approving the two tips — if it beats the
reference (consensus) model on local test data.

Visibility model (**freeze at round end**): every client in round *r*
reads the tangle exactly as it stood at the end of round *r - 1* — new
transactions are collected while the round runs and appended only at the
round barrier, which models concurrent publication.  Because the view is
frozen, the per-client work of a round is embarrassingly parallel; the
simulator expresses it as :mod:`repro.substrate` work units and hands
them to an executor chosen by ``DagConfig.parallelism`` (serial by
default, process pool for ``parallelism > 1`` — bit-identical results
either way for a fixed seed).

Walk-evaluation contract: each client's accuracy lookups go through its
per-transaction cache (:meth:`repro.fl.client.Client.tx_accuracies`, the
batched API the accuracy selector prefers); caching is sound because a
transaction's model never changes once published.  With
``DagConfig(walk_engine=True)`` each selection's particles run in
lockstep over a per-round CSR snapshot of the frozen view
(:mod:`repro.dag.walk_engine`) — the snapshot is built once per round
and shared by every client's walks (per worker process under the
parallel executor), and each superstep's union frontier reaches
``tx_accuracies`` as one batch.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import TipSelector
from repro.dag.transaction import Transaction
from repro.dag.view import TangleView
from repro.data.base import FederatedDataset
from repro.fl.aggregation import get_aggregator
from repro.fl.client import Client
from repro.fl.config import DagConfig, TrainingConfig
from repro.fl.records import RoundRecord
from repro.nn.model import Classifier
from repro.substrate import (
    ClientWorkUnit,
    Executor,
    apply_result,
    build_selector,
    execute_round,
    make_executor,
)
from repro.utils.rng import RngFactory

__all__ = ["TangleLearning"]

ModelBuilder = Callable[[np.random.Generator], Classifier]


class TangleLearning:
    """End-to-end simulator for DAG-based decentralized federated learning."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_builder: ModelBuilder,
        train_config: TrainingConfig,
        dag_config: DagConfig = DagConfig(),
        *,
        clients_per_round: int = 10,
        seed: int = 0,
        attackers: dict[int, str] | None = None,
        executor: Executor | None = None,
    ):
        """``attackers`` maps client id -> attack type.  Supported:
        ``"random_weights"`` — the client publishes randomly drawn weights
        instead of training (the first attack of the Section 4.4 threat
        model).  Attackers approve uniformly random tips: as the paper
        argues, an attacker targeting the whole network would not use the
        accuracy-aware selection.

        ``executor`` overrides the round-execution strategy; by default
        one is built from ``dag_config.parallelism`` via
        :func:`repro.substrate.make_executor`."""
        self.dataset = dataset
        self.dag_config = dag_config
        self.clients_per_round = min(clients_per_round, dataset.num_clients)
        self._rngs = RngFactory(seed)

        self.model = model_builder(self._rngs.get("model-init"))
        genesis_weights = self.model.get_weights()
        self.tangle = Tangle(genesis_weights)
        self.clients: dict[int, Client] = {
            cd.client_id: Client(
                cd, self.model, train_config, self._rngs.get("client", cd.client_id)
            )
            for cd in dataset.clients
        }
        if dag_config.personal_params > 0:
            for client in self.clients.values():
                client.enable_personalization(
                    dag_config.personal_params, genesis_weights
                )
        self.attackers: dict[int, str] = dict(attackers or {})
        for client_id, attack in self.attackers.items():
            if client_id not in self.clients:
                raise ValueError(f"attacker {client_id} is not a client")
            if attack != "random_weights":
                raise ValueError(f"unknown attack type {attack!r}")
        self._sampler = self._rngs.get("round-sampler")
        self._aggregate = get_aggregator(dag_config.aggregator)
        self.executor: Executor = executor or make_executor(dag_config.parallelism)
        self.round_index = 0
        self.history: list[RoundRecord] = []

    def close(self) -> None:
        """Release executor resources (worker processes) and any
        shared-memory segments the round state exported (idempotent)."""
        self.executor.close()
        self.tangle.close()
        self.dataset.close_shared()

    def __enter__(self) -> "TangleLearning":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ selectors
    def make_selector(
        self, client: Client, evaluation_counter: Callable[[int], None] | None = None
    ) -> TipSelector:
        """Tip selector for ``client`` according to the protocol config.

        Delegates to :func:`repro.substrate.build_selector`, the single
        place that wires the protocol config to a selector (used both
        here and inside executor work units).
        """
        return build_selector(
            client, self.tangle, self.dag_config, evaluation_counter
        )

    # -------------------------------------------------------------- rounds
    def _selection_view(self):
        """What clients can see this round.

        Transactions of the current round are never visible (they are
        published concurrently); a positive ``visibility_delay``
        additionally hides the most recent rounds, modelling propagation
        delay.
        """
        delay = self.dag_config.visibility_delay
        if delay <= 0:
            return self.tangle
        return TangleView(self.tangle, self.round_index - 1 - delay)

    def run_round(self) -> RoundRecord:
        """Simulate one discrete round; returns its record.

        The round is planned as one work unit per active client over the
        frozen :meth:`_selection_view`, evaluated by the configured
        executor, and committed at the barrier: state deltas fold back
        into the canonical clients, then transaction ids are assigned and
        pending transactions appended in active-client order — the same
        order the historical serial loop produced, so records and tangles
        are identical regardless of executor.
        """
        active_ids = sorted(
            self._sampler.choice(
                sorted(self.clients),
                size=self.clients_per_round,
                replace=False,
            ).tolist()
        )
        record = RoundRecord(round_index=self.round_index, active_clients=active_ids)
        units = [
            ClientWorkUnit(
                client_id=client_id,
                round_index=self.round_index,
                attack=self.attackers.get(client_id),
            )
            for client_id in active_ids
        ]
        # The substrate's shared coordinator half: exports the tangle
        # arena and active clients' data to shared memory when the
        # executor can fan out, probes the route (serial-routed rounds
        # skip state capture), and dispatches through the training plane
        # or plain unit mapping — bit-identical results on every path,
        # so the commit loop below does not care which one ran.
        results = execute_round(
            self.executor,
            tangle=self.tangle,
            view=self._selection_view(),
            config=self.dag_config,
            rng_factory=self._rngs,
            units=units,
            clients=self.clients,
        )

        for unit, result in zip(units, results):
            client_id = result.client_id
            if unit.attack is None:  # honest client bookkeeping
                apply_result(self.clients[client_id], result)
                record.walk_duration[client_id] = result.walk_duration
                record.walk_evaluations[client_id] = result.walk_evaluations
                record.reference_accuracy[client_id] = result.reference_accuracy
                record.client_accuracy[client_id] = result.test_accuracy
                record.client_loss[client_id] = result.test_loss
            if result.publish:
                # Results carry one flat vector per model; the tangle
                # interns it as an arena row on add.
                tx = Transaction.from_flat(
                    tx_id=self.tangle.next_tx_id(client_id),
                    parents=result.parents,
                    flat=result.flat_weights,
                    spec=self.tangle.spec,
                    issuer=client_id,
                    round_index=self.round_index,
                    tags=result.tags,
                )
                self.tangle.add(tx)
                record.published.append(tx.tx_id)

        self.round_index += 1
        self.history.append(record)
        return record

    def run(self, rounds: int) -> list[RoundRecord]:
        """Run ``rounds`` rounds; returns the records of this call."""
        return [self.run_round() for _ in range(rounds)]

    # ------------------------------------------------------------ consensus
    def reference_tip(self, client_id: int, *, key: str = "reference") -> str:
        """The transaction a client currently considers its consensus.

        One extra biased walk (not counted in round bookkeeping); used by
        evaluation code, e.g. the poisoning metrics, which measure "the
        reference model that the clients selected from the DAG".
        """
        client = self.clients[client_id]
        selector = self.make_selector(client)
        rng = self._rngs.get(key, self.round_index, client_id)
        return selector.select_tips(self._selection_view(), 1, rng)[0]

    def consensus_accuracy(self, client_id: int) -> float:
        """Accuracy of the client's current reference model on local test."""
        tip = self.reference_tip(client_id)
        return self.clients[client_id].tx_accuracy(self.tangle, tip)
