"""Federated Averaging (McMahan et al.), the centralized baseline."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.base import FederatedDataset
from repro.fl.client import Client
from repro.fl.config import TrainingConfig
from repro.fl.records import RoundRecord
from repro.nn.model import Classifier
from repro.nn.serialization import Weights, weighted_average_weights
from repro.utils.rng import RngFactory

__all__ = ["FedAvgServer"]

ModelBuilder = Callable[[np.random.Generator], Classifier]


class FedAvgServer:
    """Round-based FedAvg: sample clients, train locally, average by size.

    Per-round records report the accuracy of the *aggregated* global model
    on each active client's local test data, which is how the paper
    evaluates FedAvg in Figure 9.
    """

    def __init__(
        self,
        dataset: FederatedDataset,
        model_builder: ModelBuilder,
        train_config: TrainingConfig,
        *,
        clients_per_round: int = 10,
        seed: int = 0,
    ):
        self.dataset = dataset
        self.clients_per_round = min(clients_per_round, dataset.num_clients)
        self._rngs = RngFactory(seed)
        self.model = model_builder(self._rngs.get("model-init"))
        self.global_weights: Weights = self.model.get_weights()
        self.clients: dict[int, Client] = {
            cd.client_id: Client(
                cd, self.model, train_config, self._rngs.get("client", cd.client_id)
            )
            for cd in dataset.clients
        }
        self._sampler = self._rngs.get("round-sampler")
        self.round_index = 0
        self.history: list[RoundRecord] = []

    def _train_one(self, client: Client) -> tuple[Weights, float]:
        """Hook for subclasses (FedProx overrides with the proximal term).

        The global weights are passed by reference: ``Client.train``
        copies them into the model in place and never mutates its input,
        so the historical defensive clone was a full model copy per
        client per round for nothing.
        """
        return client.train(self.global_weights)

    def run_round(self) -> RoundRecord:
        active_ids = sorted(
            self._sampler.choice(
                sorted(self.clients), size=self.clients_per_round, replace=False
            ).tolist()
        )
        record = RoundRecord(round_index=self.round_index, active_clients=active_ids)

        updates: list[Weights] = []
        sizes: list[float] = []
        for client_id in active_ids:
            client = self.clients[client_id]
            trained, _loss = self._train_one(client)
            updates.append(trained)
            sizes.append(client.data.n_train)

        self.global_weights = weighted_average_weights(updates, sizes)

        for client_id in active_ids:
            loss, accuracy = self.clients[client_id].evaluate_weights(
                self.global_weights
            )
            record.client_accuracy[client_id] = accuracy
            record.client_loss[client_id] = loss

        self.round_index += 1
        self.history.append(record)
        return record

    def run(self, rounds: int) -> list[RoundRecord]:
        return [self.run_round() for _ in range(rounds)]

    def evaluate_global(self) -> tuple[float, float]:
        """(loss, accuracy) of the global model over all clients' test data."""
        x, y = self.dataset.global_test_set()
        self.model.set_weights(self.global_weights)
        return self.model.evaluate(x, y)
