"""Model-aggregation strategies.

The paper merges parent models by plain parameter-wise averaging.  This
module generalizes the merge into pluggable strategies, including the
robust aggregators common in the poisoning literature (coordinate-wise
median and trimmed mean), which make interesting counterpoints to the
DAG's walk-level robustness: the walk filters *whole models* by accuracy,
robust aggregation filters *coordinates* by outlier position.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.serialization import Weights, average_weights, weighted_average_weights

__all__ = [
    "mean_aggregate",
    "median_aggregate",
    "trimmed_mean_aggregate",
    "get_aggregator",
    "AGGREGATORS",
]

Aggregator = Callable[[list[Weights]], Weights]


def mean_aggregate(weight_sets: list[Weights]) -> Weights:
    """Parameter-wise arithmetic mean (the paper's merge)."""
    return average_weights(weight_sets)


def median_aggregate(weight_sets: list[Weights]) -> Weights:
    """Coordinate-wise median across the weight sets.

    Robust to a minority of arbitrarily corrupted inputs; for two inputs
    it degenerates to the mean.
    """
    if not weight_sets:
        raise ValueError("need at least one weight set")
    _check_same_shapes(weight_sets)
    return [
        np.median(np.stack([ws[i] for ws in weight_sets]), axis=0)
        for i in range(len(weight_sets[0]))
    ]


def trimmed_mean_aggregate(
    weight_sets: list[Weights], *, trim_fraction: float = 0.2
) -> Weights:
    """Coordinate-wise mean after trimming the extremes.

    Drops the ``floor(k * trim_fraction)`` largest and smallest values per
    coordinate before averaging.  With fewer than three inputs nothing
    can be trimmed and the result equals the mean.
    """
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    if not weight_sets:
        raise ValueError("need at least one weight set")
    _check_same_shapes(weight_sets)
    k = len(weight_sets)
    trim = int(np.floor(k * trim_fraction))
    if 2 * trim >= k:
        trim = (k - 1) // 2
    result: Weights = []
    for i in range(len(weight_sets[0])):
        stacked = np.sort(np.stack([ws[i] for ws in weight_sets]), axis=0)
        kept = stacked[trim : k - trim] if trim else stacked
        result.append(kept.mean(axis=0))
    return result


def _check_same_shapes(weight_sets: list[Weights]) -> None:
    first = weight_sets[0]
    for other in weight_sets[1:]:
        if len(other) != len(first):
            raise ValueError("weight sets have different lengths")
        for a, b in zip(first, other):
            if a.shape != b.shape:
                raise ValueError(f"weight shapes differ: {a.shape} vs {b.shape}")


AGGREGATORS: dict[str, Aggregator] = {
    "mean": mean_aggregate,
    "median": median_aggregate,
    "trimmed_mean": trimmed_mean_aggregate,
}


def get_aggregator(name: str) -> Aggregator:
    """Look up an aggregation strategy by name."""
    try:
        return AGGREGATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown aggregator {name!r}; available: {sorted(AGGREGATORS)}"
        ) from None
