"""Model-aggregation strategies.

The paper merges parent models by plain parameter-wise averaging.  This
module generalizes the merge into pluggable strategies, including the
robust aggregators common in the poisoning literature (coordinate-wise
median and trimmed mean), which make interesting counterpoints to the
DAG's walk-level robustness: the walk filters *whole models* by accuracy,
robust aggregation filters *coordinates* by outlier position.

All strategies are implemented as **single stacked-matrix reductions**
over the flat weight representation: the ``k`` input models become one
``(k, P)`` matrix (a zero-copy arena slice when they already live in a
tangle's weight arena) and the aggregate is one numpy op over axis 0.
The ``*_flat`` functions are the primitives; the list-of-arrays wrappers
keep the historical call signature.  The per-layer reference
implementations the vectorized versions replaced are preserved in
``REFERENCE_AGGREGATORS`` — they remain the equivalence oracle for tests
and the baseline for the weight-plane benchmark.  In float64 the two
paths are bit-identical wherever they reduce the same values in the
same order — which covers the protocol's two-parent merge and every
median/trimmed case with a non-zero trim; the two carve-outs, bounded
at one-ulp tolerance by the equivalence tests, are the legacy mean's
sequential Python ``sum`` for ``k > 2`` and the legacy trimmed mean's
pointless pre-sort when the trim count rounds to zero (``k`` of 3 or 4
at the default fraction).

Every strategy (vectorized and reference alike) is additionally
**non-finite safe**: NaN/Inf coordinates in any input are masked from
that coordinate's reduction, and a coordinate with no finite value at
all aggregates to 0.0 — one corrupted reference degrades a merge
gracefully instead of NaN-poisoning every downstream model.  Clean
inputs never touch the masked path.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.nn.serialization import FlatSpec, Weights

__all__ = [
    "mean_aggregate",
    "median_aggregate",
    "trimmed_mean_aggregate",
    "mean_flat",
    "median_flat",
    "trimmed_mean_flat",
    "get_aggregator",
    "AGGREGATORS",
    "FLAT_AGGREGATORS",
    "REFERENCE_AGGREGATORS",
]

Aggregator = Callable[[list[Weights]], Weights]


# --------------------------------------------- non-finite-safe reductions
# Every aggregator degrades gracefully when some inputs carry NaN/Inf
# coordinates (a corrupted model that slipped past upstream defenses):
# non-finite entries are masked *per coordinate* and the reduction runs
# over the finite values that remain; a coordinate with no finite value
# at all aggregates to 0.0 rather than propagating the poison.  The
# masked path only engages when non-finite values are actually present —
# on clean inputs every aggregator takes its historical fast path and is
# bit-identical to the pre-hardening code.


def _masked_mean(stacked: np.ndarray, finite: np.ndarray) -> np.ndarray:
    counts = finite.sum(axis=0)
    total = np.where(finite, stacked, 0.0).sum(axis=0)
    return np.where(counts > 0, total / np.maximum(counts, 1), 0.0)


def _masked_median(stacked: np.ndarray, finite: np.ndarray) -> np.ndarray:
    masked = np.where(finite, stacked, np.nan)
    with warnings.catch_warnings():
        # All-NaN coordinates are expected here; they map to 0.0 below.
        warnings.simplefilter("ignore", RuntimeWarning)
        med = np.nanmedian(masked, axis=0)
    return np.where(np.isfinite(med), med, 0.0)


def _masked_trimmed_mean(
    stacked: np.ndarray, finite: np.ndarray, trim: int
) -> np.ndarray:
    # Sort pushes the NaN-masked entries past every finite value, so per
    # coordinate the first ``counts`` sorted entries are its finite
    # values in order; the trim shrinks where too few survive (the same
    # ``(k - 1) // 2`` cap ``_trim_count`` applies globally) and the
    # kept windows are summed via one cumulative sum.
    k = stacked.shape[0]
    masked = np.where(finite, stacked, np.nan)
    ordered = np.sort(masked, axis=0)
    counts = finite.sum(axis=0)
    t = np.minimum(trim, np.maximum((counts - 1) // 2, 0))
    lo, hi = t, counts - t
    csum = np.cumsum(np.where(np.isnan(ordered), 0.0, ordered), axis=0)
    upper = np.take_along_axis(csum, np.clip(hi - 1, 0, k - 1)[None], axis=0)[0]
    lower = np.where(
        lo > 0,
        np.take_along_axis(csum, np.clip(lo - 1, 0, k - 1)[None], axis=0)[0],
        0.0,
    )
    kept = hi - lo
    return np.where(kept > 0, (upper - lower) / np.maximum(kept, 1), 0.0)


# ------------------------------------------------------- flat primitives
def mean_flat(stacked: np.ndarray) -> np.ndarray:
    """Coordinate-wise mean of a ``(k, P)`` stack of flat models."""
    finite = np.isfinite(stacked)
    if finite.all():
        return stacked.mean(axis=0)
    return _masked_mean(stacked, finite)


def median_flat(stacked: np.ndarray) -> np.ndarray:
    """Coordinate-wise median of a ``(k, P)`` stack of flat models."""
    finite = np.isfinite(stacked)
    if finite.all():
        return np.median(stacked, axis=0)
    return _masked_median(stacked, finite)


def _trim_count(k: int, trim_fraction: float) -> int:
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    trim = int(np.floor(k * trim_fraction))
    if 2 * trim >= k:
        trim = (k - 1) // 2
    return trim


def trimmed_mean_flat(stacked: np.ndarray, *, trim_fraction: float = 0.2) -> np.ndarray:
    """Coordinate-wise trimmed mean of a ``(k, P)`` stack of flat models."""
    k = stacked.shape[0]
    trim = _trim_count(k, trim_fraction)
    finite = np.isfinite(stacked)
    if not finite.all():
        return _masked_trimmed_mean(stacked, finite, trim)
    if trim == 0:
        return stacked.mean(axis=0)
    ordered = np.sort(stacked, axis=0)
    return ordered[trim : k - trim].mean(axis=0)


# ------------------------------------------------- list-of-arrays facade
def _stack(weight_sets: list[Weights]) -> tuple[np.ndarray, FlatSpec]:
    if not weight_sets:
        raise ValueError("need at least one weight set")
    # spec.stack validates every set's length and shapes against the
    # first set's spec while flattening — no separate validation pass.
    spec = FlatSpec.from_weights(weight_sets[0])
    return spec.stack(weight_sets), spec


def mean_aggregate(weight_sets: list[Weights]) -> Weights:
    """Parameter-wise arithmetic mean (the paper's merge)."""
    stacked, spec = _stack(weight_sets)
    return spec.unflatten(mean_flat(stacked))


def median_aggregate(weight_sets: list[Weights]) -> Weights:
    """Coordinate-wise median across the weight sets.

    Robust to a minority of arbitrarily corrupted inputs; for two inputs
    it degenerates to the mean.
    """
    stacked, spec = _stack(weight_sets)
    return spec.unflatten(median_flat(stacked))


def trimmed_mean_aggregate(
    weight_sets: list[Weights], *, trim_fraction: float = 0.2
) -> Weights:
    """Coordinate-wise mean after trimming the extremes.

    Drops the ``floor(k * trim_fraction)`` largest and smallest values per
    coordinate before averaging.  With fewer than three inputs nothing
    can be trimmed and the result equals the mean.
    """
    _trim_count(1, trim_fraction)  # validate the fraction before stacking
    stacked, spec = _stack(weight_sets)
    return spec.unflatten(trimmed_mean_flat(stacked, trim_fraction=trim_fraction))


def _check_same_shapes(weight_sets: list[Weights]) -> None:
    first = weight_sets[0]
    for other in weight_sets[1:]:
        if len(other) != len(first):
            raise ValueError("weight sets have different lengths")
        for a, b in zip(first, other):
            if a.shape != b.shape:
                raise ValueError(f"weight shapes differ: {a.shape} vs {b.shape}")


# --------------------------------------------- per-layer reference path
def _mean_reference(weight_sets: list[Weights]) -> Weights:
    """The pre-flat-plane per-layer loop (kept as equivalence oracle).

    Note the sequential Python ``sum``: for the DAG's two-parent merge it
    is bit-identical to the vectorized mean (``0 + a + b`` is exact); for
    larger ``k`` numpy's pairwise reduction may differ in the final ulp,
    which the equivalence tests bound explicitly.
    """
    if not weight_sets:
        raise ValueError("need at least one weight set")
    _check_same_shapes(weight_sets)
    count = len(weight_sets)
    result: Weights = []
    for i in range(len(weight_sets[0])):
        stacked = np.stack([ws[i] for ws in weight_sets])
        finite = np.isfinite(stacked)
        if finite.all():
            result.append(sum(ws[i] for ws in weight_sets) / count)
        else:
            result.append(_masked_mean(stacked, finite))
    return result


def _median_reference(weight_sets: list[Weights]) -> Weights:
    if not weight_sets:
        raise ValueError("need at least one weight set")
    _check_same_shapes(weight_sets)
    result: Weights = []
    for i in range(len(weight_sets[0])):
        stacked = np.stack([ws[i] for ws in weight_sets])
        finite = np.isfinite(stacked)
        if finite.all():
            result.append(np.median(stacked, axis=0))
        else:
            result.append(_masked_median(stacked, finite))
    return result


def _trimmed_mean_reference(
    weight_sets: list[Weights], *, trim_fraction: float = 0.2
) -> Weights:
    if not weight_sets:
        raise ValueError("need at least one weight set")
    _trim_count(1, trim_fraction)
    _check_same_shapes(weight_sets)
    k = len(weight_sets)
    trim = _trim_count(k, trim_fraction)
    result: Weights = []
    for i in range(len(weight_sets[0])):
        stacked = np.stack([ws[i] for ws in weight_sets])
        finite = np.isfinite(stacked)
        if finite.all():
            ordered = np.sort(stacked, axis=0)
            kept = ordered[trim : k - trim] if trim else ordered
            result.append(kept.mean(axis=0))
        else:
            result.append(_masked_trimmed_mean(stacked, finite, trim))
    return result


AGGREGATORS: dict[str, Aggregator] = {
    "mean": mean_aggregate,
    "median": median_aggregate,
    "trimmed_mean": trimmed_mean_aggregate,
}

#: Flat primitives by the same names, for callers that already hold a
#: ``(k, P)`` stack (e.g. arena rows) and want to skip the list facade.
FLAT_AGGREGATORS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "mean": mean_flat,
    "median": median_flat,
    "trimmed_mean": trimmed_mean_flat,
}

#: Per-layer loop implementations, the pre-vectorization code path.  Not
#: part of the protocol surface — tests assert vectorized == reference
#: and the weight-plane benchmark measures the speedup against them.
REFERENCE_AGGREGATORS: dict[str, Aggregator] = {
    "mean": _mean_reference,
    "median": _median_reference,
    "trimmed_mean": _trimmed_mean_reference,
}


def get_aggregator(name: str) -> Aggregator:
    """Look up an aggregation strategy by name."""
    try:
        return AGGREGATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown aggregator {name!r}; available: {sorted(AGGREGATORS)}"
        ) from None
