"""FedProx (Li et al.): FedAvg with a proximal local objective.

Two heterogeneity mechanisms from the FedProx paper are modelled: the
proximal term ``mu/2 * ||w - w_global||^2`` in the local objective, and
optional *stragglers* — clients that only manage a fraction of the local
epochs.  FedProx still aggregates straggler updates (that is its point);
plain FedAvg in the original comparison drops them, but the paper's
Figures 10/11 use the no-straggler configuration, which is our default.
"""

from __future__ import annotations

from repro.fl.client import Client
from repro.fl.fedavg import FedAvgServer
from repro.nn.serialization import Weights
from repro.utils.validation import check_probability

__all__ = ["FedProxServer"]


class FedProxServer(FedAvgServer):
    """FedAvg with proximal local training."""

    def __init__(
        self,
        *args,
        mu: float = 0.5,
        straggler_fraction: float = 0.0,
        straggler_epochs: int = 1,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if mu < 0:
            raise ValueError("mu must be >= 0")
        check_probability("straggler_fraction", straggler_fraction)
        self.mu = mu
        self.straggler_fraction = straggler_fraction
        self.straggler_epochs = straggler_epochs
        self._straggler_rng = self._rngs.get("stragglers")

    def _train_one(self, client: Client) -> tuple[Weights, float]:
        epochs_override = None
        if (
            self.straggler_fraction > 0.0
            and self._straggler_rng.random() < self.straggler_fraction
        ):
            epochs_override = self.straggler_epochs
        # As in FedAvg: train() copies, so no defensive clone is needed
        # (ProximalSGD.set_reference also copies its anchor).
        return client.train(
            self.global_weights,
            proximal_mu=self.mu,
            epochs_override=epochs_override,
        )
