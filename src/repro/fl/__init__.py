"""Federated-learning algorithms.

:class:`TangleLearning` is the paper's contribution (the specializing
DAG); :class:`FedAvgServer` and :class:`FedProxServer` are the centralized
baselines of Section 5; :class:`GossipLearning` is the decentralized
gossip baseline discussed in related work.
"""

from repro.fl.config import (
    DagConfig,
    TrainingConfig,
    TABLE1_CONFIGS,
    table1_config,
)
from repro.fl.client import Client
from repro.fl.records import RoundRecord
from repro.fl.dag_learning import TangleLearning
from repro.fl.async_learning import AsyncTangleLearning, PublishEvent
from repro.fl.fedavg import FedAvgServer
from repro.fl.fedprox import FedProxServer
from repro.fl.gossip import GossipLearning
from repro.fl.aggregation import (
    AGGREGATORS,
    get_aggregator,
    mean_aggregate,
    median_aggregate,
    trimmed_mean_aggregate,
)

__all__ = [
    "DagConfig",
    "TrainingConfig",
    "TABLE1_CONFIGS",
    "table1_config",
    "Client",
    "RoundRecord",
    "TangleLearning",
    "AsyncTangleLearning",
    "PublishEvent",
    "FedAvgServer",
    "FedProxServer",
    "GossipLearning",
    "AGGREGATORS",
    "get_aggregator",
    "mean_aggregate",
    "median_aggregate",
    "trimmed_mean_aggregate",
]
