"""Per-round result records shared by all learning algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord"]


@dataclass
class RoundRecord:
    """What happened in one simulated round.

    ``client_accuracy``/``client_loss`` hold, per active client, the
    evaluation of that client's model-of-record on its local test data —
    for the DAG that is the locally trained model, for FedAvg/FedProx the
    freshly aggregated global model (matching Figure 9's methodology).
    ``reference_accuracy`` is the DAG's consensus model (averaged selected
    tips) before local training.  Walk bookkeeping fields stay empty for
    the centralized baselines.
    """

    round_index: int
    active_clients: list[int]
    client_accuracy: dict[int, float] = field(default_factory=dict)
    client_loss: dict[int, float] = field(default_factory=dict)
    reference_accuracy: dict[int, float] = field(default_factory=dict)
    published: list[str] = field(default_factory=list)
    walk_duration: dict[int, float] = field(default_factory=dict)
    walk_evaluations: dict[int, int] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        """Mean client accuracy this round (NaN when no client recorded)."""
        if not self.client_accuracy:
            return float("nan")
        return float(np.mean(list(self.client_accuracy.values())))

    @property
    def mean_loss(self) -> float:
        if not self.client_loss:
            return float("nan")
        return float(np.mean(list(self.client_loss.values())))

    @property
    def accuracy_std(self) -> float:
        """Cross-client accuracy spread (the personalization signal)."""
        if not self.client_accuracy:
            return float("nan")
        return float(np.std(list(self.client_accuracy.values())))

    @property
    def mean_walk_duration(self) -> float:
        if not self.walk_duration:
            return float("nan")
        return float(np.mean(list(self.walk_duration.values())))
