"""A federated client: local data, local training, cached evaluation."""

from __future__ import annotations

import numpy as np

from repro.data.base import ClientData
from repro.dag.tangle import Tangle
from repro.nn.model import Classifier, plan_local_batches
from repro.nn.optimizers import SGD, ProximalSGD
from repro.nn.serialization import Weights
from repro.nn.training_plane import LockstepTrainer, TrainJob
from repro.fl.config import TrainingConfig
from repro.utils.rng import ensure_rng

__all__ = ["Client"]


class Client:
    """One participant in the federation.

    All clients of a simulation *share* a single :class:`Classifier`
    instance; a client loads whatever weights it needs before running a
    forward pass.  Transaction evaluations (the hot path of the
    accuracy-biased walk) are cached per transaction id — a transaction's
    model never changes, so the cache is sound for the lifetime of a
    tangle.
    """

    def __init__(
        self,
        data: ClientData,
        model: Classifier,
        config: TrainingConfig,
        rng: np.random.Generator | int,
    ):
        self.data = data
        self.model = model
        self.config = config
        self.rng = ensure_rng(rng)
        self._tx_accuracy_cache: dict[str, float] = {}
        # Bumped whenever the cache is cleared or replaced wholesale;
        # mirrors of the cache (the walk engine's score memo) compare it
        # to notice their copy went stale.
        self.cache_epoch = 0
        self.evaluations = 0  # lifetime count of *uncached* model evaluations
        self.personal_params = 0
        self.personal_tail: list[np.ndarray] | None = None

    @property
    def client_id(self) -> int:
        return self.data.client_id

    # ----------------------------------------------------- personalization
    def enable_personalization(self, count: int, initial: Weights) -> None:
        """Keep the last ``count`` parameter arrays client-local.

        ``initial`` supplies the starting values (typically the genesis
        weights).  From then on, every model this client consumes — in
        walks, references, and evaluations — has its tail replaced by the
        client's own personal layers (the paper's future-work extension).
        """
        if count <= 0:
            raise ValueError("count must be > 0")
        if count > len(initial):
            raise ValueError(
                f"cannot personalize {count} of {len(initial)} arrays"
            )
        self.personal_params = count
        self.personal_tail = [np.array(w, copy=True) for w in initial[-count:]]

    def apply_personalization(self, weights: Weights) -> Weights:
        """Graft this client's personal tail onto ``weights`` (copied)."""
        if not self.personal_params or self.personal_tail is None:
            return weights
        return [
            *[w for w in weights[: -self.personal_params]],
            *[np.array(w, copy=True) for w in self.personal_tail],
        ]

    def update_personal_tail(self, weights: Weights) -> None:
        """Adopt the tail of freshly trained ``weights`` as the new
        personal layers; invalidates cached evaluations (they embedded the
        previous tail)."""
        if not self.personal_params:
            return
        self.personal_tail = [
            np.array(w, copy=True) for w in weights[-self.personal_params :]
        ]
        self.reset_cache()

    # ---------------------------------------------------------- evaluation
    def evaluate_weights(self, weights: Weights) -> tuple[float, float]:
        """(loss, accuracy) of ``weights`` on this client's local test data."""
        self.model.set_weights(weights)
        self.evaluations += 1
        return self.model.evaluate(self.data.x_test, self.data.y_test)

    def accuracy_of_weights(self, weights: Weights) -> float:
        """Accuracy of ``weights`` on local test data (loss-free path).

        Routed through :meth:`Classifier.accuracy`, which skips the
        cross-entropy computation entirely — the value is identical to
        ``evaluate_weights(weights)[1]`` (same forward pass, same argmax).

        A model carrying non-finite weights scores the worst possible
        accuracy, 0.0, without a forward pass: NaN logits would make the
        argmax (and thus the "accuracy") an artifact of tie-breaking
        rather than a judgment, and a corrupted model must never look
        attractive to the accuracy-biased walk.  The query still counts
        as one evaluation.
        """
        if any(not np.isfinite(w).all() for w in weights):
            self.evaluations += 1
            return 0.0
        self.model.set_weights(weights)
        self.evaluations += 1
        return self.model.accuracy(self.data.x_test, self.data.y_test)

    def accuracy_of_flat(self, flat: np.ndarray) -> float:
        """:meth:`accuracy_of_weights` for a flat weight vector.

        The loss-free twin of :meth:`evaluate_flat`, used by the event
        engine's publish gate on rows coming straight off the lockstep
        ``(K, P)`` training stack — same forward pass and argmax as
        ``accuracy_of_weights(spec.unflatten(flat))``, no per-layer list
        — including the non-finite guard (a corrupt vector scores 0.0
        without a forward pass).
        """
        if not np.isfinite(flat).all():
            self.evaluations += 1
            return 0.0
        self.model.load_flat(flat)
        self.evaluations += 1
        return self.model.accuracy(self.data.x_test, self.data.y_test)

    def evaluate_flat(self, flat: np.ndarray) -> tuple[float, float]:
        """:meth:`evaluate_weights` for a flat weight vector.

        The training plane's post-training entry point: the trained row
        comes straight off the lockstep ``(K, P)`` stack and loads via
        :meth:`Classifier.load_flat` — no per-layer list is built.
        Bookkeeping (the evaluation counter) matches
        :meth:`evaluate_weights` exactly.
        """
        self.model.load_flat(flat)
        self.evaluations += 1
        return self.model.evaluate(self.data.x_test, self.data.y_test)

    def tx_accuracy(self, tangle: Tangle, tx_id: str) -> float:
        """Cached accuracy of a transaction's model on local test data.

        With personalization enabled, the transaction's model is evaluated
        with this client's personal tail grafted on — the client judges
        foreign bodies by how well they serve *its* head.

        ``tangle`` may be any object with a ``get(tx_id)`` method (a
        :class:`~repro.dag.tangle.Tangle` or one of its views); the cache
        is keyed by transaction id alone, which is sound because a
        transaction's model never changes.

        The walk's inner loop: without personalization, an arena-resident
        model is loaded straight from its flat row
        (:meth:`Classifier.load_flat`) — no per-layer list, no gradient
        reallocation, no loss computation.
        """
        cached = self._tx_accuracy_cache.get(tx_id)
        if cached is not None:
            return cached
        tx = tangle.get(tx_id)
        if not self.personal_params and tx.arena_bound:
            try:
                flat = tx.flat_vector(self.model.flat_spec)
            except ValueError:  # tangle architecture differs from the model
                flat = None
            if flat is not None:
                self.model.load_flat(flat)
                self.evaluations += 1
                accuracy = self.model.accuracy(self.data.x_test, self.data.y_test)
                self._tx_accuracy_cache[tx_id] = accuracy
                return accuracy
        weights = self.apply_personalization(tx.model_weights)
        accuracy = self.accuracy_of_weights(weights)
        self._tx_accuracy_cache[tx_id] = accuracy
        return accuracy

    def tx_accuracies(self, tangle: Tangle, tx_ids: list[str]) -> np.ndarray:
        """Batched :meth:`tx_accuracy` over all of ``tx_ids``.

        The walk's preferred evaluation entry point: one call per walk
        step covers every candidate approver — and under the lockstep
        engine one call per *superstep* covers the union frontier of
        every live particle, the widest batches this method sees.
        Cached ids are dictionary lookups; the uncached remainder is
        deduplicated and — when the
        model's layers all have fused kernels and no personalization is
        active — evaluated in **one fused forward pass** over a
        ``(k, P)`` stack of the candidates' flat rows
        (:meth:`Classifier.accuracy_many`), sliced zero-copy from the
        tangle's weight arena when the rows are contiguous.  Candidates
        the fused plane cannot take (foreign architectures, unfused
        layers, personalization) fall back to the per-model
        :meth:`tx_accuracy` loop, which is bit-identical in float64.
        Returns accuracies in the order of ``tx_ids``.
        """
        out = np.empty(len(tx_ids), dtype=np.float64)
        pending: dict[str, list[int]] = {}
        for position, tx_id in enumerate(tx_ids):
            cached = self._tx_accuracy_cache.get(tx_id)
            if cached is not None:
                out[position] = cached
            else:
                pending.setdefault(tx_id, []).append(position)
        if pending:
            for tx_id, accuracy in self._evaluate_uncached(
                tangle, list(pending)
            ).items():
                for position in pending[tx_id]:
                    out[position] = accuracy
        return out

    def _evaluate_uncached(
        self, tangle: Tangle, tx_ids: list[str]
    ) -> dict[str, float]:
        """Evaluate distinct uncached transactions, fused where possible."""
        accuracies: dict[str, float] = {}
        if not self.personal_params and self.model.supports_fused_eval:
            spec = self.model.flat_spec
            fused: list[tuple[str, "object", np.ndarray]] = []
            for tx_id in tx_ids:
                tx = tangle.get(tx_id)
                try:
                    fused.append((tx_id, tx, tx.flat_vector(spec)))
                except ValueError:
                    pass  # foreign architecture: per-model fallback below
            if fused:
                stacked = self._stack_candidate_rows(fused, spec)
                values = self.model.accuracy_many(
                    stacked, self.data.x_test, self.data.y_test
                )
                self.evaluations += len(fused)
                for (tx_id, _, _), value in zip(fused, values):
                    accuracy = float(value)
                    self._tx_accuracy_cache[tx_id] = accuracy
                    accuracies[tx_id] = accuracy
        for tx_id in tx_ids:
            if tx_id not in accuracies:
                accuracies[tx_id] = self.tx_accuracy(tangle, tx_id)
        return accuracies

    @staticmethod
    def _stack_candidate_rows(fused, spec) -> np.ndarray:
        """``(k, P)`` stack of candidate rows — a zero-copy slab slice
        when the candidates are contiguous rows of one arena, a single
        gather when scattered, ``np.stack`` only for unbound models."""
        locations = [tx.arena_location() for _, tx, _ in fused]
        if all(loc is not None for loc in locations):
            arena = locations[0][0]
            if arena.spec == spec and all(loc[0] is arena for loc in locations):
                return arena.rows([loc[1] for loc in locations])
        return np.stack([flat for _, _, flat in fused])

    def tx_accuracy_cache(self) -> dict[str, float]:
        """Snapshot of the cached transaction evaluations.

        The substrate ships this across process boundaries so a worker's
        warmed cache survives into the next round on the coordinator's
        canonical client.
        """
        return dict(self._tx_accuracy_cache)

    def restore_tx_accuracy_cache(self, entries: dict[str, float]) -> None:
        """Replace the evaluation cache with ``entries`` (copied)."""
        self._tx_accuracy_cache = dict(entries)
        self.cache_epoch += 1

    def cache_mark(self) -> tuple[int, int]:
        """Position marker ``(epoch, entry_count)`` for delta extraction.

        Take one before a work unit runs; afterwards
        :meth:`cache_entries_since` yields exactly the evaluations the
        unit added — the only part of the cache worth shipping back
        across a process boundary, since the coordinator's canonical
        client already holds everything before the mark.
        """
        return (self.cache_epoch, len(self._tx_accuracy_cache))

    def cache_entries_since(self, mark: tuple[int, int]) -> dict[str, float] | None:
        """Entries added after ``mark``, or None when the cache was
        reset/replaced since (the delta is no longer a pure suffix and
        the full cache must ship instead).

        Sound because the cache is append-only within an epoch and dicts
        preserve insertion order: the delta is the suffix past the
        marked length.
        """
        epoch, count = mark
        if self.cache_epoch != epoch:
            return None
        items = list(self._tx_accuracy_cache.items())
        return dict(items[count:])

    def merge_tx_accuracy_cache(self, entries: dict[str, float]) -> None:
        """Fold a worker's delta entries into the cache **without** an
        epoch bump — the in-process equivalent is plain cache warming,
        which mirrors (the walk engine's score memo) survive."""
        self._tx_accuracy_cache.update(entries)

    def reset_cache(self) -> None:
        """Drop cached transaction evaluations (e.g. when data changes)."""
        self._tx_accuracy_cache.clear()
        self.cache_epoch += 1

    def _cost_footprint(self, walk) -> tuple[int, int]:
        """(shipped bytes, dense bytes) for the substrate's router:
        data + model (memoized — shared architectures count once) plus
        the evaluation cache."""
        data_ipc, data_dense = walk(self.data)
        model_ipc, model_dense = walk(self.model)
        cache = 64 * len(self._tx_accuracy_cache) + 256
        return data_ipc + model_ipc + cache, data_dense + model_dense + cache

    # ------------------------------------------------------------ training
    def train(
        self,
        weights: Weights,
        *,
        proximal_mu: float | None = None,
        epochs_override: int | None = None,
        fused: bool = False,
    ) -> tuple[Weights, float]:
        """Local training starting from ``weights``.

        Returns the trained weights and the mean training loss.  With
        ``proximal_mu`` set, uses the FedProx proximal objective anchored
        at the incoming weights.

        ``fused=True`` routes plain-SGD training through the lockstep
        training plane's kernels (:mod:`repro.nn.training_plane`) as a
        single-model group — bit-identical weights and loss, one batched
        numpy pass per batch instead of a per-layer Python loop.  Models
        with unfused layers, and proximal training, fall back to the
        sequential path automatically.
        """
        config = self.config
        epochs = epochs_override if epochs_override is not None else config.local_epochs
        if fused and proximal_mu is None and self.model.supports_fused_train:
            return self._train_fused(weights, epochs)
        self.model.set_weights(weights)
        if proximal_mu is not None:
            optimizer: SGD = ProximalSGD(
                config.learning_rate, proximal_mu, momentum=config.momentum
            )
            optimizer.set_reference(weights)
        else:
            optimizer = SGD(config.learning_rate, momentum=config.momentum)
        loss = self.model.train_local(
            self.data.x_train,
            self.data.y_train,
            optimizer,
            self.rng,
            epochs=epochs,
            batch_size=config.batch_size,
            max_batches=config.local_batches,
        )
        # get_weights() already returns fresh copies — no defensive clone.
        return self.model.get_weights(), loss

    def _train_fused(self, weights: Weights, epochs: int) -> tuple[Weights, float]:
        """Plain-SGD local training through the fused kernels (``K=1``)."""
        config = self.config
        batches = plan_local_batches(
            self.data.x_train.shape[0],
            self.rng,
            epochs=epochs,
            batch_size=config.batch_size,
            max_batches=config.local_batches,
        )
        job = TrainJob(
            x=self.data.x_train,
            y=self.data.y_train,
            batches=batches,
            start_flat=self.model.flat_spec.flatten(weights),
        )
        trainer = LockstepTrainer(
            lr=config.learning_rate, momentum=config.momentum
        )
        [(row, loss)] = trainer.train(self.model, [job])
        # Leave the model holding the trained weights, exactly like the
        # sequential loop does, then hand back fresh copies.
        self.model.load_flat(row)
        return self.model.get_weights(), loss
