"""Training and DAG-protocol configuration.

``TABLE1_CONFIGS`` encodes the paper's Table 1 hyperparameters verbatim;
the experiment profiles scale them down for fast simulation without
changing their relative structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive

__all__ = ["TrainingConfig", "DagConfig", "TABLE1_CONFIGS", "table1_config"]


@dataclass(frozen=True)
class TrainingConfig:
    """Local-training hyperparameters (one federated round on one client).

    ``local_batches`` caps batches per epoch: the paper fixes it "in order
    to equalize the number of batches used for training per client in case
    of an uneven distribution".
    """

    local_epochs: int = 1
    local_batches: int | None = 10
    batch_size: int = 10
    learning_rate: float = 0.05
    momentum: float = 0.0

    def __post_init__(self) -> None:
        check_positive("local_epochs", self.local_epochs)
        check_positive("batch_size", self.batch_size)
        check_positive("learning_rate", self.learning_rate)
        if self.local_batches is not None:
            check_positive("local_batches", self.local_batches)

    def scaled(self, **overrides) -> "TrainingConfig":
        """A copy with some fields replaced (for scaled-down profiles)."""
        return replace(self, **overrides)


#: Table 1 of the paper: fixed training hyperparameters per dataset.
TABLE1_CONFIGS: dict[str, TrainingConfig] = {
    "fmnist-clustered": TrainingConfig(
        local_epochs=1, local_batches=10, batch_size=10, learning_rate=0.05
    ),
    "poets": TrainingConfig(
        local_epochs=1, local_batches=35, batch_size=10, learning_rate=0.8
    ),
    "cifar100": TrainingConfig(
        local_epochs=5, local_batches=45, batch_size=10, learning_rate=0.01
    ),
}


def table1_config(dataset_name: str) -> TrainingConfig:
    """Look up the Table 1 configuration for a dataset family.

    Accepts the exact key or any name starting with it (so
    ``"fmnist-clustered-relaxed"`` resolves to the FMNIST row).
    """
    for key, config in TABLE1_CONFIGS.items():
        if dataset_name == key or dataset_name.startswith(key):
            return config
    raise KeyError(
        f"no Table 1 configuration for {dataset_name!r}; "
        f"known: {sorted(TABLE1_CONFIGS)}"
    )


@dataclass(frozen=True)
class DagConfig:
    """Protocol parameters of the specializing DAG.

    ``alpha`` is the specialization parameter of Section 4.2;
    ``normalization`` selects Eq. 1-2 (``"standard"``) or Eq. 3
    (``"dynamic"``); ``selector`` can downgrade the walk to the uniform
    random or cumulative-weight baselines; ``publish_gate`` is the rule
    that a model is only published when training did not make it worse
    than the reference (consensus) model on local test data.

    Extensions beyond the paper's evaluation:

    - ``personal_params`` implements the paper's stated future work
      ("training only some layers of the machine learning model"): the
      last N parameter arrays (e.g. 2 = final dense kernel + bias) are
      kept client-local — each client grafts its own head onto every
      model it consumes from the DAG, giving hard parameter sharing of
      the body with personal output layers.
    - ``visibility_delay`` models network propagation: clients selecting
      tips in round r only see transactions published up to round
      ``r - 1 - visibility_delay``.
    - ``aggregator`` selects the parent-model merge: ``"mean"`` (the
      paper), ``"median"``, or ``"trimmed_mean"`` (robust variants that
      pair with ``num_tips > 2``).
    - ``parallelism`` selects the round-execution substrate
      (:mod:`repro.substrate`): ``1`` (default) runs each round's
      per-client work serially, ``n > 1`` fans it out over ``n`` worker
      processes, ``0`` sizes the pool to the machine, and ``"auto"``
      decides per round with a payload cost model
      (:func:`repro.substrate.cost.estimate_payload`) over the round's
      actual post-export payloads: serial whenever the machine has
      fewer than two usable cores, the bytes that would cross the pipe
      exceed the ipc budget, or the dense working set those payloads
      stand for is too small to amortize the pool — a machine-sized
      pool otherwise.  Results are bit-identical across all settings
      for a fixed seed.
    - ``walk_engine`` switches tip selection to the lockstep multi-walk
      engine (:mod:`repro.dag.walk_engine`): all of a selection's walk
      particles advance in frontier-batched supersteps over a cached
      CSR snapshot of the visible tangle.  Tip *distributions*,
      evaluation accounting, and determinism-per-seed are unchanged,
      but individual draws differ from the sequential walker (the
      generator is consumed in blocks), so records are not
      bit-comparable across the two settings of this knob.  The
      snapshot amortizes across a *round* (one build serves every
      client); the async simulator's per-event views each see a unique
      point in time, so there the engine rebuilds the snapshot per
      training cycle — worthwhile when model evaluation dominates a
      walk, pure overhead for toy models on large tangles.
    - ``training_plane`` switches a round's local training to the
      lockstep plane (:mod:`repro.nn.training_plane`): the walk/
      aggregation phase still runs per client (and still parallelizes),
      but every participating client's SGD then advances in fused
      supersteps over one ``(K, P)`` weight stack — one batched
      forward/backward per global batch index instead of K Python
      loops.  Results are **bit-identical** to the per-client loop (and
      therefore across executors); models with unfused layers (conv,
      LSTM, embedding, pooling) and mixed batch schedules fall back to
      the per-model loop automatically.  In the async simulator each
      training cycle is a single client, so the knob routes
      ``Client.train`` through the same fused kernels with ``K = 1``.
    """

    alpha: float = 10.0
    normalization: str = "standard"
    selector: str = "accuracy"
    num_tips: int = 2
    depth_range: tuple[int, int] = (15, 25)
    publish_gate: bool = True
    weighted_alpha: float = 0.5
    personal_params: int = 0
    visibility_delay: int = 0
    aggregator: str = "mean"
    parallelism: int | str = 1
    walk_engine: bool = False
    training_plane: bool = False

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")
        if self.normalization not in ("standard", "dynamic"):
            raise ValueError(f"unknown normalization {self.normalization!r}")
        if self.selector not in ("accuracy", "random", "weighted"):
            raise ValueError(f"unknown selector {self.selector!r}")
        check_positive("num_tips", self.num_tips)
        low, high = self.depth_range
        if low < 0 or high < low:
            raise ValueError(f"invalid depth_range {self.depth_range}")
        if self.personal_params < 0:
            raise ValueError("personal_params must be >= 0")
        if self.visibility_delay < 0:
            raise ValueError("visibility_delay must be >= 0")
        if isinstance(self.parallelism, str):
            if self.parallelism != "auto":
                raise ValueError(
                    f"parallelism must be an int >= 0 or 'auto', "
                    f"got {self.parallelism!r}"
                )
        elif self.parallelism < 0:
            raise ValueError("parallelism must be >= 0 (0 = machine-sized)")
        from repro.fl.aggregation import AGGREGATORS

        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {self.aggregator!r}; "
                f"available: {sorted(AGGREGATORS)}"
            )
