"""Asynchronous (continuous-time, event-driven) DAG learning.

The paper's protocol is inherently asynchronous — "each client
continuously runs the training process as often as its resources permit,
independent from all other clients"; rounds exist only to compare against
centralized baselines.  This module simulates that deployment model
directly:

- every client alternates *think time* (exponentially distributed idle
  periods) and *training cycles* (lognormally distributed durations);
- a training cycle snapshots the tangle as visible at its **start** (the
  client works on stale state while training);
- published transactions become visible to each other client only after
  a per-transaction network propagation delay.

Events are processed from a priority queue, so arbitrarily interleaved
client activity — the thing discrete rounds cannot express — emerges
naturally: two clients training simultaneously both extend the same tips,
creating the DAG width the protocol is designed to reconcile.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import Transaction
from repro.dag.view import visible_tips
from repro.data.base import FederatedDataset
from repro.fl.aggregation import get_aggregator
from repro.fl.client import Client
from repro.fl.config import DagConfig, TrainingConfig
from repro.nn.model import Classifier
from repro.utils.rng import RngFactory

__all__ = ["AsyncTangleLearning", "PublishEvent", "TimedTangleView"]

ModelBuilder = Callable[[np.random.Generator], Classifier]


class TimedTangleView:
    """Tangle view filtered by per-transaction visibility times.

    ``visible_from`` gives the time each transaction becomes visible to
    the *network* (publication plus propagation delay).  ``observer``
    and ``published_at`` implement the issuer exemption: a real client's
    local tangle always contains its own publications, so transactions
    the observer itself issued are visible from their publication time —
    the propagation delay only governs everyone else.
    """

    def __init__(
        self,
        tangle: Tangle,
        visible_from: dict[str, float],
        now: float,
        *,
        observer: int | None = None,
        published_at: dict[str, float] | None = None,
    ):
        self._tangle = tangle
        self._visible_from = visible_from
        self._observer = observer
        self._published_at = {} if published_at is None else published_at
        self.now = now

    def _visible(self, tx_id: str) -> bool:
        if self._visible_from.get(tx_id, float("inf")) <= self.now:
            return True
        if self._observer is None:
            return False
        published = self._published_at.get(tx_id)
        return (
            published is not None
            and published <= self.now
            and self._tangle.get(tx_id).issuer == self._observer
        )

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._tangle and self._visible(tx_id)

    def get(self, tx_id: str) -> Transaction:
        if not self._visible(tx_id):
            raise KeyError(f"transaction {tx_id!r} not visible at t={self.now}")
        return self._tangle.get(tx_id)

    def transactions(self) -> list[Transaction]:
        return [
            tx for tx in self._tangle.transactions() if self._visible(tx.tx_id)
        ]

    def approvers(self, tx_id: str) -> list[str]:
        self.get(tx_id)
        return [a for a in self._tangle.approvers(tx_id) if self._visible(a)]

    def tips(self) -> list[str]:
        return visible_tips(self._tangle, lambda tx: self._visible(tx.tx_id))

    def is_tip(self, tx_id: str) -> bool:
        return tx_id in self and not self.approvers(tx_id)

    def cumulative_weight(self, tx_id: str) -> int:
        from collections import deque

        self.get(tx_id)
        seen: set[str] = set()
        queue = deque(self.approvers(tx_id))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.approvers(current))
        return 1 + len(seen)

    def cumulative_weights(self, tx_ids) -> np.ndarray:
        """Batched :meth:`cumulative_weight` (the walk's per-step query).

        Per-id filtered BFS under the hood — delayed visibility means
        the tangle's incremental index does not apply; the lockstep
        engine's snapshot computes all visible weights in one pass
        instead (:meth:`repro.dag.walk_engine.TangleSnapshot.cumulative_weights`).
        """
        return np.array(
            [self.cumulative_weight(tx_id) for tx_id in tx_ids], dtype=np.float64
        )


@dataclass(frozen=True)
class PublishEvent:
    """One completed training cycle."""

    time: float
    client_id: int
    published: bool
    accuracy: float
    reference_accuracy: float
    tx_id: str | None


@dataclass(order=True)
class _ScheduledCycle:
    """A queued training cycle; heap order is its declaration order.

    Ties at equal ``finish_time`` break by **client id first**, then by
    scheduling sequence number: two clients colliding on a timestamp
    must pop in an order that depends only on *who* they are, never on
    the incidental order their cycles were pushed — the same discipline
    the event engine (:mod:`repro.sim`) applies to its whole queue, and
    the reason round-style schedules (every client finishing at the
    same instant) process clients in id order.
    """

    finish_time: float
    client_id: int
    seq: int
    start_time: float = field(compare=False)


class AsyncTangleLearning:
    """Event-driven simulator of the specializing DAG.

    Parameters beyond the round-based simulator: ``mean_think_time``
    (exponential idle between cycles), ``mean_train_time`` /
    ``train_time_sigma`` (lognormal cycle duration), and
    ``mean_propagation_delay`` (exponential per-transaction network
    delay).  All times are in abstract simulation units.
    """

    def __init__(
        self,
        dataset: FederatedDataset,
        model_builder: ModelBuilder,
        train_config: TrainingConfig,
        dag_config: DagConfig = DagConfig(),
        *,
        seed: int = 0,
        mean_think_time: float = 1.0,
        mean_train_time: float = 1.0,
        train_time_sigma: float = 0.3,
        mean_propagation_delay: float = 0.1,
    ):
        if min(mean_think_time, mean_train_time) <= 0:
            raise ValueError("think and train times must be positive")
        if mean_propagation_delay < 0:
            raise ValueError("propagation delay must be >= 0")
        self.dataset = dataset
        self.dag_config = dag_config
        self._rngs = RngFactory(seed)
        self.model = model_builder(self._rngs.get("model-init"))
        genesis_weights = self.model.get_weights()
        self.tangle = Tangle(genesis_weights)
        self.clients: dict[int, Client] = {
            cd.client_id: Client(
                cd, self.model, train_config, self._rngs.get("client", cd.client_id)
            )
            for cd in dataset.clients
        }
        if dag_config.personal_params > 0:
            for client in self.clients.values():
                client.enable_personalization(
                    dag_config.personal_params, genesis_weights
                )
        self._aggregate = get_aggregator(dag_config.aggregator)
        self.mean_think_time = mean_think_time
        self.mean_train_time = mean_train_time
        self.train_time_sigma = train_time_sigma
        self.mean_propagation_delay = mean_propagation_delay

        self._time_rng = self._rngs.get("times")
        self._queue: list[_ScheduledCycle] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events: list[PublishEvent] = []
        # Genesis is visible to everyone from the start.
        self._visible_from: dict[str, float] = {self.tangle.genesis.tx_id: 0.0}
        # Publication times back the issuer exemption: a client always
        # sees its own transactions from the moment it published them.
        self._published_at: dict[str, float] = {self.tangle.genesis.tx_id: 0.0}
        for client_id in sorted(self.clients):
            self._schedule_cycle(client_id, self._think_delay())

    # ----------------------------------------------------------- scheduling
    def _think_delay(self) -> float:
        return float(self._time_rng.exponential(self.mean_think_time))

    def _train_duration(self) -> float:
        return float(
            self.mean_train_time
            * self._time_rng.lognormal(0.0, self.train_time_sigma)
        )

    def _schedule_cycle(self, client_id: int, start_delay: float) -> None:
        start = self.now + start_delay
        finish = start + self._train_duration()
        heapq.heappush(
            self._queue,
            _ScheduledCycle(finish, client_id, next(self._seq), start),
        )

    # ------------------------------------------------------------- stepping
    def step(self) -> PublishEvent:
        """Process the next completed training cycle."""
        if not self._queue:
            raise RuntimeError("no scheduled events")
        cycle = heapq.heappop(self._queue)
        self.now = cycle.finish_time
        client = self.clients[cycle.client_id]
        cfg = self.dag_config

        # The client worked on the tangle as it saw it when it STARTED —
        # network-delayed for everyone else's transactions, but its own
        # publications are local state and visible immediately.
        view = TimedTangleView(
            self.tangle,
            self._visible_from,
            cycle.start_time,
            observer=cycle.client_id,
            published_at=self._published_at,
        )
        walk_rng = self._rngs.get("walk", cycle.seq)
        selector = self._make_selector(client)
        tips = selector.select_tips(view, cfg.num_tips, walk_rng)

        parent_models = [self.tangle.get(t).model_weights for t in tips]
        reference = client.apply_personalization(self._aggregate(parent_models))
        # The publish gate needs accuracies only — take the loss-free path.
        reference_accuracy = client.accuracy_of_weights(reference)
        # An async cycle trains one client, so the training plane
        # degenerates to a K=1 fused group — same kernels, same bits,
        # batched numpy instead of the per-layer Python loop.
        trained, _loss = client.train(reference, fused=cfg.training_plane)
        client.update_personal_tail(trained)
        accuracy = client.accuracy_of_weights(trained)

        tx_id = None
        published = (not cfg.publish_gate) or accuracy >= reference_accuracy
        if published:
            # Publish through the flat plane, exactly like the round
            # simulator: one contiguous vector that Tangle.add interns
            # as an arena row — never a per-layer list.
            tx = Transaction.from_flat(
                tx_id=self.tangle.next_tx_id(cycle.client_id),
                parents=tuple(dict.fromkeys(tips)),
                flat=self.tangle.spec.flatten(trained),
                spec=self.tangle.spec,
                issuer=cycle.client_id,
                round_index=int(self.now),  # coarse time bucket for analysis
                tags=dict(client.data.metadata.get("tags", {})),
            )
            self.tangle.add(tx)
            tx_id = tx.tx_id
            delay = (
                float(self._time_rng.exponential(self.mean_propagation_delay))
                if self.mean_propagation_delay > 0
                else 0.0
            )
            self._published_at[tx.tx_id] = self.now
            self._visible_from[tx.tx_id] = self.now + delay

        event = PublishEvent(
            time=self.now,
            client_id=cycle.client_id,
            published=published,
            accuracy=accuracy,
            reference_accuracy=reference_accuracy,
            tx_id=tx_id,
        )
        self.events.append(event)
        self._schedule_cycle(cycle.client_id, self._think_delay())
        return event

    def run_until(self, end_time: float) -> list[PublishEvent]:
        """Process events until simulated time exceeds ``end_time``."""
        processed: list[PublishEvent] = []
        while self._queue and self._queue[0].finish_time <= end_time:
            processed.append(self.step())
        self.now = max(self.now, end_time)
        return processed

    def run_cycles(self, count: int) -> list[PublishEvent]:
        """Process exactly ``count`` training cycles."""
        return [self.step() for _ in range(count)]

    # -------------------------------------------------------------- queries
    def _make_selector(self, client: Client):
        """Delegates to the substrate's shared selector wiring, so the
        async simulator gets the same batched, cached accuracy path as
        the round-based one."""
        from repro.substrate import build_selector

        return build_selector(client, self.tangle, self.dag_config)

    def accuracy_timeline(self, bucket: float = 1.0) -> list[tuple[float, float]]:
        """Mean published-model accuracy per time bucket."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        buckets: dict[int, list[float]] = {}
        for event in self.events:
            buckets.setdefault(int(event.time // bucket), []).append(event.accuracy)
        return [
            (index * bucket, float(np.mean(values)))
            for index, values in sorted(buckets.items())
        ]
