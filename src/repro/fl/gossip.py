"""Gossip learning baseline (Ormándi/Hegedűs et al., Section 3.2).

Each round, every active client picks a random peer, averages the peer's
current model with its own, and trains the merge on local data.  There is
no ledger and no server; models spread epidemically.  Included as the
decentralized comparison point discussed in the paper's related work.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.base import FederatedDataset
from repro.fl.client import Client
from repro.fl.config import TrainingConfig
from repro.fl.records import RoundRecord
from repro.nn.model import Classifier
from repro.nn.serialization import Weights, average_weights
from repro.utils.rng import RngFactory

__all__ = ["GossipLearning"]

ModelBuilder = Callable[[np.random.Generator], Classifier]


class GossipLearning:
    """Peer-to-peer gossip learning simulator."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_builder: ModelBuilder,
        train_config: TrainingConfig,
        *,
        clients_per_round: int = 10,
        seed: int = 0,
    ):
        self.dataset = dataset
        self.clients_per_round = min(clients_per_round, dataset.num_clients)
        self._rngs = RngFactory(seed)
        self.model = model_builder(self._rngs.get("model-init"))
        initial = self.model.get_weights()
        self.clients: dict[int, Client] = {}
        self.local_weights: dict[int, Weights] = {}
        for cd in dataset.clients:
            self.clients[cd.client_id] = Client(
                cd, self.model, train_config, self._rngs.get("client", cd.client_id)
            )
            # All clients may share the initial list: weight lists are
            # never mutated in place (training replaces them wholesale),
            # so N copies of the genesis model bought nothing.
            self.local_weights[cd.client_id] = initial
        self._sampler = self._rngs.get("round-sampler")
        self.round_index = 0
        self.history: list[RoundRecord] = []

    def run_round(self) -> RoundRecord:
        ids = sorted(self.clients)
        active_ids = sorted(
            self._sampler.choice(
                ids, size=self.clients_per_round, replace=False
            ).tolist()
        )
        record = RoundRecord(round_index=self.round_index, active_clients=active_ids)
        # Snapshot so merges within a round use start-of-round models,
        # mirroring the concurrent semantics of the DAG simulator.
        snapshot = {cid: self.local_weights[cid] for cid in ids}
        for client_id in active_ids:
            client = self.clients[client_id]
            peers = [cid for cid in ids if cid != client_id]
            peer = int(self._sampler.choice(peers))
            merged = average_weights([snapshot[client_id], snapshot[peer]])
            trained, _loss = client.train(merged)
            self.local_weights[client_id] = trained
            loss, accuracy = client.evaluate_weights(trained)
            record.client_accuracy[client_id] = accuracy
            record.client_loss[client_id] = loss
        self.round_index += 1
        self.history.append(record)
        return record

    def run(self, rounds: int) -> list[RoundRecord]:
        return [self.run_round() for _ in range(rounds)]
