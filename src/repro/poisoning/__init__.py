"""Poisoning attacks and robustness metrics (Sections 4.4 and 5.3.4)."""

from repro.poisoning.attacks import (
    flip_labels_array,
    poison_dataset_label_flip,
    random_weight_update,
)
from repro.poisoning.evaluation import (
    count_approved_poisoned,
    flipped_prediction_rate,
    network_flipped_prediction_rate,
    poisoned_cluster_distribution,
)

__all__ = [
    "flip_labels_array",
    "poison_dataset_label_flip",
    "random_weight_update",
    "flipped_prediction_rate",
    "network_flipped_prediction_rate",
    "count_approved_poisoned",
    "poisoned_cluster_distribution",
]
