"""Poisoning-robustness metrics (Figures 12, 13, 14)."""

from __future__ import annotations

import numpy as np

from repro.dag.tangle import Tangle
from repro.data.base import ClientData
from repro.nn.model import Classifier
from repro.nn.serialization import Weights

__all__ = [
    "flipped_prediction_rate",
    "network_flipped_prediction_rate",
    "count_approved_poisoned",
    "poisoned_cluster_distribution",
]


def _true_test_labels(client: ClientData) -> np.ndarray:
    """Ground-truth test labels (pre-flip for poisoned clients)."""
    original = client.metadata.get("y_test_original")
    return original if original is not None else client.y_test


def flipped_prediction_rate(
    model: Classifier,
    weights: Weights,
    client: ClientData,
    *,
    class_a: int = 3,
    class_b: int = 8,
) -> float:
    """Fraction of a client's {a, b}-class test samples flipped by a model.

    Measured against ground-truth labels: a true-``a`` sample predicted as
    ``b`` (or vice versa) counts as flipped.  NaN when the client's test
    set holds no samples of either class.
    """
    labels = _true_test_labels(client)
    mask = (labels == class_a) | (labels == class_b)
    if not mask.any():
        return float("nan")
    model.set_weights(weights)
    predictions = model.predict(client.x_test[mask])
    truth = labels[mask]
    flipped = ((truth == class_a) & (predictions == class_b)) | (
        (truth == class_b) & (predictions == class_a)
    )
    return float(flipped.mean())


def network_flipped_prediction_rate(
    model: Classifier,
    reference_weights: dict[int, Weights],
    clients: dict[int, ClientData],
    *,
    class_a: int = 3,
    class_b: int = 8,
) -> float:
    """Mean flipped-prediction rate over clients (Figure 12's y-axis).

    ``reference_weights`` maps client id -> the weights of the reference
    transaction that client selected from the DAG.  Clients without
    relevant test samples are skipped.
    """
    rates = []
    for client_id, weights in reference_weights.items():
        rate = flipped_prediction_rate(
            model, weights, clients[client_id], class_a=class_a, class_b=class_b
        )
        if not np.isnan(rate):
            rates.append(rate)
    if not rates:
        return float("nan")
    return float(np.mean(rates))


def count_approved_poisoned(
    tangle: Tangle, reference_tx_id: str, poisoned_clients: set[int]
) -> int:
    """Poisoned transactions in the reference's past cone (Figure 13).

    Counts the reference itself too when its issuer is poisoned: the
    paper counts poisoned updates "included in the reference transactions
    by direct or indirect approvals".
    """
    count = 0
    reference = tangle.get(reference_tx_id)
    if reference.issuer in poisoned_clients:
        count += 1
    for tx_id in tangle.past_cone(reference_tx_id):
        if tangle.get(tx_id).issuer in poisoned_clients:
            count += 1
    return count


def poisoned_cluster_distribution(
    partition: dict[int, int], poisoned_clients: set[int]
) -> list[dict[str, int]]:
    """Per inferred cluster, how many members are benign vs poisoned.

    The Figure 14 histogram: sorted by cluster id; each entry reports
    ``{"cluster", "benign", "poisoned"}``.
    """
    clusters = sorted(set(partition.values()))
    rows = []
    for cluster in clusters:
        members = [c for c, comm in partition.items() if comm == cluster]
        poisoned = sum(1 for m in members if m in poisoned_clients)
        rows.append(
            {
                "cluster": int(cluster),
                "benign": len(members) - poisoned,
                "poisoned": poisoned,
            }
        )
    return rows
