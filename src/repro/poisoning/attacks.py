"""Attack implementations.

The paper adopts the threat model of Schmid et al.: (a) random-weight
updates and (b) flipped-label training data.  Its main study is the
flipped-label scenario where "an attacker is able to manipulate the labels
in the dataset of one or many clients, e.g. by installing forged sensing
hardware" — the affected clients keep participating honestly, but both
their training *and test* data carry swapped labels for one class pair.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.data.base import FederatedDataset
from repro.nn.serialization import Weights
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

__all__ = ["flip_labels_array", "poison_dataset_label_flip", "random_weight_update"]


def flip_labels_array(
    labels: np.ndarray, class_a: int, class_b: int
) -> np.ndarray:
    """Return a copy of ``labels`` with the two classes swapped."""
    if class_a == class_b:
        raise ValueError("class_a and class_b must differ")
    flipped = labels.copy()
    mask_a = labels == class_a
    mask_b = labels == class_b
    flipped[mask_a] = class_b
    flipped[mask_b] = class_a
    return flipped


def poison_dataset_label_flip(
    dataset: FederatedDataset,
    *,
    class_a: int = 3,
    class_b: int = 8,
    poisoned_fraction: float = 0.2,
    seed: int | np.random.Generator = 0,
) -> tuple[FederatedDataset, set[int]]:
    """Flip ``class_a <-> class_b`` for a random fraction of clients.

    Returns a *new* dataset (clients deep-copied) and the set of poisoned
    client ids.  Original labels are preserved in each poisoned client's
    metadata (``y_train_original``/``y_test_original``) so evaluation can
    measure mispredictions w.r.t. ground truth; the client metadata also
    gains ``tags={"poisoned": True}`` which the simulator copies onto
    published transactions (evaluation-only bookkeeping — the protocol
    itself never reads it).
    """
    check_probability("poisoned_fraction", poisoned_fraction)
    rng = ensure_rng(seed)
    n_poisoned = int(round(dataset.num_clients * poisoned_fraction))
    ids = sorted(c.client_id for c in dataset.clients)
    poisoned_ids = set(
        int(i) for i in rng.choice(ids, size=n_poisoned, replace=False)
    ) if n_poisoned else set()

    new_clients = []
    for client in dataset.clients:
        clone = copy.deepcopy(client)
        if client.client_id in poisoned_ids:
            clone.metadata["y_train_original"] = client.y_train.copy()
            clone.metadata["y_test_original"] = client.y_test.copy()
            clone.y_train = flip_labels_array(clone.y_train, class_a, class_b)
            clone.y_test = flip_labels_array(clone.y_test, class_a, class_b)
            clone.metadata["tags"] = {"poisoned": True}
        new_clients.append(clone)
    poisoned = FederatedDataset(
        name=f"{dataset.name}-poisoned",
        num_classes=dataset.num_classes,
        num_clusters=dataset.num_clusters,
        clients=new_clients,
    )
    return poisoned, poisoned_ids


def random_weight_update(
    reference: Weights, rng: np.random.Generator, *, scale: float = 1.0
) -> Weights:
    """A random-weights attack payload with the right shapes.

    Models the first attack of the threat model: submitting weights drawn
    from a normal distribution instead of trained ones.
    """
    return [rng.normal(0.0, scale, size=w.shape) for w in reference]
