"""Dataset substrates.

The paper evaluates on FEMNIST (synthetically clustered), a
Shakespeare+Goethe text corpus ("Poets"), CIFAR-100 with Pachinko client
allocation, and the FedProx synthetic dataset.  This environment has no
network access, so each is replaced by a generator that preserves the
structural properties the experiments probe (see DESIGN.md section 2).
"""

from repro.data.base import ClientData, FederatedDataset
from repro.data.fmnist import make_fmnist_clustered, make_fmnist_by_writer
from repro.data.poets import make_poets
from repro.data.cifar import make_cifar100_like
from repro.data.fedprox_synthetic import make_fedprox_synthetic
from repro.data.pachinko import pachinko_allocation

__all__ = [
    "ClientData",
    "FederatedDataset",
    "make_fmnist_clustered",
    "make_fmnist_by_writer",
    "make_poets",
    "make_cifar100_like",
    "make_fedprox_synthetic",
    "pachinko_allocation",
]
