"""Procedural FMNIST-like handwriting data.

The paper synthetically re-clusters FEMNIST by digit groups {0,1,2,3},
{4,5,6}, {7,8,9}.  Without network access we render digit glyphs
procedurally: a canonical 7x5 bitmap per digit is upscaled, then each
simulated *writer* applies a consistent style (rotation, stroke blur,
contrast) with per-sample jitter (shift, pixel noise).  This preserves the
two properties the experiments rely on: images of the same class are
learnable, and per-writer style variation exists for the writer-split
(poisoning) experiments.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.base import ClientData, FederatedDataset, train_test_split
from repro.utils.rng import ensure_rng

__all__ = [
    "DIGIT_BITMAPS",
    "GLYPH_BITMAPS",
    "DEFAULT_CLUSTERS",
    "render_digit",
    "WriterStyle",
    "make_fmnist_clustered",
    "make_fmnist_by_writer",
]

_BITMAP_STRINGS = {
    0: ("01110", "10001", "10001", "10001", "10001", "10001", "01110"),
    1: ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    2: ("01110", "10001", "00001", "00010", "00100", "01000", "11111"),
    3: ("11110", "00001", "00001", "01110", "00001", "00001", "11110"),
    4: ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    5: ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    6: ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    7: ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    8: ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    9: ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
}

_LETTER_STRINGS = {
    # EMNIST also covers letters; classes 10+ extend the glyph set.
    10: ("01110", "10001", "10001", "11111", "10001", "10001", "10001"),  # A
    11: ("11110", "10001", "10001", "11110", "10001", "10001", "11110"),  # B
    12: ("01110", "10001", "10000", "10000", "10000", "10001", "01110"),  # C
    13: ("11110", "10001", "10001", "10001", "10001", "10001", "11110"),  # D
    14: ("11111", "10000", "10000", "11110", "10000", "10000", "11111"),  # E
    15: ("11111", "10000", "10000", "11110", "10000", "10000", "10000"),  # F
}


def _parse(rows: tuple[str, ...]) -> np.ndarray:
    return np.array([[float(ch) for ch in row] for row in rows])


#: Canonical 7x5 float bitmaps for the ten digits.
DIGIT_BITMAPS: dict[int, np.ndarray] = {
    digit: _parse(rows) for digit, rows in _BITMAP_STRINGS.items()
}

#: Digits 0-9 plus letters A-F (classes 10-15), EMNIST-style.
GLYPH_BITMAPS: dict[int, np.ndarray] = {
    **DIGIT_BITMAPS,
    **{cls: _parse(rows) for cls, rows in _LETTER_STRINGS.items()},
}

#: The class clusters used throughout the paper's FMNIST experiments.
DEFAULT_CLUSTERS: tuple[tuple[int, ...], ...] = ((0, 1, 2, 3), (4, 5, 6), (7, 8, 9))


def render_digit(digit: int, image_size: int, *, margin: int = 2) -> np.ndarray:
    """Upscale the canonical bitmap of a glyph to ``image_size`` square.

    Accepts digit classes 0-9 and letter classes 10-15.
    """
    if digit not in GLYPH_BITMAPS:
        raise ValueError(f"unknown digit {digit}")
    if image_size < 8:
        raise ValueError("image_size must be >= 8")
    bitmap = GLYPH_BITMAPS[digit]
    inner = image_size - 2 * margin
    zoomed = ndimage.zoom(
        bitmap, (inner / bitmap.shape[0], inner / bitmap.shape[1]), order=1
    )
    zoomed = np.clip(zoomed, 0.0, 1.0)
    canvas = np.zeros((image_size, image_size))
    canvas[margin : margin + zoomed.shape[0], margin : margin + zoomed.shape[1]] = zoomed
    return canvas


class WriterStyle:
    """A simulated writer: consistent per-writer glyph transformation.

    The style pre-renders a prototype per class (rotation + blur +
    contrast applied once), so that per-sample generation only needs a
    cheap shift and pixel noise.
    """

    def __init__(self, rng: np.random.Generator, image_size: int):
        self.angle = float(rng.uniform(-12.0, 12.0))
        self.blur_sigma = float(rng.uniform(0.3, 0.8))
        self.contrast = float(rng.uniform(0.75, 1.2))
        self.noise_level = float(rng.uniform(0.04, 0.12))
        self.shift_bias = rng.uniform(-1.0, 1.0, size=2)
        self.image_size = image_size
        self._prototypes: dict[int, np.ndarray] = {}

    def prototype(self, digit: int) -> np.ndarray:
        """Writer-specific canonical image of ``digit``."""
        cached = self._prototypes.get(digit)
        if cached is not None:
            return cached
        canvas = render_digit(digit, self.image_size)
        rotated = ndimage.rotate(canvas, self.angle, reshape=False, order=1)
        blurred = ndimage.gaussian_filter(rotated, self.blur_sigma)
        proto = np.clip(blurred * self.contrast, 0.0, 1.0)
        self._prototypes[digit] = proto
        return proto

    def sample(self, digit: int, rng: np.random.Generator) -> np.ndarray:
        """One noisy sample of ``digit`` in this writer's style."""
        proto = self.prototype(digit)
        shift = self.shift_bias + rng.uniform(-1.0, 1.0, size=2)
        shifted = ndimage.shift(proto, shift, order=1, mode="constant")
        noisy = shifted + rng.normal(0.0, self.noise_level, size=proto.shape)
        return np.clip(noisy, 0.0, 1.0)


def _generate_client_images(
    classes: np.ndarray,
    style: WriterStyle,
    rng: np.random.Generator,
) -> np.ndarray:
    images = np.empty((classes.shape[0], 1, style.image_size, style.image_size))
    for i, digit in enumerate(classes):
        images[i, 0] = style.sample(int(digit), rng)
    return images


def _cluster_of_class(clusters: tuple[tuple[int, ...], ...]) -> dict[int, int]:
    mapping: dict[int, int] = {}
    for cluster_id, members in enumerate(clusters):
        for cls in members:
            if cls in mapping:
                raise ValueError(f"class {cls} appears in two clusters")
            mapping[cls] = cluster_id
    return mapping


def make_fmnist_clustered(
    *,
    num_clients: int = 30,
    samples_per_client: int = 60,
    image_size: int = 14,
    clusters: tuple[tuple[int, ...], ...] = DEFAULT_CLUSTERS,
    foreign_fraction: tuple[float, float] | None = None,
    test_fraction: float = 0.1,
    seed: int | np.random.Generator = 0,
) -> FederatedDataset:
    """FMNIST-clustered: clients hold digits from one class cluster.

    ``foreign_fraction=(low, high)`` produces the paper's *relaxed*
    variant where each client additionally holds that fraction of samples
    drawn from other clusters' classes (the paper uses 15-20 %).
    Clients are assigned to clusters round-robin so cluster sizes are
    balanced, exactly as the paper assigns "an equal number of clients to
    each cluster".
    """
    rng = ensure_rng(seed)
    if num_clients < len(clusters):
        raise ValueError("need at least one client per cluster")
    class_cluster = _cluster_of_class(clusters)
    all_classes = sorted(class_cluster)
    clients: list[ClientData] = []
    for client_id in range(num_clients):
        cluster_id = client_id % len(clusters)
        own_classes = clusters[cluster_id]
        other_classes = [c for c in all_classes if class_cluster[c] != cluster_id]
        client_rng = ensure_rng(int(rng.integers(0, 2**62)))
        style = WriterStyle(client_rng, image_size)

        if foreign_fraction is not None:
            low, high = foreign_fraction
            frac = client_rng.uniform(low, high)
            n_foreign = int(round(samples_per_client * frac))
        else:
            n_foreign = 0
        n_own = samples_per_client - n_foreign
        labels = np.concatenate(
            [
                client_rng.choice(own_classes, size=n_own),
                client_rng.choice(other_classes, size=n_foreign)
                if n_foreign
                else np.empty(0, dtype=int),
            ]
        ).astype(int)
        client_rng.shuffle(labels)
        images = _generate_client_images(labels, style, client_rng)
        x_tr, y_tr, x_te, y_te = train_test_split(
            images, labels, client_rng, test_fraction=test_fraction
        )
        clients.append(
            ClientData(
                client_id=client_id,
                x_train=x_tr,
                y_train=y_tr,
                x_test=x_te,
                y_test=y_te,
                cluster_id=cluster_id,
                metadata={"style_angle": style.angle},
            )
        )
    name = "fmnist-clustered-relaxed" if foreign_fraction else "fmnist-clustered"
    return FederatedDataset(
        name=name,
        num_classes=10,
        num_clusters=len(clusters),
        clients=clients,
    )


def make_fmnist_by_writer(
    *,
    num_clients: int = 20,
    samples_per_client: int = 60,
    image_size: int = 14,
    test_fraction: float = 0.1,
    num_classes: int = 10,
    seed: int | np.random.Generator = 0,
) -> FederatedDataset:
    """Original FMNIST split: every client (writer) holds all classes.

    This is the configuration of the paper's poisoning experiments
    (Section 5.3.4), which use "the original FMNIST dataset that is split
    by the authors of the handwritten digits".  There is no ground-truth
    clustering, so every client carries ``cluster_id=0``.  Set
    ``num_classes`` up to 16 to include the EMNIST-style letter glyphs
    A-F as classes 10-15.
    """
    if not 2 <= num_classes <= len(GLYPH_BITMAPS):
        raise ValueError(
            f"num_classes must be in [2, {len(GLYPH_BITMAPS)}], got {num_classes}"
        )
    rng = ensure_rng(seed)
    clients: list[ClientData] = []
    for client_id in range(num_clients):
        client_rng = ensure_rng(int(rng.integers(0, 2**62)))
        style = WriterStyle(client_rng, image_size)
        labels = client_rng.integers(0, num_classes, size=samples_per_client)
        images = _generate_client_images(labels, style, client_rng)
        x_tr, y_tr, x_te, y_te = train_test_split(
            images, labels, client_rng, test_fraction=test_fraction
        )
        clients.append(
            ClientData(
                client_id=client_id,
                x_train=x_tr,
                y_train=y_tr,
                x_test=x_te,
                y_test=y_te,
                cluster_id=0,
                metadata={"style_angle": style.angle},
            )
        )
    return FederatedDataset(
        name="fmnist-by-writer",
        num_classes=num_classes,
        num_clusters=1,
        clients=clients,
    )
