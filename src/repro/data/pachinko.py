"""Pachinko Allocation Method (PAM) for client data assignment.

The paper allocates CIFAR-100 samples to clients "using the Pachinko
Allocation Method based on random draws (without replacement) from
symmetric Dirichlet distributions over the superclasses and associated
subclasses, as used by the TensorFlow Federated framework".  This module
implements that two-level scheme over an explicit class hierarchy.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["pachinko_allocation"]


def pachinko_allocation(
    hierarchy: dict[int, list[int]],
    class_pool_sizes: dict[int, int],
    *,
    num_clients: int,
    samples_per_client: int,
    alpha_super: float = 0.1,
    alpha_sub: float = 10.0,
    seed: int | np.random.Generator = 0,
) -> list[list[int]]:
    """Assign class labels to clients by two-level Dirichlet draws.

    ``hierarchy`` maps superclass id -> list of class ids; the pool sizes
    bound how many samples of each class exist globally (draws are without
    replacement).  Returns, per client, the list of class ids its samples
    belong to.  A small ``alpha_super`` concentrates each client on few
    superclasses (the non-IID knob); ``alpha_sub`` spreads samples within a
    superclass.

    Raises ``ValueError`` if the total pool is too small for the request.
    """
    rng = ensure_rng(seed)
    total_pool = sum(class_pool_sizes.values())
    needed = num_clients * samples_per_client
    if needed > total_pool:
        raise ValueError(
            f"pool of {total_pool} samples cannot serve "
            f"{num_clients} x {samples_per_client}"
        )
    for super_id, members in hierarchy.items():
        for cls in members:
            if cls not in class_pool_sizes:
                raise ValueError(f"class {cls} of superclass {super_id} has no pool")

    remaining = dict(class_pool_sizes)
    assignments: list[list[int]] = []
    super_ids = sorted(hierarchy)
    for _ in range(num_clients):
        # Per-client multinomial mixtures (the "pachinko machine").
        theta_super = rng.dirichlet([alpha_super] * len(super_ids))
        theta_sub = {
            sid: rng.dirichlet([alpha_sub] * len(hierarchy[sid])) for sid in super_ids
        }
        picked: list[int] = []
        for _ in range(samples_per_client):
            label = _draw_one(
                super_ids, hierarchy, theta_super, theta_sub, remaining, rng
            )
            picked.append(label)
            remaining[label] -= 1
        assignments.append(picked)
    return assignments


def _draw_one(
    super_ids: list[int],
    hierarchy: dict[int, list[int]],
    theta_super: np.ndarray,
    theta_sub: dict[int, np.ndarray],
    remaining: dict[int, int],
    rng: np.random.Generator,
) -> int:
    """Draw one class label respecting pool exhaustion.

    Exhausted classes get zero probability; if a whole superclass is
    exhausted its mass is renormalized away, mirroring the TFF behaviour of
    removing empty leaves from the allocation tree.
    """
    super_mass = np.array(
        [
            theta_super[i] if any(remaining[c] > 0 for c in hierarchy[sid]) else 0.0
            for i, sid in enumerate(super_ids)
        ]
    )
    total = super_mass.sum()
    if total <= 0:
        raise ValueError("all class pools exhausted")
    super_mass /= total
    sid = super_ids[int(rng.choice(len(super_ids), p=super_mass))]

    members = hierarchy[sid]
    sub_mass = np.array(
        [
            theta_sub[sid][j] if remaining[cls] > 0 else 0.0
            for j, cls in enumerate(members)
        ]
    )
    sub_total = sub_mass.sum()
    if sub_total <= 0:  # defensive; super_mass already excluded empty supers
        raise ValueError(f"superclass {sid} exhausted")
    sub_mass /= sub_total
    return members[int(rng.choice(len(members), p=sub_mass))]
