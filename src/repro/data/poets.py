"""The "Poets" next-character-prediction dataset.

The paper combines LEAF's Shakespeare dataset with Goethe plays from
Project Gutenberg, assigning English and German speakers to separate
clusters.  Offline substitute: small embedded public-domain excerpts of
each author seed an order-2 character Markov generator, which expands them
into per-client corpora.  English and German differ strongly in character
bigram statistics, which is exactly the signal a small next-character LSTM
picks up, so cluster structure is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.data.base import ClientData, FederatedDataset, train_test_split
from repro.utils.rng import ensure_rng

__all__ = [
    "SHAKESPEARE_SEED",
    "GOETHE_SEED",
    "MarkovTextGenerator",
    "build_vocabulary",
    "encode_text",
    "make_poets",
]

SHAKESPEARE_SEED = (
    "to be or not to be that is the question whether tis nobler in the mind "
    "to suffer the slings and arrows of outrageous fortune or to take arms "
    "against a sea of troubles and by opposing end them to die to sleep no "
    "more and by a sleep to say we end the heartache and the thousand natural "
    "shocks that flesh is heir to tis a consummation devoutly to be wished to "
    "die to sleep to sleep perchance to dream ay there is the rub for in that "
    "sleep of death what dreams may come when we have shuffled off this mortal "
    "coil must give us pause there is the respect that makes calamity of so "
    "long life shall i compare thee to a summers day thou art more lovely and "
    "more temperate rough winds do shake the darling buds of may and summers "
    "lease hath all too short a date sometime too hot the eye of heaven shines "
    "and often is his gold complexion dimmed and every fair from fair sometime "
    "declines by chance or natures changing course untrimmed but thy eternal "
    "summer shall not fade nor lose possession of that fair thou owest nor "
    "shall death brag thou wanderest in his shade when in eternal lines to "
    "time thou growest so long as men can breathe or eyes can see so long "
    "lives this and this gives life to thee all the world is a stage and all "
    "the men and women merely players they have their exits and their "
    "entrances and one man in his time plays many parts"
)

GOETHE_SEED = (
    "habe nun ach philosophie juristerei und medizin und leider auch theologie "
    "durchaus studiert mit heißem bemühn da steh ich nun ich armer tor und "
    "bin so klug als wie zuvor heiße magister heiße doktor gar und ziehe "
    "schon an die zehen jahr herauf herab und quer und krumm meine schüler an "
    "der nase herum und sehe daß wir nichts wissen können das will mir "
    "schier das herz verbrennen wer reitet so spät durch nacht und wind es "
    "ist der vater mit seinem kind er hat den knaben wohl in dem arm er faßt "
    "ihn sicher er hält ihn warm mein sohn was birgst du so bang dein gesicht "
    "siehst vater du den erlkönig nicht den erlenkönig mit kron und schweif "
    "mein sohn es ist ein nebelstreif du liebes kind komm geh mit mir gar "
    "schöne spiele spiel ich mit dir manch bunte blumen sind an dem strand "
    "meine mutter hat manch gülden gewand über allen gipfeln ist ruh in "
    "allen wipfeln spürest du kaum einen hauch die vögelein schweigen im "
    "walde warte nur balde ruhest du auch es schlug mein herz geschwind zu "
    "pferde es war getan fast eh gedacht der abend wiegte schon die erde und "
    "an den bergen hing die nacht schon stand im nebelkleid die eiche ein "
    "aufgetürmter riese da wo finsternis aus dem gesträuche mit hundert "
    "schwarzen augen sah"
)


class MarkovTextGenerator:
    """Order-``k`` character Markov chain fitted on a seed text."""

    def __init__(self, seed_text: str, *, order: int = 2):
        if order < 1:
            raise ValueError("order must be >= 1")
        if len(seed_text) <= order + 1:
            raise ValueError("seed text too short for the requested order")
        self.order = order
        self.seed_text = seed_text
        self._transitions: dict[str, tuple[list[str], np.ndarray]] = {}
        counts: dict[str, dict[str, int]] = {}
        for i in range(len(seed_text) - order):
            context = seed_text[i : i + order]
            nxt = seed_text[i + order]
            counts.setdefault(context, {}).setdefault(nxt, 0)
            counts[context][nxt] += 1
        for context, nxt_counts in counts.items():
            chars = sorted(nxt_counts)
            weights = np.array([nxt_counts[c] for c in chars], dtype=np.float64)
            self._transitions[context] = (chars, weights / weights.sum())

    def generate(self, length: int, rng: np.random.Generator) -> str:
        """Generate ``length`` characters, restarting on dead-end contexts."""
        start = int(rng.integers(0, len(self.seed_text) - self.order))
        context = self.seed_text[start : start + self.order]
        out = list(context)
        while len(out) < length:
            entry = self._transitions.get(context)
            if entry is None:
                start = int(rng.integers(0, len(self.seed_text) - self.order))
                context = self.seed_text[start : start + self.order]
                out.extend(context)
                continue
            chars, probs = entry
            nxt = chars[int(rng.choice(len(chars), p=probs))]
            out.append(nxt)
            context = context[1:] + nxt
        return "".join(out[:length])


def build_vocabulary(texts: list[str]) -> dict[str, int]:
    """Character vocabulary over a list of texts (sorted for determinism)."""
    chars = sorted(set("".join(texts)))
    return {ch: i for i, ch in enumerate(chars)}


def encode_text(
    text: str, vocab: dict[str, int], seq_len: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding-window encoding: sequences of ``seq_len`` chars -> next char."""
    if len(text) <= seq_len:
        raise ValueError("text shorter than sequence length")
    encoded = np.array([vocab[ch] for ch in text], dtype=np.int64)
    n = len(encoded) - seq_len
    x = np.empty((n, seq_len), dtype=np.int64)
    for i in range(n):
        x[i] = encoded[i : i + seq_len]
    y = encoded[seq_len:]
    return x, y


def make_poets(
    *,
    num_clients: int = 20,
    samples_per_client: int = 120,
    seq_len: int = 20,
    test_fraction: float = 0.1,
    seed: int | np.random.Generator = 0,
) -> FederatedDataset:
    """Poets: half the clients hold English text, half German.

    Cluster 0 is Shakespeare/English, cluster 1 is Goethe/German, matching
    the paper's two-cluster construction with an equal sample split.
    """
    rng = ensure_rng(seed)
    if num_clients < 2:
        raise ValueError("need at least 2 clients (one per language)")
    english = MarkovTextGenerator(SHAKESPEARE_SEED)
    german = MarkovTextGenerator(GOETHE_SEED)
    vocab = build_vocabulary([SHAKESPEARE_SEED, GOETHE_SEED])

    clients: list[ClientData] = []
    for client_id in range(num_clients):
        cluster_id = client_id % 2
        generator = english if cluster_id == 0 else german
        client_rng = ensure_rng(int(rng.integers(0, 2**62)))
        text = generator.generate(samples_per_client + seq_len, client_rng)
        x, y = encode_text(text, vocab, seq_len)
        x_tr, y_tr, x_te, y_te = train_test_split(
            x, y, client_rng, test_fraction=test_fraction
        )
        clients.append(
            ClientData(
                client_id=client_id,
                x_train=x_tr,
                y_train=y_tr,
                x_test=x_te,
                y_test=y_te,
                cluster_id=cluster_id,
                metadata={"language": "en" if cluster_id == 0 else "de"},
            )
        )
    dataset = FederatedDataset(
        name="poets", num_classes=len(vocab), num_clusters=2, clients=clients
    )
    dataset.vocab = vocab  # type: ignore[attr-defined]
    return dataset
