"""Containers for federated datasets.

A :class:`FederatedDataset` is a collection of :class:`ClientData`, each
holding a private train/test split (the paper uses 90:10 per client) plus
a ground-truth cluster id used only by the *evaluation* metrics — the
learning algorithms never see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import shm as shm_registry

__all__ = ["ClientData", "FederatedDataset", "train_test_split"]

#: The tensor fields a shared-memory export covers, in layout order.
_TENSOR_FIELDS = ("x_train", "y_train", "x_test", "y_test")

#: Estimated pickle size of a client's attach-by-name tensor handle.
_HANDLE_NBYTES = 192


def _align(offset: int, alignment: int = 16) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    *,
    test_fraction: float = 0.1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test with at least one test sample."""
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1)
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


@dataclass
class ClientData:
    """One client's private data and ground-truth cluster label."""

    client_id: int
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    cluster_id: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.x_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("x_train/y_train length mismatch")
        if self.x_test.shape[0] != self.y_test.shape[0]:
            raise ValueError("x_test/y_test length mismatch")
        if self.x_train.shape[0] == 0 or self.x_test.shape[0] == 0:
            raise ValueError("clients must have non-empty train and test data")

    @property
    def n_train(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.x_test.shape[0])

    def classes_present(self) -> np.ndarray:
        """Sorted unique labels across this client's train and test data."""
        return np.unique(np.concatenate([self.y_train, self.y_test]))

    # ------------------------------------------------- shared-memory plane
    @property
    def is_shared(self) -> bool:
        """True when the tensors live in a shared-memory segment."""
        return getattr(self, "_shm_handle", None) is not None

    def share_memory(self) -> "ClientData":
        """One-time export of the four tensors into one shared segment.

        The arrays are copied once (bit-exact) into a named
        ``multiprocessing.shared_memory`` segment and the fields replaced
        by views into it; from then on pickling this object ships an
        attach-by-name handle — ``(uid, segment, offsets)`` — instead of
        the tensor bytes, so a persistent pool worker maps the data once
        and reuses the mapping across rounds.  Idempotent; returns
        ``self`` for chaining.  :meth:`close_shared` (or interpreter
        exit) unlinks the segment; live views stay valid.
        """
        if self.is_shared:
            return self
        layout = []
        offset = 0
        for name in _TENSOR_FIELDS:
            array = np.ascontiguousarray(getattr(self, name))
            offset = _align(offset)
            layout.append((name, array, offset, array.shape, array.dtype.str))
            offset += array.nbytes
        segment = shm_registry.create_segment(offset)
        entries = []
        for name, array, start, shape, dtype in layout:
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=start)
            view[...] = array
            setattr(self, name, view)
            entries.append((name, start, shape, dtype))
        self._shm_handle = {
            "uid": shm_registry.new_uid(),
            "name": segment.name,
            "entries": entries,
        }
        return self

    def close_shared(self) -> None:
        """Unlink this client's segment and revert to heap tensors.

        The inverse of :meth:`share_memory` (idempotent): the fields are
        re-materialized as ordinary heap copies and the handle dropped,
        so the object stays usable — and re-shareable — afterwards and
        can never pickle a handle to an unlinked name.  Worker-side
        mappings stay valid until collected.
        """
        handle = getattr(self, "_shm_handle", None)
        if handle is None:
            return
        for name in _TENSOR_FIELDS:
            setattr(self, name, np.array(getattr(self, name), copy=True))
        self._shm_handle = None
        shm_registry.unlink_segment(handle["name"])

    def _cost_footprint(self, walk) -> tuple[int, int]:
        """(shipped bytes, dense bytes) for the substrate's router."""
        dense = sum(getattr(self, name).nbytes for name in _TENSOR_FIELDS)
        return (_HANDLE_NBYTES if self.is_shared else dense), dense

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if state.get("_shm_handle") is not None:
            for name in _TENSOR_FIELDS:
                del state[name]
        return state

    def __setstate__(self, state: dict) -> None:
        handle = state.get("_shm_handle")
        self.__dict__.update(state)
        if handle is not None:
            segment = shm_registry.attach_cached(handle["uid"], handle["name"])
            for name, start, shape, dtype in handle["entries"]:
                view = np.ndarray(
                    shape, dtype=dtype, buffer=segment.buf, offset=start
                )
                setattr(self, name, view)


@dataclass
class FederatedDataset:
    """A named federation of clients over a shared label space."""

    name: str
    num_classes: int
    num_clusters: int
    clients: list[ClientData]

    def __post_init__(self) -> None:
        if not self.clients:
            raise ValueError("a federated dataset needs at least one client")
        ids = [c.client_id for c in self.clients]
        if len(set(ids)) != len(ids):
            raise ValueError("client ids must be unique")

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def client(self, client_id: int) -> ClientData:
        """Look up a client by id."""
        for c in self.clients:
            if c.client_id == client_id:
                return c
        raise KeyError(f"no client with id {client_id}")

    def share_memory(self) -> "FederatedDataset":
        """Export every client's tensors to shared memory (idempotent)."""
        for client in self.clients:
            client.share_memory()
        return self

    def close_shared(self) -> None:
        """Unlink every client's segment (idempotent)."""
        for client in self.clients:
            client.close_shared()

    def cluster_labels(self) -> dict[int, int]:
        """Map client id -> ground-truth cluster id."""
        return {c.client_id: c.cluster_id for c in self.clients}

    def clients_in_cluster(self, cluster_id: int) -> list[ClientData]:
        return [c for c in self.clients if c.cluster_id == cluster_id]

    def global_test_set(self) -> tuple[np.ndarray, np.ndarray]:
        """Concatenation of every client's test data (for global metrics)."""
        xs = np.concatenate([c.x_test for c in self.clients], axis=0)
        ys = np.concatenate([c.y_test for c in self.clients], axis=0)
        return xs, ys

    def summary(self) -> dict:
        """Lightweight description used by experiment logs."""
        sizes = [c.n_train for c in self.clients]
        return {
            "name": self.name,
            "clients": self.num_clients,
            "classes": self.num_classes,
            "clusters": self.num_clusters,
            "train_samples": int(np.sum(sizes)),
            "min_client_train": int(np.min(sizes)),
            "max_client_train": int(np.max(sizes)),
        }
