"""The FedProx synthetic dataset (Li et al., "Federated Optimization in
Heterogeneous Networks").

``synthetic(alpha, beta)``: each client k draws a local softmax-regression
model ``W_k, b_k ~ N(u_k, 1)`` with ``u_k ~ N(0, alpha)`` (model
heterogeneity) and local features ``x ~ N(v_k, Sigma)`` with
``v_k[j] ~ N(B_k, 1)``, ``B_k ~ N(0, beta)`` (data heterogeneity);
``Sigma`` is diagonal with ``Sigma[j, j] = (j + 1) ** -1.2``.  Labels are
``argmax softmax(W_k x + b_k)``.  The paper compares DAG/FedAvg/FedProx on
``synthetic(0.5, 0.5)`` with 30 clients (Figures 10 and 11).
"""

from __future__ import annotations

import numpy as np

from repro.data.base import ClientData, FederatedDataset, train_test_split
from repro.utils.rng import ensure_rng

__all__ = ["make_fedprox_synthetic"]


def make_fedprox_synthetic(
    *,
    alpha: float = 0.5,
    beta: float = 0.5,
    num_clients: int = 30,
    dim: int = 60,
    num_classes: int = 10,
    mean_samples: int = 40,
    test_fraction: float = 0.1,
    seed: int | np.random.Generator = 0,
) -> FederatedDataset:
    """Generate ``synthetic(alpha, beta)`` with lognormal client sizes.

    Sample counts follow a lognormal law as in the reference
    implementation, rescaled so the mean client holds ``mean_samples``
    samples.  Clients have no ground-truth clustering (cluster_id = 0):
    heterogeneity is continuous, which is precisely why the dataset
    stresses FedAvg.
    """
    rng = ensure_rng(seed)
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    sigma_diag = np.array([(j + 1) ** -1.2 for j in range(dim)])
    sigma_scale = np.sqrt(sigma_diag)

    raw_sizes = rng.lognormal(mean=0.0, sigma=1.0, size=num_clients)
    sizes = np.maximum(
        10, (raw_sizes / raw_sizes.mean() * mean_samples).astype(int)
    )

    clients: list[ClientData] = []
    for client_id in range(num_clients):
        client_rng = ensure_rng(int(rng.integers(0, 2**62)))
        u_k = client_rng.normal(0.0, np.sqrt(alpha))
        b_big = client_rng.normal(0.0, np.sqrt(beta))
        weight = client_rng.normal(u_k, 1.0, size=(dim, num_classes))
        bias = client_rng.normal(u_k, 1.0, size=num_classes)
        v_k = client_rng.normal(b_big, 1.0, size=dim)

        n = int(sizes[client_id])
        x = v_k[None, :] + client_rng.normal(0.0, 1.0, size=(n, dim)) * sigma_scale
        logits = x @ weight + bias
        y = logits.argmax(axis=1).astype(np.int64)

        x_tr, y_tr, x_te, y_te = train_test_split(
            x, y, client_rng, test_fraction=test_fraction
        )
        clients.append(
            ClientData(
                client_id=client_id,
                x_train=x_tr,
                y_train=y_tr,
                x_test=x_te,
                y_test=y_te,
                cluster_id=0,
                metadata={"u_k": float(u_k), "B_k": float(b_big), "n": n},
            )
        )
    return FederatedDataset(
        name=f"fedprox-synthetic({alpha},{beta})",
        num_classes=num_classes,
        num_clusters=1,
        clients=clients,
    )
