"""A CIFAR-100-like procedural image dataset.

CIFAR-100 has 100 classes grouped into 20 superclasses; the paper uses the
superclasses as ground-truth clusters and allocates samples to 94 clients
with the Pachinko Allocation Method.  The offline substitute generates
small RGB texture images: classes within a superclass share a color
palette (so within-superclass generalization pays off) while each class
adds a distinctive oriented sinusoidal grating (so classes remain
separable).
"""

from __future__ import annotations

import numpy as np

from repro.data.base import ClientData, FederatedDataset, train_test_split
from repro.data.pachinko import pachinko_allocation
from repro.utils.rng import ensure_rng

__all__ = ["ClassTemplate", "make_cifar100_like", "default_hierarchy"]


def default_hierarchy(
    num_superclasses: int = 20, classes_per_superclass: int = 5
) -> dict[int, list[int]]:
    """The CIFAR-100 shape: superclass s owns classes [5s, 5s+5)."""
    return {
        s: list(
            range(s * classes_per_superclass, (s + 1) * classes_per_superclass)
        )
        for s in range(num_superclasses)
    }


class ClassTemplate:
    """Deterministic generative template for one image class."""

    def __init__(
        self,
        base_color: np.ndarray,
        frequency: float,
        orientation: float,
        phase: float,
        amplitude: float,
        image_size: int,
    ):
        self.base_color = base_color
        self.image_size = image_size
        yy, xx = np.mgrid[0:image_size, 0:image_size].astype(np.float64)
        wave_axis = xx * np.cos(orientation) + yy * np.sin(orientation)
        self.pattern = amplitude * np.sin(
            2.0 * np.pi * frequency * wave_axis / image_size + phase
        )

    def sample(self, rng: np.random.Generator, *, noise: float = 0.08) -> np.ndarray:
        """One (3, H, W) image: palette + grating + shift jitter + noise."""
        shift = int(rng.integers(0, self.image_size))
        rolled = np.roll(self.pattern, shift, axis=rng.integers(0, 2))
        img = self.base_color[:, None, None] + rolled[None, :, :]
        img = img + rng.normal(0.0, noise, size=img.shape)
        return np.clip(img, 0.0, 1.0)


def _build_templates(
    hierarchy: dict[int, list[int]], image_size: int, rng: np.random.Generator
) -> dict[int, ClassTemplate]:
    templates: dict[int, ClassTemplate] = {}
    for super_id in sorted(hierarchy):
        # Shared palette per superclass; classes perturb it slightly.
        palette = rng.uniform(0.15, 0.85, size=3)
        for cls in hierarchy[super_id]:
            color = np.clip(palette + rng.normal(0.0, 0.05, size=3), 0.0, 1.0)
            templates[cls] = ClassTemplate(
                base_color=color,
                frequency=float(rng.uniform(1.0, 4.0)),
                orientation=float(rng.uniform(0.0, np.pi)),
                phase=float(rng.uniform(0.0, 2.0 * np.pi)),
                amplitude=float(rng.uniform(0.25, 0.45)),
                image_size=image_size,
            )
    return templates


def make_cifar100_like(
    *,
    num_clients: int = 94,
    samples_per_client: int = 50,
    image_size: int = 16,
    num_superclasses: int = 20,
    classes_per_superclass: int = 5,
    alpha_super: float = 0.1,
    alpha_sub: float = 10.0,
    test_fraction: float = 0.1,
    seed: int | np.random.Generator = 0,
) -> FederatedDataset:
    """CIFAR-100-like federation with Pachinko client allocation.

    Clients receive mixtures over superclasses; the ground-truth cluster of
    a client is its *modal* superclass (ties broken at random), exactly the
    paper's analysis rule for CIFAR-100.
    """
    rng = ensure_rng(seed)
    hierarchy = default_hierarchy(num_superclasses, classes_per_superclass)
    templates = _build_templates(hierarchy, image_size, rng)
    num_classes = num_superclasses * classes_per_superclass

    # Finite per-class pools make the draws genuinely without replacement.
    pool_per_class = int(
        np.ceil(1.5 * num_clients * samples_per_client / num_classes)
    )
    class_pools = {cls: pool_per_class for cls in range(num_classes)}
    assignments = pachinko_allocation(
        hierarchy,
        class_pools,
        num_clients=num_clients,
        samples_per_client=samples_per_client,
        alpha_super=alpha_super,
        alpha_sub=alpha_sub,
        seed=rng,
    )

    superclass_of = {
        cls: sid for sid, members in hierarchy.items() for cls in members
    }
    clients: list[ClientData] = []
    for client_id, labels in enumerate(assignments):
        client_rng = ensure_rng(int(rng.integers(0, 2**62)))
        label_arr = np.array(labels, dtype=np.int64)
        images = np.stack(
            [templates[int(cls)].sample(client_rng) for cls in label_arr]
        )
        x_tr, y_tr, x_te, y_te = train_test_split(
            images, label_arr, client_rng, test_fraction=test_fraction
        )
        supers = np.array([superclass_of[int(c)] for c in label_arr])
        counts = np.bincount(supers, minlength=num_superclasses)
        top = np.flatnonzero(counts == counts.max())
        cluster_id = int(client_rng.choice(top))
        clients.append(
            ClientData(
                client_id=client_id,
                x_train=x_tr,
                y_train=y_tr,
                x_test=x_te,
                y_test=y_te,
                cluster_id=cluster_id,
                metadata={"superclass_counts": counts.tolist()},
            )
        )
    return FederatedDataset(
        name="cifar100-like",
        num_classes=num_classes,
        num_clusters=num_superclasses,
        clients=clients,
    )
