"""Figure 9 — client-local accuracy: FedAvg vs the Specializing DAG.

For each of the three datasets the paper plots the distribution of
per-client accuracies (grouped over 5 consecutive rounds): FedAvg
evaluates the aggregated global model on each active client's local data,
the DAG evaluates the locally trained/published model.  Expected shape:
on FMNIST-clustered the DAG is better and tighter (FedAvg can't
specialize); on Poets and CIFAR the two are comparable.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    build_dataset,
    dag_config_for,
    model_builder_for,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import FedAvgServer, TangleLearning

__all__ = ["run", "DATASETS", "group_distribution"]

DATASETS = ("fmnist-clustered", "poets", "cifar100")
GROUP = 5


def group_distribution(history, *, group: int = GROUP) -> list[dict]:
    """Boxplot-style stats of client accuracies per ``group`` rounds."""
    stats = []
    for start in range(0, len(history), group):
        chunk = history[start : start + group]
        values = [
            acc
            for record in chunk
            for acc in record.client_accuracy.values()
        ]
        if not values:
            continue
        arr = np.asarray(values)
        stats.append(
            {
                "rounds": [chunk[0].round_index, chunk[-1].round_index],
                "mean": float(arr.mean()),
                "std": float(arr.std()),
                "min": float(arr.min()),
                "q1": float(np.percentile(arr, 25)),
                "median": float(np.percentile(arr, 50)),
                "q3": float(np.percentile(arr, 75)),
                "max": float(arr.max()),
            }
        )
    return stats


def run(scale: Scale | None = None, *, seed: int = 0, datasets=DATASETS) -> dict:
    scale = scale or resolve_scale()
    result: dict = {"experiment": "fig9", "scale": scale.name, "datasets": {}}
    for name in datasets:
        dataset = build_dataset(name, scale, seed=seed)
        builder = model_builder_for(name, scale, dataset)
        train_config = training_config_for(name, scale)

        fedavg = FedAvgServer(
            dataset,
            builder,
            train_config,
            clients_per_round=scale.clients_per_round,
            seed=seed,
        )
        fedavg.run(scale.rounds)

        dag = TangleLearning(
            dataset,
            builder,
            train_config,
            dag_config_for(name, scale),
            clients_per_round=scale.clients_per_round,
            seed=seed,
        )
        dag.run(scale.rounds)

        result["datasets"][name] = {
            "fedavg": group_distribution(fedavg.history),
            "dag": group_distribution(dag.history),
        }
    return result
