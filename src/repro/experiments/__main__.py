"""Command-line entry point for the experiment suite.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig6 --scale smoke --seed 0
    python -m repro.experiments run table2 --scale default --out results/
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.io import save_result, write_series_csv
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.scale import SCALES, resolve_scale


#: list-valued result keys that are indices/metadata, not per-round series
_NON_SERIES_KEYS = {"seeds", "rounds", "metric_rounds", "active_counts", "values"}


def collect_numeric_series(result: dict, prefix: str = "") -> dict[str, list]:
    """Flatten nested dicts into {dotted.path: list-of-numbers} series."""
    series: dict[str, list] = {}
    for key, value in result.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            series.update(collect_numeric_series(value, path))
        elif (
            key not in _NON_SERIES_KEYS
            and isinstance(value, list)
            and value
            and all(isinstance(v, (int, float)) for v in value)
        ):
            series[path] = value
    return series


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    report_parser = subparsers.add_parser(
        "report", help="render a markdown report over saved results"
    )
    report_parser.add_argument(
        "--results", type=Path, default=Path("results"),
        help="directory of result JSON files",
    )
    report_parser.add_argument(
        "--out", type=Path, default=None,
        help="write the report here (default: stdout)",
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="profile (default: $REPRO_SCALE or smoke)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--out", type=Path, default=Path("results"),
        help="directory for the JSON result",
    )
    run_parser.add_argument(
        "--csv", action="store_true",
        help="additionally export per-round series as CSV (one file per "
        "series length, columns are dotted result paths)",
    )
    run_parser.add_argument(
        "--plot", action="store_true",
        help="additionally render per-round series as SVG line charts",
    )
    run_parser.add_argument(
        "--seeds", type=int, default=1,
        help="run this many seeds (0..N-1) and aggregate mean/std",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.command == "report":
        from repro.experiments.report import build_report

        report = build_report(args.results)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(report)
            print(f"report -> {args.out}")
        else:
            print(report)
        return 0

    scale = resolve_scale(args.scale)
    runner = get_experiment(args.experiment)
    started = time.perf_counter()
    if args.seeds > 1:
        from repro.experiments.multiseed import run_multiseed

        result = run_multiseed(
            args.experiment,
            seeds=[args.seed + i for i in range(args.seeds)],
            scale=scale,
        )
    else:
        result = runner(scale, seed=args.seed)
    result.pop("simulator", None)
    elapsed = time.perf_counter() - started
    result["elapsed_seconds"] = elapsed
    out_path = args.out / f"{args.experiment}-{scale.name}-seed{args.seed}.json"
    save_result(result, out_path)
    if args.csv:
        all_series = collect_numeric_series(result)
        by_length: dict[int, dict[str, list]] = {}
        for path, values in all_series.items():
            by_length.setdefault(len(values), {})[path] = values
        for length, group in sorted(by_length.items()):
            csv_path = out_path.with_name(f"{out_path.stem}-len{length}.csv")
            write_series_csv(group, csv_path)
            print(f"csv -> {csv_path}")
    if args.plot:
        from repro.experiments.plotting import save_line_chart

        all_series = collect_numeric_series(result)
        plottable = {k: v for k, v in all_series.items() if len(v) >= 2}
        by_length = {}
        for path, values in plottable.items():
            by_length.setdefault(len(values), {})[path] = values
        for length, group in sorted(by_length.items()):
            svg_path = out_path.with_name(f"{out_path.stem}-len{length}.svg")
            save_line_chart(
                group, svg_path,
                title=f"{args.experiment} [{scale.name}]",
            )
            print(f"svg -> {svg_path}")
    print(f"{args.experiment} [{scale.name}] finished in {elapsed:.1f}s -> {out_path}")
    print(json.dumps(_brief(result), indent=2, default=str))
    return 0


def _brief(result: dict, *, max_items: int = 6) -> dict:
    """A short console summary: scalars and truncated series heads."""
    brief = {}
    for key, value in result.items():
        if isinstance(value, list) and len(value) > max_items:
            brief[key] = value[:max_items] + ["..."]
        elif isinstance(value, dict):
            brief[key] = f"<dict with keys {sorted(value)[:8]}>"
        else:
            brief[key] = value
    return brief


if __name__ == "__main__":
    sys.exit(main())
