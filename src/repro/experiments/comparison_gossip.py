"""Gossip learning vs the specializing DAG (related-work comparison).

Gossip learning (Section 3.2 of the paper) is the other fully
decentralized baseline: peers merge models pairwise at random, with no
ledger.  Hegedűs et al. found gossip struggles on non-IID data; this
experiment reproduces that comparison on FMNIST-clustered, where the
DAG's accuracy-biased selection finds same-cluster partners that gossip's
uniform peer sampling cannot.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig, GossipLearning, TangleLearning

__all__ = ["run"]


def run(scale: Scale | None = None, *, seed: int = 0) -> dict:
    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-clustered", scale, seed=seed)
    builder = model_builder_for("fmnist-clustered", scale, dataset)
    train_config = training_config_for("fmnist-clustered", scale)

    gossip = GossipLearning(
        dataset, builder, train_config,
        clients_per_round=scale.clients_per_round, seed=seed,
    )
    gossip.run(scale.rounds)

    dag = TangleLearning(
        dataset, builder, train_config, DagConfig(alpha=10.0),
        clients_per_round=scale.clients_per_round, seed=seed,
    )
    dag.run(scale.rounds)

    def series(history):
        accuracy = [r.mean_accuracy for r in history]
        return {
            "accuracy": accuracy,
            "final_accuracy": float(np.mean(accuracy[-3:])),
            "final_spread": float(
                np.mean([r.accuracy_std for r in history[-3:]])
            ),
        }

    return {
        "experiment": "comparison-gossip",
        "scale": scale.name,
        "gossip": series(gossip.history),
        "dag": series(dag.history),
    }
