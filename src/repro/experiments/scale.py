"""Scale profiles for the experiment suite.

The paper's configuration (Table 1 plus Section 5.1 dataset sizes) is the
``paper`` profile.  Full-fidelity runs are CPU-days in pure numpy, so two
reduced profiles shrink rounds, client counts, sample counts, and model
widths while keeping every structural knob (cluster layout, class counts,
protocol parameters) intact.  Select via the ``REPRO_SCALE`` environment
variable or an explicit argument; the default is ``smoke``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Scale", "SCALES", "resolve_scale"]


@dataclass(frozen=True)
class Scale:
    """All size knobs for one experiment profile."""

    name: str
    rounds: int
    clients_per_round: int
    model_size: str  # "small" | "paper"
    # FMNIST-clustered
    fmnist_clients: int
    fmnist_samples: int
    fmnist_image_size: int
    fmnist_local_batches: int
    # Poets
    poets_clients: int
    poets_samples: int
    poets_seq_len: int
    poets_local_batches: int
    poets_learning_rate: float
    poets_momentum: float
    poets_normalization: str
    # CIFAR-100-like
    cifar_clients: int
    cifar_samples: int
    cifar_image_size: int
    cifar_superclasses: int
    cifar_local_batches: int
    cifar_local_epochs: int
    # FedProx synthetic
    fedprox_clients: int
    fedprox_mean_samples: int
    # analysis frequency for per-round community metrics
    measure_every: int
    # poisoning experiment rounds (clean phase / poisoned phase)
    poison_clean_rounds: int
    poison_attack_rounds: int


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        rounds=12,
        clients_per_round=6,
        model_size="small",
        fmnist_clients=9,
        fmnist_samples=40,
        fmnist_image_size=14,
        fmnist_local_batches=4,
        poets_clients=6,
        poets_samples=300,
        poets_seq_len=8,
        poets_local_batches=20,
        poets_learning_rate=0.5,
        poets_momentum=0.9,
        poets_normalization="dynamic",
        cifar_clients=12,
        cifar_samples=50,
        cifar_image_size=16,
        cifar_superclasses=6,
        cifar_local_batches=6,
        cifar_local_epochs=1,
        fedprox_clients=12,
        fedprox_mean_samples=40,
        measure_every=2,
        poison_clean_rounds=8,
        poison_attack_rounds=8,
    ),
    "default": Scale(
        name="default",
        rounds=30,
        clients_per_round=10,
        model_size="small",
        fmnist_clients=30,
        fmnist_samples=80,
        fmnist_image_size=14,
        fmnist_local_batches=8,
        poets_clients=12,
        poets_samples=500,
        poets_seq_len=12,
        poets_local_batches=20,
        poets_learning_rate=0.5,
        poets_momentum=0.9,
        poets_normalization="dynamic",
        cifar_clients=30,
        cifar_samples=60,
        cifar_image_size=16,
        cifar_superclasses=10,
        cifar_local_batches=10,
        cifar_local_epochs=2,
        fedprox_clients=30,
        fedprox_mean_samples=40,
        measure_every=3,
        poison_clean_rounds=20,
        poison_attack_rounds=20,
    ),
    "paper": Scale(
        name="paper",
        rounds=100,
        clients_per_round=10,
        model_size="paper",
        fmnist_clients=100,
        fmnist_samples=200,
        fmnist_image_size=28,
        fmnist_local_batches=10,
        poets_clients=20,
        poets_samples=1000,
        poets_seq_len=80,
        poets_local_batches=35,
        poets_learning_rate=0.8,
        poets_momentum=0.0,
        poets_normalization="standard",
        cifar_clients=94,
        cifar_samples=100,
        cifar_image_size=32,
        cifar_superclasses=20,
        cifar_local_batches=45,
        cifar_local_epochs=5,
        fedprox_clients=30,
        fedprox_mean_samples=100,
        measure_every=5,
        poison_clean_rounds=100,
        poison_attack_rounds=100,
    ),
}


def resolve_scale(name: str | None = None) -> Scale:
    """Resolve a profile by name, ``REPRO_SCALE``, or the smoke default."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "smoke")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None
