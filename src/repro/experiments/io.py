"""Result persistence: JSON (full result) and CSV (flat series)."""

from __future__ import annotations

import csv
import json
from pathlib import Path

__all__ = ["save_result", "write_series_csv"]


def save_result(result: dict, path: str | Path) -> Path:
    """Write an experiment result dict as pretty JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True, default=_coerce)
    return path


def write_series_csv(
    series: dict[str, list], path: str | Path, *, index_name: str = "round"
) -> Path:
    """Write equal-length named series as CSV columns with an index.

    ``series`` maps column name -> list of values; all lists must have the
    same length.
    """
    lengths = {len(v) for v in series.values()}
    if len(lengths) > 1:
        raise ValueError(f"series lengths differ: { {k: len(v) for k, v in series.items()} }")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = sorted(series)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([index_name, *names])
        length = lengths.pop() if lengths else 0
        for i in range(length):
            writer.writerow([i, *(series[name][i] for name in names)])
    return path


def _coerce(value):
    """JSON fallback for numpy scalars and sets."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, set):
        return sorted(value)
    raise TypeError(f"not JSON serializable: {type(value)}")
