"""Figure 6 — accuracy per round for alpha in {0.1, 1, 10, 100}.

FMNIST-clustered with the *standard* normalization (Eq. 1-2).  Expected
shape: higher alpha improves accuracy earlier; by the final round all
alphas approach the top accuracy (the task is solvable by a generalist).
"""

from __future__ import annotations

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    run_dag_with_metrics,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig

__all__ = ["run", "ALPHAS"]

ALPHAS = (0.1, 1.0, 10.0, 100.0)


def run(
    scale: Scale | None = None,
    *,
    seed: int = 0,
    alphas=ALPHAS,
    normalization: str = "standard",
    dataset_name: str = "fmnist-clustered",
) -> dict:
    scale = scale or resolve_scale()
    dataset = build_dataset(dataset_name, scale, seed=seed)
    builder = model_builder_for(dataset_name, scale, dataset)
    train_config = training_config_for(dataset_name, scale)

    result: dict = {
        "experiment": "fig6",
        "scale": scale.name,
        "normalization": normalization,
        "dataset": dataset_name,
        "alphas": {},
    }
    for alpha in alphas:
        outcome = run_dag_with_metrics(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=alpha, normalization=normalization),
            rounds=scale.rounds,
            clients_per_round=scale.clients_per_round,
            measure_every=scale.rounds,  # community metrics only at the end
            seed=seed,
        )
        result["alphas"][str(alpha)] = {
            "accuracy": outcome["accuracy"],
            "final_pureness": outcome["final"]["pureness"],
        }
    return result
