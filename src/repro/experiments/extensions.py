"""Experiments for the beyond-the-paper extensions.

- ``run_personalization``: the paper's future work ("training only some
  layers") — personal output layers grafted onto DAG-shared bodies,
  evaluated on the relaxed (mixed-data) FMNIST where a personal head can
  adapt to each client's blend.
- ``run_random_weight_attack``: the Section 4.4 threat model's *active*
  attacker publishing random weights, comparing how the accuracy-biased
  and uniform-random selectors absorb it.
- ``run_visibility_delay``: propagation delay — how stale views affect
  accuracy and specialization.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    run_dag_with_metrics,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig, TangleLearning
from repro.metrics import approval_pureness

__all__ = [
    "run_personalization",
    "run_random_weight_attack",
    "run_visibility_delay",
    "run_async_convergence",
    "run_aggregation_robustness",
]


def run_personalization(scale: Scale | None = None, *, seed: int = 0) -> dict:
    """Shared-everything vs personal head (last 2 parameter arrays)."""
    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-relaxed", scale, seed=seed)
    builder = model_builder_for("fmnist-relaxed", scale, dataset)
    train_config = training_config_for("fmnist-relaxed", scale)
    result: dict = {
        "experiment": "ablation-personalization",
        "scale": scale.name,
        "variants": {},
    }
    for label, personal in (("shared", 0), ("personal-head", 2)):
        outcome = run_dag_with_metrics(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=10.0, personal_params=personal),
            rounds=scale.rounds,
            clients_per_round=scale.clients_per_round,
            measure_every=scale.rounds,
            seed=seed,
        )
        result["variants"][label] = {
            "accuracy": outcome["accuracy"],
            "final_accuracy": float(np.mean(outcome["accuracy"][-3:])),
            "pureness": outcome["final"]["pureness"],
        }
    return result


def run_random_weight_attack(
    scale: Scale | None = None, *, seed: int = 0, attacker_fraction: float = 0.25
) -> dict:
    """Honest-client accuracy under active random-weight attackers."""
    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-by-writer", scale, seed=seed)
    builder = model_builder_for("fmnist-by-writer", scale, dataset)
    train_config = training_config_for("fmnist-by-writer", scale)
    n_attackers = max(1, int(round(dataset.num_clients * attacker_fraction)))
    attacker_ids = sorted(c.client_id for c in dataset.clients)[:n_attackers]

    result: dict = {
        "experiment": "attack-random-weights",
        "scale": scale.name,
        "attackers": attacker_ids,
        "variants": {},
    }
    for label, selector, attackers in (
        ("clean", "accuracy", None),
        ("attacked-accuracy", "accuracy", attacker_ids),
        ("attacked-random", "random", attacker_ids),
    ):
        sim = TangleLearning(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=10.0, selector=selector),
            clients_per_round=scale.clients_per_round,
            seed=seed,
            attackers={cid: "random_weights" for cid in attackers or []},
        )
        records = sim.run(scale.rounds)
        honest_accuracy = [r.mean_accuracy for r in records]
        malicious = sum(
            1 for t in sim.tangle.transactions() if t.tags.get("malicious")
        )
        result["variants"][label] = {
            "accuracy": honest_accuracy,
            "final_accuracy": float(np.nanmean(honest_accuracy[-3:])),
            "malicious_transactions": malicious,
        }
    return result


def run_visibility_delay(
    scale: Scale | None = None, *, seed: int = 0, delays: tuple[int, ...] = (0, 1, 3)
) -> dict:
    """Effect of propagation delay on accuracy and specialization."""
    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-clustered", scale, seed=seed)
    builder = model_builder_for("fmnist-clustered", scale, dataset)
    train_config = training_config_for("fmnist-clustered", scale)
    labels = dataset.cluster_labels()

    result: dict = {
        "experiment": "ablation-visibility-delay",
        "scale": scale.name,
        "variants": {},
    }
    for delay in delays:
        sim = TangleLearning(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=10.0, visibility_delay=delay),
            clients_per_round=scale.clients_per_round,
            seed=seed,
        )
        records = sim.run(scale.rounds)
        result["variants"][str(delay)] = {
            "accuracy": [r.mean_accuracy for r in records],
            "final_accuracy": float(np.mean([r.mean_accuracy for r in records[-3:]])),
            "pureness": approval_pureness(sim.tangle, labels),
        }
    return result


def run_async_convergence(
    scale: Scale | None = None, *, seed: int = 0, horizon: float | None = None
) -> dict:
    """Continuous-time simulation vs discrete rounds.

    Runs the event-driven simulator for a time horizon calibrated so the
    expected number of training cycles matches the round-based run
    (rounds x clients_per_round), then compares final accuracy and
    specialization.  The paper only introduces rounds "to be able to
    compare the performance of the DAG with centralized approaches"; this
    experiment verifies the protocol behaves equivalently without them.
    """
    from repro.fl import AsyncTangleLearning

    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-clustered", scale, seed=seed)
    builder = model_builder_for("fmnist-clustered", scale, dataset)
    train_config = training_config_for("fmnist-clustered", scale)
    labels = dataset.cluster_labels()

    sync = TangleLearning(
        dataset, builder, train_config, DagConfig(alpha=10.0),
        clients_per_round=scale.clients_per_round, seed=seed,
    )
    sync_records = sync.run(scale.rounds)

    total_cycles = scale.rounds * scale.clients_per_round
    # Each client cycles every (think + train) ~ 2.0 time units on average.
    if horizon is None:
        horizon = 2.0 * total_cycles / dataset.num_clients
    asynchronous = AsyncTangleLearning(
        dataset, builder, train_config, DagConfig(alpha=10.0), seed=seed,
        mean_think_time=1.0, mean_train_time=1.0, mean_propagation_delay=0.1,
    )
    events = asynchronous.run_until(horizon)

    return {
        "experiment": "async-convergence",
        "scale": scale.name,
        "sync": {
            "accuracy": [r.mean_accuracy for r in sync_records],
            "final_accuracy": float(
                np.mean([r.mean_accuracy for r in sync_records[-3:]])
            ),
            "pureness": approval_pureness(sync.tangle, labels),
            "transactions": len(sync.tangle) - 1,
        },
        "async": {
            "cycles": len(events),
            "timeline": asynchronous.accuracy_timeline(bucket=max(1.0, horizon / 10)),
            "final_accuracy": float(
                np.mean([e.accuracy for e in events[-10:]])
            ) if events else float("nan"),
            "pureness": approval_pureness(asynchronous.tangle, labels),
            "transactions": len(asynchronous.tangle) - 1,
        },
    }


def run_aggregation_robustness(
    scale: Scale | None = None, *, seed: int = 0
) -> dict:
    """Mean vs median parent aggregation under random-weight attackers.

    Tests whether merge-level filtering (coordinate median over three
    parents) adds anything on top of the walk-level filtering (accuracy
    bias).  Finding (documented in EXPERIMENTS.md): it does not — the
    coordinate median decorrelates jointly-trained weights and performs no
    better than the mean; the accuracy-biased walk is the protocol's
    effective defence.  The clean baseline is included for context.
    """
    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-by-writer", scale, seed=seed)
    builder = model_builder_for("fmnist-by-writer", scale, dataset)
    train_config = training_config_for("fmnist-by-writer", scale)
    n_attackers = max(1, dataset.num_clients // 4)
    attacker_ids = sorted(c.client_id for c in dataset.clients)[:n_attackers]

    result: dict = {
        "experiment": "ablation-aggregation",
        "scale": scale.name,
        "attackers": attacker_ids,
        "variants": {},
    }
    for label, aggregator, attacked in (
        ("clean-mean", "mean", False),
        ("mean", "mean", True),
        ("median", "median", True),
    ):
        sim = TangleLearning(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=10.0, num_tips=3, aggregator=aggregator),
            clients_per_round=scale.clients_per_round,
            seed=seed,
            attackers=(
                {cid: "random_weights" for cid in attacker_ids}
                if attacked
                else None
            ),
        )
        records = sim.run(scale.rounds)
        accuracy = [r.mean_accuracy for r in records]
        result["variants"][label] = {
            "accuracy": accuracy,
            "final_accuracy": float(np.nanmean(accuracy[-3:])),
        }
    return result
