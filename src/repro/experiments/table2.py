"""Table 2 — approval pureness after training on all three datasets.

Paper values: FMNIST-clustered 1.0 (base 0.33), Poets 0.95 (base 0.5),
CIFAR-100 0.51 (base 0.05).  Expected shape: pureness far above base for
every dataset; near-perfect for the fully clustered FMNIST, intermediate
for CIFAR (whose clients hold superclass mixtures).
"""

from __future__ import annotations

from repro.experiments.runner import (
    build_dataset,
    dag_config_for,
    model_builder_for,
    run_dag_with_metrics,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale

__all__ = ["run", "DATASETS"]

DATASETS = ("fmnist-clustered", "poets", "cifar100")

#: Approval pureness reported by the paper after 100 rounds.
PAPER_VALUES = {
    "fmnist-clustered": {"base": 0.33, "pureness": 1.0},
    "poets": {"base": 0.5, "pureness": 0.95},
    "cifar100": {"base": 0.05, "pureness": 0.51},
}


def run(scale: Scale | None = None, *, seed: int = 0, datasets=DATASETS) -> dict:
    scale = scale or resolve_scale()
    result: dict = {"experiment": "table2", "scale": scale.name, "rows": {}}
    for name in datasets:
        dataset = build_dataset(name, scale, seed=seed)
        builder = model_builder_for(name, scale, dataset)
        train_config = training_config_for(name, scale)
        outcome = run_dag_with_metrics(
            dataset,
            builder,
            train_config,
            dag_config_for(name, scale),
            rounds=scale.rounds,
            clients_per_round=scale.clients_per_round,
            measure_every=scale.rounds,
            seed=seed,
        )
        result["rows"][name] = {
            "num_clusters": dataset.num_clusters,
            "base_pureness": outcome["final"]["base_pureness"],
            "pureness": outcome["final"]["pureness"],
            # Pureness over the converged second half of the run; at the
            # paper's 100 rounds whole-DAG and late pureness coincide,
            # at smoke scale the warm-up would otherwise dominate.
            "late_pureness": outcome["final"]["late_pureness"],
            "paper": PAPER_VALUES.get(name),
        }
    return result
