"""Markdown report generation from saved experiment results.

``build_report`` scans a results directory for the JSON files the CLI
writes and renders one markdown section per experiment with its headline
numbers, so EXPERIMENTS.md-style summaries can be regenerated after any
re-run::

    python -m repro.experiments run table2
    python -c "from repro.experiments.report import build_report; \\
               print(build_report('results'))"
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = ["build_report", "summarize_result", "SUMMARIZERS"]


def _late_mean(series: list[float], k: int = 3) -> float:
    values = [v for v in series[-k:] if isinstance(v, (int, float))]
    return float(np.nanmean(values)) if values else float("nan")


def _series(maybe_aggregated) -> list[float]:
    """Accept both raw series and multiseed {mean: [...]} aggregates."""
    if isinstance(maybe_aggregated, dict) and "mean" in maybe_aggregated:
        return maybe_aggregated["mean"]
    return maybe_aggregated


def _scalar(maybe_aggregated) -> float:
    if isinstance(maybe_aggregated, dict) and "mean" in maybe_aggregated:
        return float(maybe_aggregated["mean"])
    return float(maybe_aggregated)


def _summarize_table2(result: dict) -> list[str]:
    lines = ["| dataset | base | pureness | late pureness |", "|---|---|---|---|"]
    for name, row in sorted(result["rows"].items()):
        lines.append(
            f"| {name} | {_scalar(row['base_pureness']):.3f} "
            f"| {_scalar(row['pureness']):.3f} "
            f"| {_scalar(row['late_pureness']):.3f} |"
        )
    return lines


def _summarize_alpha_sweep(result: dict) -> list[str]:
    lines = ["| alpha | late accuracy | final pureness |", "|---|---|---|"]
    for alpha, data in sorted(result["alphas"].items(), key=lambda kv: float(kv[0])):
        lines.append(
            f"| {alpha} | {_late_mean(_series(data['accuracy'])):.3f} "
            f"| {_scalar(data.get('final_pureness', float('nan'))):.3f} |"
        )
    return lines


def _summarize_fig5(result: dict) -> list[str]:
    lines = [
        "| alpha | modularity | partitions | misclassification |",
        "|---|---|---|---|",
    ]
    for alpha, data in sorted(result["alphas"].items(), key=lambda kv: float(kv[0])):
        final = data["final"]
        lines.append(
            f"| {alpha} | {_scalar(final['modularity']):.3f} "
            f"| {_scalar(final['num_partitions']):.0f} "
            f"| {_scalar(final['misclassification']):.3f} |"
        )
    return lines


def _summarize_fig9(result: dict) -> list[str]:
    lines = [
        "| dataset | FedAvg (mean ± std) | DAG (mean ± std) |",
        "|---|---|---|",
    ]
    for name, data in sorted(result["datasets"].items()):
        fed = data["fedavg"][-1]
        dag = data["dag"][-1]
        lines.append(
            f"| {name} | {_scalar(fed['mean']):.3f} ± {_scalar(fed['std']):.3f} "
            f"| {_scalar(dag['mean']):.3f} ± {_scalar(dag['std']):.3f} |"
        )
    return lines


def _summarize_fig10_11(result: dict) -> list[str]:
    lines = ["| algorithm | late accuracy | late loss |", "|---|---|---|"]
    for algo in ("fedavg", "fedprox", "dag"):
        data = result[algo]
        lines.append(
            f"| {algo} | {_late_mean(_series(data['accuracy'])):.3f} "
            f"| {_late_mean(_series(data['loss'])):.3f} |"
        )
    return lines


def _summarize_poisoning(result: dict) -> list[str]:
    lines = [
        "| scenario | late flipped rate | late approved poisoned |",
        "|---|---|---|",
    ]
    for label, data in sorted(result["scenarios"].items()):
        lines.append(
            f"| {label} | {_late_mean(_series(data['flipped_rate'])):.3f} "
            f"| {_late_mean(_series(data['approved_poisoned'])):.1f} |"
        )
    return lines


def _summarize_fig15(result: dict) -> list[str]:
    lines = [
        "| active clients | mean walk duration [s] | mean evaluations |",
        "|---|---|---|",
    ]
    for active, data in sorted(result["runs"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"| {active} | {_scalar(data['mean_duration']):.4f} "
            f"| {_scalar(data['mean_evaluations']):.1f} |"
        )
    return lines


def _summarize_variants(result: dict) -> list[str]:
    lines = ["| variant | headline values |", "|---|---|"]
    for label, data in sorted(result["variants"].items()):
        scalars = []
        for key, value in data.items():
            if isinstance(value, (int, float)):
                scalars.append(f"{key}={value:.3f}")
            elif isinstance(value, dict) and "mean" in value and isinstance(
                value["mean"], (int, float)
            ):
                scalars.append(f"{key}={value['mean']:.3f}")
        lines.append(f"| {label} | {', '.join(scalars) or '-'} |")
    return lines


def _summarize_async(result: dict) -> list[str]:
    sync, asynchronous = result["sync"], result["async"]
    return [
        "| mode | final accuracy | pureness | transactions |",
        "|---|---|---|---|",
        f"| rounds | {_scalar(sync['final_accuracy']):.3f} "
        f"| {_scalar(sync['pureness']):.3f} | {_scalar(sync['transactions']):.0f} |",
        f"| continuous | {_scalar(asynchronous['final_accuracy']):.3f} "
        f"| {_scalar(asynchronous['pureness']):.3f} "
        f"| {_scalar(asynchronous['transactions']):.0f} |",
    ]


def _summarize_gossip(result: dict) -> list[str]:
    return [
        "| algorithm | final accuracy | client spread |",
        "|---|---|---|",
        f"| gossip | {_scalar(result['gossip']['final_accuracy']):.3f} "
        f"| {_scalar(result['gossip']['final_spread']):.3f} |",
        f"| dag | {_scalar(result['dag']['final_accuracy']):.3f} "
        f"| {_scalar(result['dag']['final_spread']):.3f} |",
    ]


def _summarize_service_demo(result: dict) -> list[str]:
    lines = [
        "| phase | rps | ok | degraded | quarantined | restarts |",
        "|---|---|---|---|---|---|",
    ]
    for phase in ("calm", "chaos"):
        data = result[phase]
        lines.append(
            f"| {phase} | {data['requests_per_s']:.1f} "
            f"| {data['outcomes'].get('ok', 0)} "
            f"| {data['ladder']['degraded']} "
            f"| {data.get('quarantined', 0)} "
            f"| {data['coalescer']['restarts']} |"
        )
    lines.append(f"\nfinal tangle size: {result['tangle_size']}")
    return lines


SUMMARIZERS: dict[str, Callable[[dict], list[str]]] = {
    "table2": _summarize_table2,
    "fig5": _summarize_fig5,
    "fig6": _summarize_alpha_sweep,
    "fig7": _summarize_alpha_sweep,
    "fig8": _summarize_alpha_sweep,
    "fig9": _summarize_fig9,
    "fig10_11": _summarize_fig10_11,
    "fig12_13_14": _summarize_poisoning,
    "fig15": _summarize_fig15,
    "ablation-tip-selection": _summarize_variants,
    "ablation-publish-gate": _summarize_variants,
    "ablation-num-tips": _summarize_variants,
    "ablation-walk-depth": _summarize_variants,
    "ablation-personalization": _summarize_variants,
    "ablation-visibility-delay": _summarize_variants,
    "ablation-aggregation": _summarize_variants,
    "attack-random-weights": _summarize_variants,
    "async-convergence": _summarize_async,
    "comparison-gossip": _summarize_gossip,
    "service-demo": _summarize_service_demo,
}


def summarize_result(result: dict) -> list[str]:
    """Markdown lines summarizing one result dict."""
    experiment = result.get("experiment", "")
    summarize = SUMMARIZERS.get(experiment)
    if summarize is None:
        return [f"(no summarizer for experiment {experiment!r})"]
    return summarize(result)


def build_report(results_dir: str | Path, *, title: str = "Measured results") -> str:
    """Render a markdown report over every result JSON in a directory."""
    results_dir = Path(results_dir)
    paths = sorted(results_dir.glob("*.json"))
    if not paths:
        raise FileNotFoundError(f"no result JSON files in {results_dir}")
    sections = [f"# {title}", ""]
    for path in paths:
        with open(path) as handle:
            result = json.load(handle)
        if "experiment" not in result:
            continue
        scale = result.get("scale", "?")
        seeds = result.get("seeds")
        seed_note = f", seeds {seeds}" if seeds else ""
        sections.append(f"## {result['experiment']} (scale {scale}{seed_note})")
        sections.append("")
        sections.extend(summarize_result(result))
        sections.append("")
    return "\n".join(sections)
