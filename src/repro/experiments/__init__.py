"""Experiment harness: one module per table/figure of the paper.

Every experiment is a function ``run(scale, seed=...) -> dict`` returning
plain JSON-serializable series, registered in
:data:`repro.experiments.registry.EXPERIMENTS`.  The ``scale`` profile
(``smoke``/``default``/``paper``) trades fidelity for runtime; shapes are
expected to hold at every scale, absolute numbers only at ``paper``.

Run from the command line::

    python -m repro.experiments run fig6 --scale smoke
    python -m repro.experiments list
"""

from repro.experiments.scale import Scale, SCALES, resolve_scale
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.io import save_result
from repro.experiments.multiseed import run_multiseed
from repro.experiments.plotting import line_chart, save_line_chart

__all__ = [
    "Scale",
    "SCALES",
    "resolve_scale",
    "EXPERIMENTS",
    "get_experiment",
    "save_result",
    "run_multiseed",
    "line_chart",
    "save_line_chart",
]
