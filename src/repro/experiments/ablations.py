"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each ablation isolates one protocol
ingredient of the specializing DAG and reports its effect on accuracy and
approval pureness on FMNIST-clustered.
"""

from __future__ import annotations

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    run_dag_with_metrics,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig

__all__ = [
    "run_tip_selection",
    "run_publish_gate",
    "run_num_tips",
    "run_walk_depth",
]


def _run_once(scale: Scale, dag_config: DagConfig, seed: int) -> dict:
    dataset = build_dataset("fmnist-clustered", scale, seed=seed)
    builder = model_builder_for("fmnist-clustered", scale, dataset)
    train_config = training_config_for("fmnist-clustered", scale)
    outcome = run_dag_with_metrics(
        dataset,
        builder,
        train_config,
        dag_config,
        rounds=scale.rounds,
        clients_per_round=scale.clients_per_round,
        measure_every=scale.rounds,
        seed=seed,
    )
    simulator = outcome["simulator"]
    return {
        "accuracy": outcome["accuracy"],
        "final_accuracy": outcome["accuracy"][-1],
        "pureness": outcome["final"]["pureness"],
        "modularity": outcome["final"]["modularity"],
        "transactions": len(simulator.tangle) - 1,
    }


def run_tip_selection(scale: Scale | None = None, *, seed: int = 0) -> dict:
    """Accuracy-biased vs cumulative-weight vs uniform-random selection."""
    scale = scale or resolve_scale()
    result = {"experiment": "ablation-tip-selection", "scale": scale.name, "variants": {}}
    for selector in ("accuracy", "weighted", "random"):
        result["variants"][selector] = _run_once(
            scale, DagConfig(alpha=10.0, selector=selector), seed
        )
    return result


def run_publish_gate(scale: Scale | None = None, *, seed: int = 0) -> dict:
    """With vs without the publish-only-if-not-worse rule."""
    scale = scale or resolve_scale()
    result = {"experiment": "ablation-publish-gate", "scale": scale.name, "variants": {}}
    for gate in (True, False):
        result["variants"]["gated" if gate else "ungated"] = _run_once(
            scale, DagConfig(alpha=10.0, publish_gate=gate), seed
        )
    return result


def run_num_tips(scale: Scale | None = None, *, seed: int = 0) -> dict:
    """Number of approved tips per transaction: 1, 2 (paper), 3."""
    scale = scale or resolve_scale()
    result = {"experiment": "ablation-num-tips", "scale": scale.name, "variants": {}}
    for k in (1, 2, 3):
        result["variants"][str(k)] = _run_once(
            scale, DagConfig(alpha=10.0, num_tips=k), seed
        )
    return result


def run_walk_depth(scale: Scale | None = None, *, seed: int = 0) -> dict:
    """Walk-start depth window: from-tips vs shallow vs the paper's 15-25."""
    scale = scale or resolve_scale()
    result = {"experiment": "ablation-walk-depth", "scale": scale.name, "variants": {}}
    for label, window in (("tips", (0, 0)), ("shallow", (5, 10)), ("paper", (15, 25))):
        result["variants"][label] = _run_once(
            scale, DagConfig(alpha=10.0, depth_range=window), seed
        )
    return result
