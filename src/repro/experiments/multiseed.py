"""Multi-seed experiment aggregation.

Single-seed results of a stochastic protocol are anecdotes; this module
re-runs an experiment across seeds and aggregates every numeric leaf of
the result tree into ``{mean, std, min, max, values}``.  Numeric *series*
(lists of numbers) are aggregated element-wise into mean/std series, so
downstream plotting gets shaded-band data for free.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import get_experiment
from repro.experiments.scale import Scale, resolve_scale

__all__ = ["run_multiseed", "aggregate_results"]


def run_multiseed(
    experiment_id: str,
    *,
    seeds: list[int] | int = 3,
    scale: Scale | None = None,
) -> dict:
    """Run a registered experiment for several seeds and aggregate.

    ``seeds`` is either an explicit list or a count (0..n-1).
    """
    scale = scale or resolve_scale()
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError("need at least one seed")
        seed_list = list(range(seeds))
    else:
        seed_list = list(seeds)
        if not seed_list:
            raise ValueError("need at least one seed")
    runner = get_experiment(experiment_id)
    results = []
    for seed in seed_list:
        result = runner(scale, seed=seed)
        result.pop("simulator", None)
        results.append(result)
    aggregated = aggregate_results(results)
    aggregated["experiment"] = experiment_id
    aggregated["scale"] = scale.name
    aggregated["seeds"] = seed_list
    return aggregated


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_numeric_list(value) -> bool:
    return (
        isinstance(value, list) and bool(value) and all(_is_number(v) for v in value)
    )


def aggregate_results(results: list[dict]) -> dict:
    """Merge structurally identical result dicts across seeds.

    Numeric leaves become ``{mean, std, min, max, values}``; numeric
    series become ``{mean: [...], std: [...]}`` (element-wise, truncated
    to the shortest run); non-numeric leaves are kept from the first
    result when identical everywhere, else collected under ``values``.
    """
    if not results:
        raise ValueError("no results to aggregate")
    first = results[0]
    if any(set(r.keys()) != set(first.keys()) for r in results[1:]):
        raise ValueError("results have differing structure")

    merged: dict = {}
    for key in first:
        values = [r[key] for r in results]
        if all(isinstance(v, dict) for v in values):
            merged[key] = aggregate_results(values)
        elif all(_is_number(v) for v in values):
            arr = np.asarray(values, dtype=np.float64)
            merged[key] = {
                "mean": float(np.nanmean(arr)),
                "std": float(np.nanstd(arr)),
                "min": float(np.nanmin(arr)),
                "max": float(np.nanmax(arr)),
                "values": [float(v) for v in arr],
            }
        elif all(_is_numeric_list(v) for v in values):
            length = min(len(v) for v in values)
            arr = np.asarray([v[:length] for v in values], dtype=np.float64)
            merged[key] = {
                "mean": [float(x) for x in np.nanmean(arr, axis=0)],
                "std": [float(x) for x in np.nanstd(arr, axis=0)],
            }
        elif all(v == values[0] for v in values[1:]) or len(values) == 1:
            merged[key] = values[0]
        else:
            merged[key] = {"values": values}
    return merged
