"""Dependency-free SVG line charts for experiment results.

matplotlib is not available in the reproduction environment, so this
module renders the per-round series the experiments emit as standalone
SVG files — enough to eyeball every figure of the paper.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["line_chart", "save_line_chart"]

_PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
]


def _ticks(low: float, high: float, count: int = 5) -> list[float]:
    if high <= low:
        high = low + 1.0
    step = (high - low) / (count - 1)
    return [low + i * step for i in range(count)]


def line_chart(
    series: dict[str, list[float]],
    *,
    title: str = "",
    x_label: str = "round",
    y_label: str = "value",
    width: int = 640,
    height: int = 400,
) -> str:
    """Render named series as an SVG string.

    All series share the x-axis 0..len-1; y-limits are fitted to the
    data.  NaNs break the polyline (gaps), matching how the experiments
    report missing rounds.
    """
    if not series:
        raise ValueError("no series to plot")
    margin_left, margin_right, margin_top, margin_bottom = 60, 20, 40, 45
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    finite = [
        v
        for values in series.values()
        for v in values
        if isinstance(v, (int, float)) and v == v
    ]
    if not finite:
        raise ValueError("series contain no finite values")
    y_min, y_max = min(finite), max(finite)
    if y_max == y_min:
        y_max = y_min + 1.0
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad
    x_max = max(len(v) for v in series.values()) - 1
    x_max = max(x_max, 1)

    def sx(x: float) -> float:
        return margin_left + plot_w * x / x_max

    def sy(y: float) -> float:
        return margin_top + plot_h * (1.0 - (y - y_min) / (y_max - y_min))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{title}</text>',
    ]
    # Axes and grid.
    for tick in _ticks(y_min + pad, y_max - pad):
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" x2="{width - margin_right}" '
            f'y2="{y:.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{tick:.2f}</text>'
        )
    for tick in _ticks(0, x_max):
        x = sx(tick)
        parts.append(
            f'<text x="{x:.1f}" y="{height - margin_bottom + 16}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="10">{tick:.0f}</text>'
        )
    parts.append(
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333333"/>'
    )
    parts.append(
        f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12">{x_label}</text>'
    )
    parts.append(
        f'<text x="14" y="{height / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 14 {height / 2})">{y_label}</text>'
    )

    # Series.
    for index, (name, values) in enumerate(sorted(series.items())):
        color = _PALETTE[index % len(_PALETTE)]
        segments: list[list[str]] = [[]]
        for x, y in enumerate(values):
            if not isinstance(y, (int, float)) or y != y:  # NaN breaks line
                if segments[-1]:
                    segments.append([])
                continue
            segments[-1].append(f"{sx(x):.1f},{sy(y):.1f}")
        for segment in segments:
            if len(segment) >= 2:
                parts.append(
                    f'<polyline points="{" ".join(segment)}" fill="none" '
                    f'stroke="{color}" stroke-width="1.8"/>'
                )
        legend_y = margin_top + 14 * index + 8
        parts.append(
            f'<rect x="{width - margin_right - 130}" y="{legend_y - 8}" '
            f'width="10" height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{width - margin_right - 116}" y="{legend_y + 1}" '
            f'font-family="sans-serif" font-size="10">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_line_chart(
    series: dict[str, list[float]], path: str | Path, **kwargs
) -> Path:
    """Write an SVG chart to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(line_chart(series, **kwargs))
    return path
