"""Figure 5 — choosing alpha: modularity, #partitions, misclassification.

The paper sweeps alpha over {1, 10, 100} on FMNIST-clustered and tracks
the three ``G_clients`` metrics per round.  Expected shape: alpha=10
balances best (rising modularity, ~3 partitions, misclassification -> 0);
alpha=1 degrades modularity and misclassifies heavily; alpha=100 keeps
modularity high but fragments into too many partitions.
"""

from __future__ import annotations

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    run_dag_with_metrics,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig

__all__ = ["run", "ALPHAS"]

ALPHAS = (1.0, 10.0, 100.0)


def run(scale: Scale | None = None, *, seed: int = 0, alphas=ALPHAS) -> dict:
    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-clustered", scale, seed=seed)
    builder = model_builder_for("fmnist-clustered", scale, dataset)
    train_config = training_config_for("fmnist-clustered", scale)

    result: dict = {"experiment": "fig5", "scale": scale.name, "alphas": {}}
    for alpha in alphas:
        outcome = run_dag_with_metrics(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=alpha),
            rounds=scale.rounds,
            clients_per_round=scale.clients_per_round,
            measure_every=scale.measure_every,
            seed=seed,
        )
        result["alphas"][str(alpha)] = {
            "metric_rounds": outcome["metric_rounds"],
            "modularity": outcome["modularity"],
            "num_partitions": outcome["num_partitions"],
            "misclassification": outcome["misclassification"],
            "final": outcome["final"],
        }
    return result
