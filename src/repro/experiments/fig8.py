"""Figure 8 — the relaxed FMNIST-clustered dataset.

Each cluster holds 15-20 % foreign-cluster samples.  Expected shape: low
alpha catches up faster than on the fully clustered data (generalization
now pays), high alpha improves slightly slower; the overall alpha
ordering persists but the effect weakens.
"""

from __future__ import annotations

from repro.experiments import fig6
from repro.experiments.scale import Scale, resolve_scale

__all__ = ["run", "ALPHAS"]

ALPHAS = fig6.ALPHAS


def run(scale: Scale | None = None, *, seed: int = 0, alphas=ALPHAS) -> dict:
    scale = scale or resolve_scale()
    result = fig6.run(
        scale, seed=seed, alphas=alphas, dataset_name="fmnist-relaxed"
    )
    result["experiment"] = "fig8"
    return result
