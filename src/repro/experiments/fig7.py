"""Figure 7 — accuracy per round with the dynamic normalization (Eq. 3).

Same sweep as Figure 6 but using ``normalized*`` (spread-scaled).  The
paper reports a slight improvement for alpha = 1, mirrored by a higher
approval pureness (0.51 dynamic vs 0.40 standard).
"""

from __future__ import annotations

from repro.experiments import fig6
from repro.experiments.scale import Scale, resolve_scale

__all__ = ["run", "ALPHAS"]

ALPHAS = fig6.ALPHAS


def run(scale: Scale | None = None, *, seed: int = 0, alphas=ALPHAS) -> dict:
    scale = scale or resolve_scale()
    result = fig6.run(scale, seed=seed, alphas=alphas, normalization="dynamic")
    result["experiment"] = "fig7"
    return result
