"""Shared experiment plumbing: datasets, models, and simulation loops."""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Callable

import numpy as np

from repro.data import (
    make_cifar100_like,
    make_fedprox_synthetic,
    make_fmnist_by_writer,
    make_fmnist_clustered,
    make_poets,
)
from repro.data.base import FederatedDataset
from repro.fl import DagConfig, TangleLearning, TrainingConfig, table1_config
from repro.metrics import analyze_specialization, approval_pureness
from repro.nn import zoo
from repro.nn.model import Classifier
from repro.experiments.scale import Scale

__all__ = [
    "build_dataset",
    "model_builder_for",
    "training_config_for",
    "dag_config_for",
    "run_dag_with_metrics",
    "run_async_dag_with_metrics",
    "accuracy_series",
]

ModelBuilder = Callable[[np.random.Generator], Classifier]


def build_dataset(name: str, scale: Scale, *, seed: int = 0, **overrides) -> FederatedDataset:
    """Instantiate one of the paper's datasets at the given scale.

    ``name`` is one of ``fmnist-clustered``, ``fmnist-relaxed``,
    ``fmnist-by-writer``, ``poets``, ``cifar100``, ``fedprox-synthetic``.
    """
    if name == "fmnist-clustered":
        return make_fmnist_clustered(
            num_clients=overrides.pop("num_clients", scale.fmnist_clients),
            samples_per_client=scale.fmnist_samples,
            image_size=scale.fmnist_image_size,
            seed=seed,
            **overrides,
        )
    if name == "fmnist-relaxed":
        return make_fmnist_clustered(
            num_clients=overrides.pop("num_clients", scale.fmnist_clients),
            samples_per_client=scale.fmnist_samples,
            image_size=scale.fmnist_image_size,
            foreign_fraction=(0.15, 0.20),
            seed=seed,
            **overrides,
        )
    if name == "fmnist-by-writer":
        return make_fmnist_by_writer(
            num_clients=overrides.pop("num_clients", scale.fmnist_clients),
            samples_per_client=scale.fmnist_samples,
            image_size=scale.fmnist_image_size,
            seed=seed,
            **overrides,
        )
    if name == "poets":
        return make_poets(
            num_clients=overrides.pop("num_clients", scale.poets_clients),
            samples_per_client=scale.poets_samples,
            seq_len=scale.poets_seq_len,
            seed=seed,
            **overrides,
        )
    if name == "cifar100":
        return make_cifar100_like(
            num_clients=overrides.pop("num_clients", scale.cifar_clients),
            samples_per_client=scale.cifar_samples,
            image_size=scale.cifar_image_size,
            num_superclasses=scale.cifar_superclasses,
            seed=seed,
            **overrides,
        )
    if name == "fedprox-synthetic":
        return make_fedprox_synthetic(
            num_clients=overrides.pop("num_clients", scale.fedprox_clients),
            mean_samples=scale.fedprox_mean_samples,
            seed=seed,
            **overrides,
        )
    raise ValueError(f"unknown dataset {name!r}")


def model_builder_for(name: str, scale: Scale, dataset: FederatedDataset) -> ModelBuilder:
    """A model builder appropriate for a dataset at a scale."""
    if name.startswith("fmnist"):
        return lambda rng: zoo.build_fmnist_cnn(
            rng, image_size=scale.fmnist_image_size, size=scale.model_size
        )
    if name == "poets":
        return lambda rng: zoo.build_poets_lstm(
            rng, vocab_size=dataset.num_classes, size=scale.model_size
        )
    if name == "cifar100":
        return lambda rng: zoo.build_cifar_cnn(
            rng,
            image_size=scale.cifar_image_size,
            num_classes=dataset.num_classes,
            size=scale.model_size,
        )
    if name == "fedprox-synthetic":
        return lambda rng: zoo.build_logistic_regression(rng)
    raise ValueError(f"unknown dataset {name!r}")


def training_config_for(name: str, scale: Scale) -> TrainingConfig:
    """Table 1 hyperparameters, with batch budgets scaled to the profile."""
    if name.startswith("fmnist"):
        base = table1_config("fmnist-clustered")
        return base.scaled(local_batches=scale.fmnist_local_batches)
    if name == "poets":
        base = table1_config("poets")
        # Small-scale LSTMs need momentum to differentiate languages within
        # few rounds; the paper profile keeps Table 1's plain SGD(0.8).
        return base.scaled(
            local_batches=scale.poets_local_batches,
            learning_rate=scale.poets_learning_rate,
            momentum=scale.poets_momentum,
        )
    if name == "cifar100":
        base = table1_config("cifar100")
        return base.scaled(
            local_batches=scale.cifar_local_batches,
            local_epochs=scale.cifar_local_epochs,
        )
    if name == "fedprox-synthetic":
        return TrainingConfig(
            local_epochs=1, local_batches=10, batch_size=10, learning_rate=0.05
        )
    raise ValueError(f"unknown dataset {name!r}")


def dag_config_for(name: str, scale: Scale, **overrides) -> DagConfig:
    """The default protocol configuration for a dataset at a scale.

    Poets at reduced scales uses the dynamic (Eq. 3) normalization: the
    language-accuracy gaps of small LSTMs over few rounds are exactly the
    small-difference regime that normalization was designed for.  The
    paper profile keeps the standard normalization.
    """
    if name == "poets" and "normalization" not in overrides:
        overrides["normalization"] = scale.poets_normalization
    overrides.setdefault("alpha", 10.0)
    return DagConfig(**overrides)


def run_dag_with_metrics(
    dataset: FederatedDataset,
    model_builder: ModelBuilder,
    train_config: TrainingConfig,
    dag_config: DagConfig,
    *,
    rounds: int,
    clients_per_round: int,
    measure_every: int = 1,
    seed: int = 0,
    parallelism: int | str | None = None,
    walk_engine: bool | None = None,
) -> dict:
    """Run the DAG simulator, tracking specialization metrics over time.

    Returns a dict with per-round accuracy/loss series and, every
    ``measure_every`` rounds, the Section 4.3 community metrics.

    ``parallelism`` (when given) overrides ``dag_config.parallelism`` —
    the round-execution substrate knob: 1 serial, n > 1 a pool of n
    worker processes, 0 machine-sized, ``"auto"`` decided per round.
    Results are identical across settings for a fixed seed.

    ``walk_engine`` (when given) overrides ``dag_config.walk_engine`` —
    the lockstep multi-walk engine knob.  Tip distributions and
    evaluation accounting are unchanged, but individual draws differ
    from the sequential walker, so series are deterministic per seed
    yet not bit-comparable across the two settings.
    """
    if parallelism is not None:
        dag_config = replace(dag_config, parallelism=parallelism)
    if walk_engine is not None:
        dag_config = replace(dag_config, walk_engine=walk_engine)
    sim = TangleLearning(
        dataset,
        model_builder,
        train_config,
        dag_config,
        clients_per_round=clients_per_round,
        seed=seed,
    )
    labels = dataset.cluster_labels()
    accuracy, loss, reference_acc = [], [], []
    metric_rounds, modularity_series, partitions_series = [], [], []
    misclassification_series, pureness_series = [], []
    try:
        for round_index in range(rounds):
            record = sim.run_round()
            accuracy.append(record.mean_accuracy)
            loss.append(record.mean_loss)
            reference_acc.append(
                float(np.mean(list(record.reference_accuracy.values())))
            )
            if (round_index + 1) % measure_every == 0 or round_index == rounds - 1:
                report = analyze_specialization(sim.tangle, labels, seed=seed)
                metric_rounds.append(round_index)
                modularity_series.append(report.modularity)
                partitions_series.append(report.num_partitions)
                misclassification_series.append(report.misclassification)
                pureness_series.append(report.pureness)
        final = analyze_specialization(sim.tangle, labels, seed=seed)
        late_pureness = approval_pureness(
            sim.tangle, labels, since_round=rounds // 2
        )
    finally:
        sim.close()  # release worker processes; pools are recreated on reuse
    return {
        "accuracy": accuracy,
        "loss": loss,
        "reference_accuracy": reference_acc,
        "metric_rounds": metric_rounds,
        "modularity": modularity_series,
        "num_partitions": partitions_series,
        "misclassification": misclassification_series,
        "pureness": pureness_series,
        "final": {
            "modularity": final.modularity,
            "num_partitions": final.num_partitions,
            "misclassification": final.misclassification,
            "pureness": final.pureness,
            "late_pureness": late_pureness,
            "base_pureness": final.base_pureness,
        },
        "simulator": sim,
    }


def run_async_dag_with_metrics(
    dataset: FederatedDataset,
    model_builder: ModelBuilder,
    train_config: TrainingConfig,
    dag_config: DagConfig,
    *,
    horizon: float,
    sim_config=None,
    measure_every: float | None = None,
    seed: int = 0,
) -> dict:
    """Run the event-driven simulator to ``horizon``, tracking metrics.

    The asynchronous counterpart of :func:`run_dag_with_metrics`: the
    engine (:class:`repro.sim.EventDrivenTangleLearning`) runs under
    ``sim_config`` (latency laws, quantum batching, stragglers, churn,
    staleness) and the Section 4.3 community metrics are measured on the
    asynchronously grown tangle every ``measure_every`` simulated time
    units (default: only at the horizon).  Also reports throughput —
    processed events per wall-clock second — which is what the
    scalability benchmark records at 100/1000 clients.

    ``late_pureness`` restricts approval pureness to transactions whose
    coarse time bucket (``round_index = int(publish time)``) falls in
    the second half of the run, mirroring the round runner's warm-up
    exclusion.
    """
    from repro.sim import EventDrivenTangleLearning, SimConfig

    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if sim_config is None:
        sim_config = SimConfig()
    if measure_every is None:
        measure_every = horizon
    if measure_every <= 0:
        raise ValueError("measure_every must be positive")
    engine = EventDrivenTangleLearning(
        dataset,
        model_builder,
        train_config,
        dag_config,
        sim_config=sim_config,
        seed=seed,
    )
    labels = dataset.cluster_labels()
    metric_times: list[float] = []
    modularity_series: list[float] = []
    partitions_series: list[int] = []
    misclassification_series: list[float] = []
    pureness_series: list[float] = []
    started = perf_counter()
    checkpoint = 0.0
    report = None
    while checkpoint < horizon:
        checkpoint = min(checkpoint + measure_every, horizon)
        engine.run_until(checkpoint)
        report = analyze_specialization(engine.tangle, labels, seed=seed)
        metric_times.append(checkpoint)
        modularity_series.append(report.modularity)
        partitions_series.append(report.num_partitions)
        misclassification_series.append(report.misclassification)
        pureness_series.append(report.pureness)
    elapsed = perf_counter() - started
    events = len(engine.events)
    late_pureness = approval_pureness(
        engine.tangle, labels, since_round=int(horizon // 2)
    )
    return {
        "events": events,
        "cycles": engine.completed_cycles,
        "transactions": len(engine.tangle) - 1,  # excluding genesis
        "wall_clock": elapsed,
        "events_per_second": events / elapsed if elapsed > 0 else float("inf"),
        "accuracy_timeline": engine.accuracy_timeline(),
        "fault_stats": dict(engine.fault_stats),
        "metric_times": metric_times,
        "modularity": modularity_series,
        "num_partitions": partitions_series,
        "misclassification": misclassification_series,
        "pureness": pureness_series,
        "final": {
            "modularity": report.modularity,
            "num_partitions": report.num_partitions,
            "misclassification": report.misclassification,
            "pureness": report.pureness,
            "late_pureness": late_pureness,
            "base_pureness": report.base_pureness,
        },
        "simulator": engine,
    }


def accuracy_series(history) -> list[float]:
    """Mean-client-accuracy series from a list of round records."""
    return [record.mean_accuracy for record in history]
