"""Figures 12-14 — flipped-label poisoning (Section 5.3.4).

Scenario: train cleanly on writer-split FMNIST, then flip labels 3 <-> 8
for a fraction ``p`` of clients and keep training.  Measured per round of
the attack phase:

- Fig. 12: fraction of true {3, 8} test samples mispredicted as the other
  class under each client's selected reference model;
- Fig. 13: average number of poisoned transactions approved (directly or
  indirectly) by the reference transactions;
- Fig. 14: after the run, the distribution of poisoned clients over the
  Louvain-inferred clusters (p = 0.3 scenario).

Expected shape: p=0.2 stays near the p=0 baseline; p=0.3 is noticeable
but bounded; the *random* tip selector at p=0.2 flips more predictions
than the accuracy selector at p=0.3 despite approving fewer poisoned
transactions — the accuracy walk contains poison inside the attackers'
own cluster rather than excluding it.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig, TangleLearning
from repro.metrics import build_clients_graph, louvain_communities
from repro.poisoning import (
    count_approved_poisoned,
    network_flipped_prediction_rate,
    poison_dataset_label_flip,
    poisoned_cluster_distribution,
)

__all__ = ["run", "run_scenario", "SCENARIOS"]

CLASS_A, CLASS_B = 3, 8

#: (label, poisoned fraction, tip selector)
SCENARIOS = (
    ("p0.0", 0.0, "accuracy"),
    ("p0.2", 0.2, "accuracy"),
    ("p0.2-random", 0.2, "random"),
    ("p0.3", 0.3, "accuracy"),
)


def run_scenario(
    scale: Scale,
    *,
    poisoned_fraction: float,
    selector: str = "accuracy",
    seed: int = 0,
) -> dict:
    """One poisoning run; returns per-round series and the final partition."""
    dataset = build_dataset("fmnist-by-writer", scale, seed=seed)
    builder = model_builder_for("fmnist-by-writer", scale, dataset)
    train_config = training_config_for("fmnist-by-writer", scale)
    sim = TangleLearning(
        dataset,
        builder,
        train_config,
        DagConfig(alpha=10.0, selector=selector),
        clients_per_round=scale.clients_per_round,
        seed=seed,
    )
    sim.run(scale.poison_clean_rounds)

    poisoned_ds, poisoned_ids = poison_dataset_label_flip(
        dataset,
        class_a=CLASS_A,
        class_b=CLASS_B,
        poisoned_fraction=poisoned_fraction,
        seed=seed + 1,
    )
    for client_data in poisoned_ds.clients:
        client = sim.clients[client_data.client_id]
        client.data = client_data
        client.reset_cache()

    flipped_series: list[float] = []
    approved_series: list[float] = []
    for _ in range(scale.poison_attack_rounds):
        sim.run_round()
        reference_weights = {}
        approved_counts = []
        for client_id in sorted(sim.clients):
            tip = sim.reference_tip(client_id)
            reference_weights[client_id] = sim.tangle.get(tip).model_weights
            approved_counts.append(
                count_approved_poisoned(sim.tangle, tip, poisoned_ids)
            )
        flipped_series.append(
            network_flipped_prediction_rate(
                sim.model,
                reference_weights,
                {cid: c.data for cid, c in sim.clients.items()},
                class_a=CLASS_A,
                class_b=CLASS_B,
            )
        )
        approved_series.append(float(np.mean(approved_counts)))

    graph = build_clients_graph(sim.tangle, include_clients=sorted(sim.clients))
    partition = louvain_communities(graph, seed=seed)
    return {
        "poisoned_fraction": poisoned_fraction,
        "selector": selector,
        "poisoned_clients": sorted(poisoned_ids),
        "flipped_rate": flipped_series,
        "approved_poisoned": approved_series,
        "cluster_distribution": poisoned_cluster_distribution(
            partition, poisoned_ids
        ),
    }


def run(scale: Scale | None = None, *, seed: int = 0, scenarios=SCENARIOS) -> dict:
    scale = scale or resolve_scale()
    result: dict = {
        "experiment": "fig12_13_14",
        "scale": scale.name,
        "scenarios": {},
    }
    for label, fraction, selector in scenarios:
        result["scenarios"][label] = run_scenario(
            scale, poisoned_fraction=fraction, selector=selector, seed=seed
        )
    return result
