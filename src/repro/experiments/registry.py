"""Registry mapping experiment ids to their runners."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablations,
    comparison_gossip,
    extensions,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10_11,
    fig12_13_14,
    fig15,
    service_demo,
    table2,
)

__all__ = ["EXPERIMENTS", "get_experiment"]

EXPERIMENTS: dict[str, Callable] = {
    "table2": table2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10_11": fig10_11.run,
    "fig12_13_14": fig12_13_14.run,
    "fig15": fig15.run,
    "ablation-tip-selection": ablations.run_tip_selection,
    "ablation-publish-gate": ablations.run_publish_gate,
    "ablation-num-tips": ablations.run_num_tips,
    "ablation-walk-depth": ablations.run_walk_depth,
    "ablation-personalization": extensions.run_personalization,
    "ablation-visibility-delay": extensions.run_visibility_delay,
    "attack-random-weights": extensions.run_random_weight_attack,
    "async-convergence": extensions.run_async_convergence,
    "ablation-aggregation": extensions.run_aggregation_robustness,
    "comparison-gossip": comparison_gossip.run,
    "service-demo": service_demo.run,
}


def get_experiment(experiment_id: str) -> Callable:
    """Look up an experiment runner by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
