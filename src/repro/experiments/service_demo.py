"""``service-demo``: the tangle gateway driven as a live service.

The paper's protocol is usually *simulated* (the engine owns every
client); this experiment runs it as a *service*: a
:class:`~repro.service.gateway.TangleGateway` fronts one live tangle,
and paper-faithful FMNIST clients act as real callers — each cycle asks
the gateway for accuracy-selected tips (scored by that client's own
test split), averages the parents, trains locally, and publishes the
update back through the gate.

Two phases, one result dict:

1. **calm** — clients drive the gateway concurrently with no faults,
   growing the tangle and exercising coalescing + accuracy selection;
2. **chaos** — the same load with a :class:`~repro.sim.faults.FaultModel`
   injected at the boundary (drops, jitter, payload corruption, crashes
   of the coalescer worker) and every caller wrapped in the bundled
   retry client.  The run asserts the resilience contract wholesale:
   every outcome is ``ok`` / ``shed`` / ``rejected`` — nothing raises,
   nothing hangs.

Run it from the CLI::

    PYTHONPATH=src python -m repro.experiments run service-demo --scale smoke
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.dag.transaction import GENESIS_ID
from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl.aggregation import mean_flat
from repro.fl.client import Client
from repro.service import (
    GatewayClient,
    GatewayConfig,
    ServiceChaos,
    TangleGateway,
)
from repro.sim.faults import FaultModel
from repro.utils.rng import RngFactory

__all__ = ["run"]


def _drive(gateway, caller, client: Client, cycles: int, outcomes: dict, lock):
    """One service caller: tips -> average parents -> train -> publish."""
    tangle = gateway.tangle
    spec = tangle.spec
    for _ in range(cycles):
        response = caller.tips(2, score_key=client.client_id)
        with lock:
            outcomes[response.status] = outcomes.get(response.status, 0) + 1
            if response.degraded:
                outcomes["degraded"] = outcomes.get("degraded", 0) + 1
        if not response.ok:
            continue
        parents = list(dict.fromkeys(response.body["tips"])) or [GENESIS_ID]
        stacked = np.stack([tangle.flat_weights(p) for p in parents])
        trained, _ = client.train(spec.unflatten(mean_flat(stacked)))
        publish = caller.publish(
            spec.flatten(trained), parents, issuer=client.client_id
        )
        with lock:
            outcomes[publish.status] = outcomes.get(publish.status, 0) + 1


def _load_phase(gateway, clients, cycles, *, retry_seed=0, wrap_client=True):
    """Run every client concurrently against the gateway; return stats."""
    outcomes: dict[str, int] = {}
    lock = threading.Lock()
    threads = []
    for client in clients.values():
        caller = (
            GatewayClient(gateway, seed=retry_seed + client.client_id)
            if wrap_client
            else gateway
        )
        threads.append(
            threading.Thread(
                target=_drive,
                args=(gateway, caller, client, cycles, outcomes, lock),
            )
        )
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    total = sum(outcomes.get(k, 0) for k in ("ok", "shed", "rejected"))
    return {
        "outcomes": outcomes,
        "elapsed_s": round(elapsed, 3),
        "requests_per_s": round(total / elapsed, 1) if elapsed > 0 else 0.0,
    }


def run(scale: Scale | None = None, *, seed: int = 0, cycles: int = 3) -> dict:
    """Calm + chaos service phases over one live tangle (see module doc)."""
    scale = scale or resolve_scale()
    dataset = build_dataset("fmnist-clustered", scale, seed=seed)
    builder = model_builder_for("fmnist-clustered", scale, dataset)
    train_config = training_config_for("fmnist-clustered", scale)
    rngs = RngFactory(seed)
    from repro.dag.tangle import Tangle

    tangle = Tangle(builder(rngs.get("model-init")).get_weights())
    # Unlike the simulators (which train clients one at a time on a
    # shared model), service callers run concurrently — each gets its
    # own model instance.  Rebuilding from the same rng key reproduces
    # the identical genesis initialization for every one.
    clients = {
        cd.client_id: Client(
            cd,
            builder(rngs.get("model-init")),
            train_config,
            rngs.get("client", cd.client_id),
        )
        for cd in dataset.clients
    }

    def score_provider(score_key):
        client = clients.get(score_key)
        if client is None:
            return None
        return lambda tx_ids: client.tx_accuracies(tangle, tx_ids)

    config = GatewayConfig(deadline_budget=2.0, seed=seed)
    result: dict = {"scale": scale.name, "seed": seed, "clients": len(clients)}

    with TangleGateway(
        tangle, config=config, score_provider=score_provider
    ) as gateway:
        result["calm"] = _load_phase(
            gateway, clients, cycles, retry_seed=seed, wrap_client=False
        )
        result["calm"]["ladder"] = dict(gateway.ladder.stats)
        result["calm"]["coalescer"] = dict(gateway.coalescer.stats)

    faults = FaultModel(
        drop_rate=0.1,
        jitter=0.002,
        corruption_rate=0.15,
        corruption_mode="nan",
        crash_rate=0.15,
        always_on=True,
    )
    chaos = ServiceChaos(faults, seed=seed + 1)
    with TangleGateway(
        tangle, config=config, score_provider=score_provider, chaos=chaos
    ) as gateway:
        result["chaos"] = _load_phase(
            gateway, clients, cycles, retry_seed=seed + 1
        )
        result["chaos"]["ladder"] = dict(gateway.ladder.stats)
        result["chaos"]["coalescer"] = dict(gateway.coalescer.stats)
        result["chaos"]["injected"] = dict(chaos.stats)
        result["chaos"]["quarantined"] = gateway.counts["quarantined"]
        unknown = set(result["chaos"]["outcomes"]) - {
            "ok",
            "shed",
            "rejected",
            "degraded",
        }
        if unknown:  # the closed-taxonomy contract, asserted live
            raise AssertionError(f"unexpected outcome statuses: {unknown}")

    result["tangle_size"] = len(tangle)
    return result
