"""Figures 10 & 11 — FedAvg vs DAG vs FedProx on synthetic(0.5, 0.5).

30 clients, 10 active per round, multinomial logistic regression.
Expected shape: the DAG is noisier but eventually beats FedAvg on both
average accuracy (Fig. 10) and loss (Fig. 11), approaching the FedProx
loss; FedProx remains the best-behaved centralized baseline.
"""

from __future__ import annotations

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig, FedAvgServer, FedProxServer, TangleLearning

__all__ = ["run"]


def run(scale: Scale | None = None, *, seed: int = 0, mu: float = 0.5) -> dict:
    scale = scale or resolve_scale()
    name = "fedprox-synthetic"
    dataset = build_dataset(name, scale, seed=seed)
    builder = model_builder_for(name, scale, dataset)
    train_config = training_config_for(name, scale)

    fedavg = FedAvgServer(
        dataset, builder, train_config,
        clients_per_round=scale.clients_per_round, seed=seed,
    )
    fedavg.run(scale.rounds)

    fedprox = FedProxServer(
        dataset, builder, train_config,
        clients_per_round=scale.clients_per_round, seed=seed, mu=mu,
    )
    fedprox.run(scale.rounds)

    dag = TangleLearning(
        dataset, builder, train_config, DagConfig(alpha=10.0),
        clients_per_round=scale.clients_per_round, seed=seed,
    )
    dag.run(scale.rounds)

    def series(history):
        return {
            "accuracy": [r.mean_accuracy for r in history],
            "loss": [r.mean_loss for r in history],
        }

    return {
        "experiment": "fig10_11",
        "scale": scale.name,
        "mu": mu,
        "fedavg": series(fedavg.history),
        "fedprox": series(fedprox.history),
        "dag": series(dag.history),
    }
