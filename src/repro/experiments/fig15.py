"""Figure 15 — random-walk cost vs number of concurrently active clients.

The paper measures the wall-clock duration of the biased random walk over
100 rounds for 5/10/20/40 concurrently training clients and finds the
differences marginal (good scalability), with cost levelling out as model
accuracies equalize.  We record both wall-clock walk duration and the
number of model evaluations the walk requested — the latter is the
hardware-independent cost measure.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    training_config_for,
)
from repro.experiments.scale import Scale, resolve_scale
from repro.fl import DagConfig, TangleLearning

__all__ = ["run", "active_counts_for"]


def active_counts_for(scale: Scale) -> tuple[int, ...]:
    """The sweep of concurrently active client counts per profile."""
    if scale.name == "paper":
        return (5, 10, 20, 40)
    if scale.name == "default":
        return (4, 8, 16)
    return (2, 4, 8)


def run(
    scale: Scale | None = None,
    *,
    seed: int = 0,
    active_counts: tuple[int, ...] | None = None,
) -> dict:
    scale = scale or resolve_scale()
    counts = active_counts or active_counts_for(scale)
    num_clients = max(2 * max(counts), scale.fmnist_clients)

    result: dict = {
        "experiment": "fig15",
        "scale": scale.name,
        "active_counts": list(counts),
        "runs": {},
    }
    for active in counts:
        dataset = build_dataset(
            "fmnist-by-writer", scale, seed=seed, num_clients=num_clients
        )
        builder = model_builder_for("fmnist-by-writer", scale, dataset)
        train_config = training_config_for("fmnist-by-writer", scale)
        sim = TangleLearning(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=10.0),
            clients_per_round=active,
            seed=seed,
        )
        durations, evaluations = [], []
        for _ in range(scale.rounds):
            record = sim.run_round()
            durations.append(record.mean_walk_duration)
            evaluations.append(
                float(np.mean(list(record.walk_evaluations.values())))
            )
        result["runs"][str(active)] = {
            "walk_duration": durations,
            "walk_evaluations": evaluations,
            "mean_duration": float(np.mean(durations)),
            "mean_evaluations": float(np.mean(evaluations)),
        }
    return result
