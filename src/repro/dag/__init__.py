"""The tangle substrate: a DAG of model-update transactions.

Nodes of the graph are model weight updates; edges are approvals of the
two transactions a new model was derived from (Popov's tangle, adapted to
federated learning as in the paper).  The tip-selection algorithms —
uniform random, cumulative-weight biased, and the paper's accuracy-biased
walk — live in :mod:`repro.dag.tip_selection`.
"""

from repro.dag.arena import WeightArena
from repro.dag.transaction import Transaction, GENESIS_ID
from repro.dag.tangle import Tangle
from repro.dag.view import TangleView
from repro.dag.persistence import CorruptTangleError, save_tangle, load_tangle
from repro.dag.export import tangle_statistics, to_dot, to_networkx
from repro.dag.random_walk import random_walk, sample_walk_start
from repro.dag.walk_engine import (
    TangleSnapshot,
    batched_walk_starts,
    lockstep_walks,
    snapshot_for,
)
from repro.dag.tip_selection import (
    AccuracyTipSelector,
    RandomTipSelector,
    TipSelector,
    WeightedTipSelector,
    accuracy_walk_weights,
    normalize_standard,
    normalize_dynamic,
)

__all__ = [
    "WeightArena",
    "Transaction",
    "GENESIS_ID",
    "Tangle",
    "TangleView",
    "save_tangle",
    "load_tangle",
    "CorruptTangleError",
    "tangle_statistics",
    "to_dot",
    "to_networkx",
    "random_walk",
    "sample_walk_start",
    "TangleSnapshot",
    "snapshot_for",
    "batched_walk_starts",
    "lockstep_walks",
    "TipSelector",
    "RandomTipSelector",
    "WeightedTipSelector",
    "AccuracyTipSelector",
    "accuracy_walk_weights",
    "normalize_standard",
    "normalize_dynamic",
]
