"""Round-bounded views of a tangle.

In a real deployment, transactions propagate with network delay: a client
selecting tips may not yet have seen the most recent publications.  A
:class:`TangleView` exposes the subset of a tangle published up to a
given round through the same read API the tip selectors use, so the
simulator can model propagation delay without copying the DAG.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import Transaction

__all__ = ["TangleView", "visible_tips"]


def visible_tips(tangle: Tangle, visible: Callable[[Transaction], bool]) -> list[str]:
    """Tips of the sub-DAG induced by a visibility predicate, in one pass.

    A visible transaction is a tip when none of its approvers is
    visible.  Computing the visible id set once and testing approver
    membership against it costs O(transactions + edges); the naive
    formulation — calling a view's ``approvers`` per transaction, each
    call re-validating visibility through ``get`` — re-pays the
    predicate per edge endpoint and degenerates quadratically on
    delay-bounded views.  Shared by :meth:`TangleView.tips` and
    :meth:`repro.fl.async_learning.TimedTangleView.tips`.
    """
    visible_ids = [tx.tx_id for tx in tangle.transactions() if visible(tx)]
    visible_set = set(visible_ids)
    return sorted(
        tx_id
        for tx_id in visible_ids
        if not any(a in visible_set for a in tangle.approvers(tx_id))
    )


class TangleView:
    """Read-only view of ``tangle`` restricted to rounds <= ``max_round``.

    Implements the query surface used by the random walks and tip
    selectors (``get``, ``approvers``, ``tips``, ``is_tip``,
    ``__contains__``, ``cumulative_weight``, ``approval_edges``).  The
    genesis (round -1) is always visible, so a view is never empty.
    """

    def __init__(self, tangle: Tangle, max_round: int):
        self._tangle = tangle
        self.max_round = max_round

    def _visible(self, tx: Transaction) -> bool:
        return tx.is_genesis or tx.round_index <= self.max_round

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._tangle and self._visible(self._tangle.get(tx_id))

    def __len__(self) -> int:
        return sum(1 for tx in self._tangle.transactions() if self._visible(tx))

    @property
    def genesis(self) -> Transaction:
        return self._tangle.genesis

    def get(self, tx_id: str) -> Transaction:
        """The transaction under ``tx_id`` if visible (KeyError otherwise)."""
        tx = self._tangle.get(tx_id)
        if not self._visible(tx):
            raise KeyError(f"transaction {tx_id!r} not visible at round {self.max_round}")
        return tx

    def transactions(self) -> list[Transaction]:
        """Visible transactions in the tangle's insertion order."""
        return [tx for tx in self._tangle.transactions() if self._visible(tx)]

    def approvers(self, tx_id: str) -> list[str]:
        """Visible transactions that directly approve ``tx_id``."""
        self.get(tx_id)  # visibility check
        return [
            a
            for a in self._tangle.approvers(tx_id)
            if self._visible(self._tangle.get(a))
        ]

    def tips(self) -> list[str]:
        """Visible transactions with no visible approvers (one pass)."""
        return visible_tips(self._tangle, self._visible)

    def is_tip(self, tx_id: str) -> bool:
        """Whether ``tx_id`` is visible and has no visible approvers."""
        return tx_id in self and not self.approvers(tx_id)

    def cumulative_weight(self, tx_id: str) -> int:
        """Own weight plus visible approving transactions.

        When the view's bound covers the whole tangle (no transaction is
        hidden) the query is answered from the tangle's incremental
        weight index in O(1); only genuinely truncated views pay for a
        visibility-filtered BFS.
        """
        from collections import deque

        self.get(tx_id)
        if self.max_round >= self._tangle.last_round_index:
            return self._tangle.cumulative_weight(tx_id)
        seen: set[str] = set()
        queue = deque(self.approvers(tx_id))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.approvers(current))
        return 1 + len(seen)

    def cumulative_weights(self, tx_ids) -> np.ndarray:
        """Batched :meth:`cumulative_weight` over ``tx_ids``.

        A fully covering view answers all ids with one query against
        the tangle's incremental index — every stored transaction is
        visible at such a bound, and the index query itself raises
        ``KeyError`` on unknown ids, so no per-id check is needed.
        Truncated views fall back to the per-id filtered BFS.
        """
        if self.max_round >= self._tangle.last_round_index:
            return self._tangle.cumulative_weights(tx_ids)
        return np.array(
            [self.cumulative_weight(tx_id) for tx_id in tx_ids], dtype=np.float64
        )

    def approval_edges(self):
        """Visible (approving, approved) pairs, genesis excluded."""
        for approving, approved in self._tangle.approval_edges():
            if self._visible(approving) and self._visible(approved):
                yield approving, approved

    def _cost_footprint(self, walk) -> tuple[int, int]:
        """Views ship their whole tangle plus a bound — delegate."""
        ipc, dense = walk(self._tangle)
        return ipc + 64, dense + 64
