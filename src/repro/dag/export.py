"""Exporting tangles for analysis and visualization."""

from __future__ import annotations

from repro.dag.tangle import Tangle

__all__ = ["to_networkx", "to_dot", "tangle_statistics"]


def to_networkx(tangle: Tangle):
    """The tangle as a ``networkx.DiGraph`` (edges: approving -> approved).

    Node attributes: ``issuer``, ``round``, ``is_tip`` plus any tags.
    Weights are intentionally not attached (they can be huge); use the
    tangle itself for model access.
    """
    import networkx as nx

    graph = nx.DiGraph()
    for tx in tangle.transactions():
        graph.add_node(
            tx.tx_id,
            issuer=tx.issuer,
            round=tx.round_index,
            is_tip=tangle.is_tip(tx.tx_id),
            **tx.tags,
        )
    for tx in tangle.transactions():
        for parent in tx.parents:
            graph.add_edge(tx.tx_id, parent)
    return graph


def to_dot(tangle: Tangle, *, cluster_labels: dict[int, int] | None = None) -> str:
    """A Graphviz dot rendering of the tangle.

    With ``cluster_labels`` (client id -> cluster), nodes are colored by
    their issuer's cluster, which makes the implicit specialization
    visible (Figure 4 of the paper).
    """
    palette = [
        "lightblue", "lightcoral", "lightgreen", "gold", "plum",
        "lightsalmon", "paleturquoise", "khaki", "lightpink", "lightgray",
    ]
    lines = ["digraph tangle {", "  rankdir=RL;", "  node [style=filled];"]
    for tx in tangle.transactions():
        if tx.is_genesis:
            color = "white"
            label = "genesis"
        else:
            label = f"{tx.tx_id}\\nclient {tx.issuer} r{tx.round_index}"
            if cluster_labels is not None and tx.issuer in cluster_labels:
                color = palette[cluster_labels[tx.issuer] % len(palette)]
            else:
                color = "lightgray"
        shape = "doublecircle" if tangle.is_tip(tx.tx_id) else "ellipse"
        lines.append(
            f'  "{tx.tx_id}" [label="{label}", fillcolor={color}, shape={shape}];'
        )
    for tx in tangle.transactions():
        for parent in tx.parents:
            lines.append(f'  "{tx.tx_id}" -> "{parent}";')
    lines.append("}")
    return "\n".join(lines)


def tangle_statistics(tangle: Tangle) -> dict:
    """Aggregate DAG shape statistics for experiment logs."""
    transactions = [tx for tx in tangle.transactions() if not tx.is_genesis]
    per_round: dict[int, int] = {}
    issuers: dict[int, int] = {}
    for tx in transactions:
        per_round[tx.round_index] = per_round.get(tx.round_index, 0) + 1
        issuers[tx.issuer] = issuers.get(tx.issuer, 0) + 1
    approver_counts = [
        len(tangle.approvers(tx.tx_id)) for tx in tangle.transactions()
    ]
    return {
        "transactions": len(transactions),
        "tips": len(tangle.tips()),
        "rounds": len(per_round),
        "max_width": max(per_round.values()) if per_round else 0,
        "mean_width": (
            sum(per_round.values()) / len(per_round) if per_round else 0.0
        ),
        "distinct_issuers": len(issuers),
        "max_approvers": max(approver_counts) if approver_counts else 0,
    }
