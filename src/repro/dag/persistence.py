"""Saving and loading tangles.

A tangle is stored as one ``.npz`` holding every transaction's weights
plus a JSON ``meta`` entry describing structure (parents, issuers,
rounds, tags).  This makes long experiments resumable and lets analysis
tooling load a DAG without re-running the simulation.

Since the flat-weight plane, each model is stored as **one** flat array
(keyed ``<tx_id>/flat``) with its per-layer shapes recorded in the
metadata — one npz member per transaction instead of one per layer,
which is both smaller and much faster to write and read.  Files written
by the original per-layer format (``<tx_id>/<index>`` members and a
``num_arrays`` meta field) still load.

Loading **validates** every checkpoint up front: missing weight
members, rows whose dtype is not a real floating type, shapes that
don't match the recorded spec, and non-finite weight values all raise
:class:`CorruptTangleError` naming the offending transaction — a
truncated or bit-rotted file fails at the load site with a clear
message instead of deep inside a later merge or walk.

Checkpoints round-trip **compaction state** (see ``docs/scaling.md``):
the genesis meta entry records the publish counter and the
:attr:`~repro.dag.tangle.Tangle.compaction_epoch`, so a tangle saved
after a :meth:`~repro.dag.tangle.Tangle.compact` reloads with burned
transaction ids still burned (``next_tx_id`` never re-issues an id
that was truncated away) and with its epoch intact (cached walk
snapshots keyed on the old epoch can never be mistaken for the
reloaded DAG's).  Files written before these fields existed still
load; the counter is then recovered from the largest ``tx<N>-...`` id
present.
"""

from __future__ import annotations

import json
import re
import zipfile
from pathlib import Path

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.nn.serialization import FlatSpec

__all__ = ["save_tangle", "load_tangle", "CorruptTangleError"]

_META_KEY = "__tangle_meta__"


class CorruptTangleError(ValueError):
    """A saved tangle failed validation on load.

    Raised by :func:`load_tangle` for structural damage (missing
    metadata or weight members, no genesis) and for payload damage
    (wrong dtype, shape mismatch against the recorded spec, non-finite
    weight values).  Subclasses ``ValueError`` so pre-existing callers
    catching the old bare errors keep working.
    """


def save_tangle(tangle: Tangle, path: str | Path) -> Path:
    """Serialize ``tangle`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    meta: list[dict] = []
    # The arena dtype is a property of the whole tangle; record it on the
    # genesis entry so a resumed run keeps the operator's float32/float64
    # storage choice.
    store_dtype = tangle.arena.dtype.str
    for tx in tangle.transactions():
        weights = tx.model_weights
        spec = FlatSpec.from_weights(weights)
        entry = {
            "tx_id": tx.tx_id,
            "parents": list(tx.parents),
            "issuer": tx.issuer,
            "round_index": tx.round_index,
            "tags": tx.tags,
            "shapes": [list(shape) for shape in spec.shapes],
        }
        if not meta:
            # Genesis carries tangle-wide state: the storage dtype, the
            # publish counter (so reloaded tangles never re-issue ids
            # burned before a compaction), and the compaction epoch (so
            # snapshot fingerprints of the reloaded tangle line up with
            # its pre-save cache history).
            entry["store_dtype"] = store_dtype
            entry["counter"] = tangle._counter
            entry["compaction_epoch"] = tangle.compaction_epoch
        meta.append(entry)
        arrays[f"{tx.tx_id}/flat"] = tx.flat_vector(spec)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def _checked(tx_id: str, member: str, array: np.ndarray, shape: tuple) -> np.ndarray:
    """Validate one stored weight array; raise :class:`CorruptTangleError`."""
    if not np.issubdtype(array.dtype, np.floating):
        raise CorruptTangleError(
            f"transaction {tx_id!r}: member {member!r} has dtype "
            f"{array.dtype}, expected a floating type"
        )
    if array.shape != shape:
        raise CorruptTangleError(
            f"transaction {tx_id!r}: member {member!r} has shape "
            f"{array.shape}, expected {shape}"
        )
    if not np.isfinite(array).all():
        bad = int(array.size - np.isfinite(array).sum())
        raise CorruptTangleError(
            f"transaction {tx_id!r}: member {member!r} carries {bad} "
            f"non-finite value{'s' if bad != 1 else ''}"
        )
    return array


def load_tangle(path: str | Path) -> Tangle:
    """Load a tangle previously written by :func:`save_tangle`.

    Raises :class:`CorruptTangleError` when the file fails validation
    (see the module docstring for what is checked) — including when the
    file itself is torn: an npz cut mid-array surfaces the raw zip or
    numpy error only when the damaged member is decompressed, so the
    whole load is normalized to one error type naming the file.  A
    missing file stays a plain ``FileNotFoundError``.
    """
    path = Path(path)
    try:
        return _load_validated(path)
    except CorruptTangleError:
        raise
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        # Everything a torn file produces across numpy/zipfile versions:
        # BadZipFile (mangled directory), EOFError/OSError (member cut
        # mid-stream), ValueError ("Failed to interpret..." / a clipped
        # header), KeyError (meta fields lost with the tail).
        raise CorruptTangleError(
            f"{path} is corrupt or truncated "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def _load_validated(path: Path) -> Tangle:
    with np.load(path, allow_pickle=False) as data:
        if _META_KEY not in data:
            raise CorruptTangleError(
                f"{path} is not a saved tangle (missing metadata)"
            )
        meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))

        def weights_of(entry: dict) -> list[np.ndarray]:
            tx_id = entry["tx_id"]
            if "shapes" in entry:  # flat format: one member per transaction
                spec = FlatSpec(tuple(tuple(s) for s in entry["shapes"]))
                member = f"{tx_id}/flat"
                if member not in data:
                    raise CorruptTangleError(
                        f"transaction {tx_id!r}: member {member!r} is missing"
                    )
                flat = _checked(tx_id, member, data[member], (spec.total,))
                return [np.array(w) for w in spec.unflatten(flat)]
            # legacy per-layer format
            arrays = []
            for i in range(entry["num_arrays"]):
                member = f"{tx_id}/{i}"
                if member not in data:
                    raise CorruptTangleError(
                        f"transaction {tx_id!r}: member {member!r} is missing"
                    )
                array = np.array(data[member])
                arrays.append(_checked(tx_id, member, array, array.shape))
            return arrays

        if not meta or meta[0]["tx_id"] != GENESIS_ID:
            raise CorruptTangleError("saved tangle does not start with genesis")
        # Legacy files carry no dtype marker; they were float64 tangles.
        store_dtype = np.dtype(meta[0].get("store_dtype", "<f8"))
        tangle = Tangle(weights_of(meta[0]), store_dtype=store_dtype)
        for entry in meta[1:]:
            tangle.add(
                Transaction(
                    tx_id=entry["tx_id"],
                    parents=tuple(entry["parents"]),
                    model_weights=weights_of(entry),
                    issuer=entry["issuer"],
                    round_index=entry["round_index"],
                    tags=entry["tags"],
                )
            )
        if "counter" in meta[0]:
            tangle._counter = int(meta[0]["counter"])
        else:
            # Legacy file: recover the publish counter from the ids
            # actually present, so next_tx_id cannot collide with them.
            tangle._counter = max(
                (
                    int(m.group(1))
                    for entry in meta
                    if (m := re.match(r"tx(\d+)-", entry["tx_id"]))
                ),
                default=0,
            )
        tangle._compaction_epoch = int(meta[0].get("compaction_epoch", 0))
    return tangle
