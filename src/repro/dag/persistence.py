"""Saving and loading tangles.

A tangle is stored as one ``.npz`` holding every transaction's weight
arrays (keyed ``<tx_id>/<index>``) plus a JSON sidecar-free ``meta``
entry describing structure (parents, issuers, rounds, tags).  This makes
long experiments resumable and lets analysis tooling load a DAG without
re-running the simulation.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction

__all__ = ["save_tangle", "load_tangle"]

_META_KEY = "__tangle_meta__"


def save_tangle(tangle: Tangle, path: str | Path) -> Path:
    """Serialize ``tangle`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    meta: list[dict] = []
    for tx in tangle.transactions():
        meta.append(
            {
                "tx_id": tx.tx_id,
                "parents": list(tx.parents),
                "issuer": tx.issuer,
                "round_index": tx.round_index,
                "tags": tx.tags,
                "num_arrays": len(tx.model_weights),
            }
        )
        for i, array in enumerate(tx.model_weights):
            arrays[f"{tx.tx_id}/{i}"] = array
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_tangle(path: str | Path) -> Tangle:
    """Load a tangle previously written by :func:`save_tangle`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ValueError(f"{path} is not a saved tangle (missing metadata)")
        meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))

        def weights_of(entry: dict) -> list[np.ndarray]:
            return [
                np.array(data[f"{entry['tx_id']}/{i}"])
                for i in range(entry["num_arrays"])
            ]

        if not meta or meta[0]["tx_id"] != GENESIS_ID:
            raise ValueError("saved tangle does not start with genesis")
        tangle = Tangle(weights_of(meta[0]))
        for entry in meta[1:]:
            tangle.add(
                Transaction(
                    tx_id=entry["tx_id"],
                    parents=tuple(entry["parents"]),
                    model_weights=weights_of(entry),
                    issuer=entry["issuer"],
                    round_index=entry["round_index"],
                    tags=entry["tags"],
                )
            )
    return tangle
