"""Random walks over the tangle.

A walk starts at a transaction sampled some depth behind the tips (the
paper follows Popov and samples at depth 15-25) and repeatedly moves to
one of the current transaction's approvers until it reaches a tip.  The
transition rule is supplied by the tip selector.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID

__all__ = ["sample_walk_start", "random_walk"]

Transition = Callable[[str, list[str], np.random.Generator], str]


def sample_walk_start(
    tangle: Tangle,
    rng: np.random.Generator,
    *,
    depth_range: tuple[int, int] = (15, 25),
) -> str:
    """Sample a walk starting point at the configured depth behind a tip.

    From a uniformly chosen tip, follow approval edges (towards the past)
    for ``d ~ U[depth_range]`` steps, choosing uniformly among parents;
    stops early at genesis.  Mirrors the paper's scalability setup
    ("started the random walk at a transaction sampled at a depth of 15-25
    transactions from the tips, as proposed by Popov").
    """
    low, high = depth_range
    if low < 0 or high < low:
        raise ValueError(f"invalid depth range {depth_range}")
    tips = tangle.tips()
    current = tips[int(rng.integers(0, len(tips)))]
    depth = int(rng.integers(low, high + 1))
    for _ in range(depth):
        # Only descend visible edges: on a delay-bounded view a
        # transaction can be visible before one of its parents (the
        # issuer exemption makes this reachable in the async
        # simulator), and stepping to an invisible parent would blow up
        # on the next get().  On a raw tangle every parent passes.
        parents = [p for p in tangle.get(current).parents if p in tangle]
        if not parents:  # reached genesis (or only invisible parents)
            break
        current = parents[int(rng.integers(0, len(parents)))]
    return current


def random_walk(
    tangle: Tangle,
    start: str,
    transition: Transition,
    rng: np.random.Generator,
    *,
    step_callback: Callable[[str, list[str]], None] | None = None,
) -> str:
    """Walk from ``start`` to a tip using ``transition`` at each step.

    ``step_callback`` (if given) observes every decision point — used by
    the scalability experiment to count model evaluations.
    """
    current = start if start in tangle else GENESIS_ID
    while True:
        approvers = tangle.approvers(current)
        if not approvers:
            return current
        if step_callback is not None:
            step_callback(current, approvers)
        current = transition(current, approvers, rng)
