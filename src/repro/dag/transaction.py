"""Transactions: nodes of the model-update DAG."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Transaction", "GENESIS_ID"]

#: Id of the genesis transaction every tangle starts with.
GENESIS_ID = "genesis"


@dataclass
class Transaction:
    """A published model update.

    ``parents`` are the transactions this update approves (the two tips
    whose models were averaged and trained).  ``model_weights`` is the
    plain list-of-arrays weight format of :mod:`repro.nn.serialization` —
    the paper calls these "model weights", distinct from the walk weights.
    ``issuer`` is the publishing client's id (-1 for genesis), and ``tags``
    carries experiment annotations (e.g. whether the issuer was poisoned)
    that the *protocol never reads* — they exist for evaluation only.
    """

    tx_id: str
    parents: tuple[str, ...]
    model_weights: list[np.ndarray]
    issuer: int
    round_index: int
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.parents)) != len(self.parents):
            raise ValueError(f"duplicate parents in {self.tx_id}: {self.parents}")
        if self.tx_id in self.parents:
            raise ValueError("a transaction cannot approve itself")

    @property
    def is_genesis(self) -> bool:
        return not self.parents

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction({self.tx_id}, issuer={self.issuer}, "
            f"round={self.round_index}, parents={list(self.parents)})"
        )
