"""Transactions: nodes of the model-update DAG."""

from __future__ import annotations

import numpy as np

from repro.nn.serialization import FlatSpec

__all__ = ["Transaction", "GENESIS_ID", "payload_error"]

#: Id of the genesis transaction every tangle starts with.
GENESIS_ID = "genesis"


def payload_error(flat: np.ndarray, spec: FlatSpec) -> str | None:
    """Why a flat weight payload must be quarantined, or ``None`` if sound.

    The publish-path admission check: a payload that is not a 1-D vector
    of ``spec.total`` finite values never reaches
    :meth:`~repro.dag.tangle.Tangle.add` (and therefore never pollutes
    the :class:`~repro.dag.arena.WeightArena`).  Shape mismatches catch
    truncated or foreign-architecture payloads; the finiteness check
    catches NaN/Inf corruption before it can poison every downstream
    mean.  Returns a short human-readable reason so callers can count
    and surface quarantines.
    """
    flat = np.asarray(flat)
    if flat.ndim != 1 or flat.shape[0] != spec.total:
        return f"shape {flat.shape} does not match spec total {spec.total}"
    if not np.isfinite(flat).all():
        bad = int(np.size(flat) - np.isfinite(flat).sum())
        return f"{bad} non-finite value{'s' if bad != 1 else ''}"
    return None


class Transaction:
    """A published model update.

    ``parents`` are the transactions this update approves (the two tips
    whose models were averaged and trained).  ``issuer`` is the publishing
    client's id (-1 for genesis), and ``tags`` carries experiment
    annotations (e.g. whether the issuer was poisoned) that the *protocol
    never reads* — they exist for evaluation only.

    Model storage has two regimes:

    - **Unbound** (just constructed): the transaction owns its weights,
      either as the list-of-arrays form of
      :mod:`repro.nn.serialization` or as one flat vector plus its
      :class:`~repro.nn.serialization.FlatSpec`
      (:meth:`from_flat` — how the substrate ships models between
      processes).
    - **Arena-bound** (after :meth:`~repro.dag.tangle.Tangle.add`): the
      tangle interned the weights into its contiguous
      :class:`~repro.dag.arena.WeightArena` and the transaction keeps
      only ``(arena, row)``.  ``model_weights`` stays available as a
      lazy compatibility view — a cached list of zero-copy per-layer
      views into the arena row — so every existing reader keeps working.
    """

    __slots__ = (
        "tx_id",
        "parents",
        "issuer",
        "round_index",
        "tags",
        "_list",
        "_flat",
        "_spec",
        "_arena",
        "_row",
        "_views",
        "_views_generation",
    )

    def __init__(
        self,
        tx_id: str,
        parents: tuple[str, ...],
        model_weights: list[np.ndarray],
        issuer: int,
        round_index: int,
        tags: dict | None = None,
    ):
        self.tx_id = tx_id
        self.parents = tuple(parents)
        self.issuer = issuer
        self.round_index = round_index
        self.tags = {} if tags is None else tags
        self._list: list[np.ndarray] | None = (
            list(model_weights) if model_weights is not None else None
        )
        self._flat: np.ndarray | None = None
        self._spec: FlatSpec | None = None
        self._arena = None
        self._row: int | None = None
        self._views: list[np.ndarray] | None = None
        self._views_generation = -1
        self._validate()

    def _validate(self) -> None:
        if len(set(self.parents)) != len(self.parents):
            raise ValueError(f"duplicate parents in {self.tx_id}: {self.parents}")
        if self.tx_id in self.parents:
            raise ValueError("a transaction cannot approve itself")

    @classmethod
    def from_flat(
        cls,
        tx_id: str,
        parents: tuple[str, ...],
        flat: np.ndarray,
        spec: FlatSpec,
        issuer: int,
        round_index: int,
        tags: dict | None = None,
    ) -> "Transaction":
        """Build a transaction from one flat weight vector plus its spec."""
        flat = np.asarray(flat)
        if flat.shape != (spec.total,):
            raise ValueError(
                f"expected a ({spec.total},) vector for {tx_id!r}, got {flat.shape}"
            )
        tx = cls(tx_id, parents, None, issuer, round_index, tags)  # type: ignore[arg-type]
        tx._flat = flat
        tx._spec = spec
        return tx

    # ------------------------------------------------------------- weights
    @property
    def model_weights(self) -> list[np.ndarray]:
        """Per-layer weight arrays (the historical read surface).

        For arena-bound transactions this is a lazily built, cached list
        of read-only views into the arena row — no copy.  The cache is
        rebuilt when the arena has reallocated its slab since the views
        were taken, so superseded slab generations are not pinned in
        memory by old views.
        """
        if self._arena is not None:
            if (
                self._views is None
                or self._views_generation != self._arena.generation
            ):
                self._views = self._arena.spec.unflatten(self._arena.row(self._row))
                self._views_generation = self._arena.generation
            return self._views
        if self._views is not None:
            return self._views
        if self._list is not None:
            return self._list
        assert self._flat is not None and self._spec is not None
        self._views = self._spec.unflatten(self._flat)
        return self._views

    def arena_location(self) -> tuple[object, int] | None:
        """``(arena, row_index)`` when arena-bound, else ``None`` —
        lets bulk readers stack many models straight off the slab."""
        if self._arena is None:
            return None
        return self._arena, self._row

    @property
    def arena_bound(self) -> bool:
        return self._arena is not None

    def flat_vector(self, spec: FlatSpec) -> np.ndarray:
        """This model as one flat vector in ``spec`` order.

        Zero-copy when already flat (arena row or :meth:`from_flat`
        payload with a matching spec); a pre-bound list is flattened.
        Raises ``ValueError`` when the model's shapes don't match the
        spec — the tangle uses that to fall back to per-transaction
        storage for foreign-shaped models.
        """
        if self._arena is not None:
            if self._arena.spec != spec:
                raise ValueError(f"{self.tx_id!r} is bound to a different spec")
            return self._arena.row(self._row)
        if self._flat is not None:
            if self._spec != spec:
                raise ValueError(f"{self.tx_id!r} carries a different spec")
            return self._flat
        assert self._list is not None
        return spec.flatten(self._list)

    def bind_arena(self, arena, row: int) -> None:
        """Adopt arena storage; drops any privately held weights."""
        self._arena = arena
        self._row = row
        self._list = None
        self._flat = None
        self._spec = None
        self._views = None
        self._views_generation = -1

    # ------------------------------------------------------------- dunder
    @property
    def is_genesis(self) -> bool:
        return not self.parents

    def __getstate__(self) -> dict:
        # The cached per-layer views would serialize as full copies of the
        # row data; drop them and rebuild lazily after unpickling.  The
        # arena reference pickles via the memo, so a pickled tangle ships
        # its slab exactly once.
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_views"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction({self.tx_id}, issuer={self.issuer}, "
            f"round={self.round_index}, parents={list(self.parents)})"
        )
