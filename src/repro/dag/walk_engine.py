"""Lockstep multi-walk engine: frontier-batched tip selection.

The sequential walkers (:mod:`repro.dag.random_walk`) advance one
particle at a time: every step pays a ``tangle.approvers`` list build,
a per-step accuracy lookup, and a slow ``rng.choice`` — pure Python
overhead multiplied by ``count`` particles per selection and by every
active client per round.  This module runs **all particles of a
selection in lockstep** over an immutable array snapshot of the visible
tangle:

- :class:`TangleSnapshot` flattens a tangle (or any visibility view)
  into CSR adjacency over dense int node ids: approver lists, parent
  lists, the tip set, and (lazily) cumulative weights.  Built once per
  publish epoch and reused by every walk against the same visible state
  (:func:`snapshot_for` caches by an append-only fingerprint).
- :func:`batched_walk_starts` vectorizes the Popov depth descent: all
  tip draws, all depths, then one gather per descent level.
- :func:`lockstep_walks` advances every live particle one superstep at
  a time: the union of all live particles' candidate frontiers is
  scored in **one** batch call (this is what widens the fused
  ``Classifier.accuracy_many`` batches beyond a single particle's
  approver list), candidate scores are normalized segment-wise with the
  exact arithmetic of :func:`repro.dag.tip_selection.normalize_standard`
  / ``normalize_dynamic``, and every particle's next node is sampled in
  one shot by segment-wise **Gumbel-max** over ``alpha * normalized``
  logits — which draws from precisely the softmax distribution
  ``exp(alpha * normalized) / sum`` the sequential walker feeds to
  ``rng.choice``.

RNG discipline: the engine consumes the *same generator* the sequential
walker would, but draws different variates (uniform blocks for starts,
one Gumbel block per superstep instead of one ``rng.choice`` per
particle-step), so individual selections differ for a fixed seed while
the **distribution** over tips is identical — the property tests pin
both the per-superstep normalization bit-for-bit and the tip
distribution statistically.  Runs stay deterministic for a fixed seed,
and serial/parallel executors stay bit-identical to each other because
both run the same engine against the same keyed streams.

Edge semantics: the snapshot keeps exactly the edges whose **both**
endpoints are visible, matching ``view.approvers`` — and matching the
sequential start sampler, which filters its descent to visible parents
for the same reason (on a delay-bounded view a transaction can
propagate before its parent; the issuer exemption makes that reachable
in the async simulator).
"""

from __future__ import annotations

import weakref
from typing import Callable, Sequence

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.view import TangleView

__all__ = [
    "TangleSnapshot",
    "snapshot_for",
    "clear_snapshot_cache",
    "batched_walk_starts",
    "padded_normalize",
    "lockstep_walks",
    "WalkDeadlineExceeded",
]

ScoreFn = Callable[[np.ndarray], np.ndarray]


class WalkDeadlineExceeded(RuntimeError):
    """A lockstep walk ran out of its deadline budget mid-flight.

    Raised by :func:`lockstep_walks` (and :func:`batched_walk_starts`)
    when the ``deadline`` object passed in reports ``expired`` at a
    superstep boundary.  The walk's partial state is discarded — callers
    that must answer anyway (the service's degradation ladder) catch
    this and fall back to a cheaper selection mode.  The check never
    consumes the random generator, so a walk given a deadline that does
    not fire draws exactly the stream it would have drawn without one.
    """


def _pad_csr(
    indptr: np.ndarray, indices: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Dense ``(N, max(counts))`` matrix of CSR rows, padded by
    repeating each row's first entry (0 for empty rows).

    The repeat-first padding keeps every lane a *real* entry, so score
    lookups on padding lanes stay well-defined; callers mask padding
    out of every reduction and sample (column draws for parents are
    ``floor(u * count) < count``; supersteps carry a valid mask).
    """
    n = len(counts)
    width = max(1, int(counts.max(initial=0)))
    padded = np.zeros((n, width), dtype=np.int64)
    for node in range(n):
        row = indices[indptr[node] : indptr[node + 1]]
        if row.size:
            padded[node, : row.size] = row
            padded[node, row.size :] = row[0]
    return padded


def _popcount_rows(masks: np.ndarray) -> np.ndarray:
    """Per-row set-bit count of a uint64 bitset matrix."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(masks).sum(axis=1, dtype=np.int64)
    return np.unpackbits(
        masks.view(np.uint8), axis=1
    ).sum(axis=1, dtype=np.int64)


class TangleSnapshot:
    """CSR adjacency of a tangle's visible sub-DAG over int node ids.

    Node ids are positions in insertion (topological) order of the
    visible transactions — parents always have a *smaller* id than the
    transactions approving them.  ``ids[node]`` recovers the transaction
    id; ``index[tx_id]`` the node.  The snapshot is immutable: build it
    from a frozen view and reuse it for every walk of the epoch.
    """

    def __init__(
        self,
        ids: list[str],
        parent_lists: list[list[int]],
        approver_lists: list[list[int]],
    ):
        self.ids = ids
        self.index = {tx_id: node for node, tx_id in enumerate(ids)}
        n = len(ids)

        def to_csr(lists: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
            counts = np.fromiter(
                (len(adjacency) for adjacency in lists), dtype=np.int64, count=n
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.fromiter(
                (i for adjacency in lists for i in adjacency),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            return indptr, indices

        self.parent_indptr, self.parent_indices = to_csr(parent_lists)
        self.approver_indptr, self.approver_indices = to_csr(approver_lists)
        self.parent_counts = np.diff(self.parent_indptr)
        self.approver_counts = np.diff(self.approver_indptr)
        self.max_approvers = int(self.approver_counts.max(initial=0))
        # Shared arange scratch: supersteps slice prefixes instead of
        # re-allocating one arange per reduction.
        self._column_range = np.arange(max(1, self.max_approvers))
        self._parents_padded: np.ndarray | None = None
        self._approvers_padded: np.ndarray | None = None
        # Parentless nodes (genesis; plus orphans on views whose parents
        # are invisible): where depth descents terminate early.
        self.sink_nodes = np.flatnonzero(self.parent_counts == 0)
        self._longest_past_path: np.ndarray | None = None
        # Set by build() when the snapshot covers a whole tangle: a
        # weakref to that tangle plus its length, so weight queries can
        # be answered from its incremental index instead of the bitset
        # pass (valid only while the tangle hasn't grown — new approvers
        # outside the snapshot must not leak into snapshot weights).
        self._weight_authority: "weakref.ref | None" = None
        self._weight_authority_len = -1
        self._cumulative_float: np.ndarray | None = None
        # Tips: visible nodes with no visible approver, in the sorted-id
        # order tangle.tips() / view.tips() produce.
        tip_nodes = np.flatnonzero(self.approver_counts == 0)
        self.tip_nodes = np.array(
            sorted(tip_nodes.tolist(), key=ids.__getitem__), dtype=np.int64
        )
        self._cumulative: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def build(cls, view) -> "TangleSnapshot":
        """Snapshot ``view`` (a :class:`Tangle` or any visibility view).

        One pass over ``view.transactions()``: an edge is kept iff both
        endpoints are visible, which reproduces ``view.approvers``
        exactly (on a raw tangle every edge is kept).
        """
        transactions = view.transactions()
        ids = [tx.tx_id for tx in transactions]
        index = {tx_id: node for node, tx_id in enumerate(ids)}
        parent_lists: list[list[int]] = [[] for _ in ids]
        approver_lists: list[list[int]] = [[] for _ in ids]
        for node, tx in enumerate(transactions):
            for parent in tx.parents:
                parent_node = index.get(parent)
                if parent_node is None:  # parent not visible in this view
                    continue
                parent_lists[node].append(parent_node)
                approver_lists[parent_node].append(node)
        snapshot = cls(ids, parent_lists, approver_lists)
        authority = None
        if isinstance(view, Tangle):
            authority = view
        elif isinstance(view, TangleView) and (
            view.max_round >= view._tangle.last_round_index
        ):
            authority = view._tangle
        if authority is not None:
            snapshot._weight_authority = weakref.ref(authority)
            snapshot._weight_authority_len = len(authority)
        return snapshot

    def cumulative_weights_float(self) -> np.ndarray:
        """:meth:`cumulative_weights` as float64, cached — a complete,
        hole-free score table the weighted walk passes straight in as
        its memo (shared across every selection of the epoch; the
        engine never writes to a memo without NaN holes)."""
        if self._cumulative_float is None:
            self._cumulative_float = self.cumulative_weights().astype(np.float64)
        return self._cumulative_float

    def parents_padded(self) -> np.ndarray:
        """``(N, max_parents)`` padded parent matrix (:func:`_pad_csr`).

        Parent degree is tiny (``num_tips``, usually 2), so a dense
        padded matrix turns one descent level into a single 2-D gather.
        Genesis-like rows (no parents) self-pad with node 0; the
        descent mask stops those particles before the value is used.
        """
        if self._parents_padded is None:
            self._parents_padded = _pad_csr(
                self.parent_indptr, self.parent_indices, self.parent_counts
            )
        return self._parents_padded

    def approvers_padded(self) -> np.ndarray:
        """``(N, max_approvers)`` padded approver matrix (:func:`_pad_csr`).

        One 2-D gather replaces the per-superstep CSR position
        arithmetic; the engine's valid mask keeps padding lanes out of
        every reduction and sample.
        """
        if self._approvers_padded is None:
            self._approvers_padded = _pad_csr(
                self.approver_indptr, self.approver_indices, self.approver_counts
            )
        return self._approvers_padded

    def longest_past_path(self) -> np.ndarray:
        """Longest parent-path length from each node to a parentless one.

        One topological pass (parents precede children in node order).
        A depth budget of at least this many steps is guaranteed to
        bottom out regardless of which parents the descent draws —
        :func:`batched_walk_starts` uses it to resolve deep descents
        without stepping them.
        """
        if self._longest_past_path is None:
            n = len(self.ids)
            longest = np.zeros(n, dtype=np.int64)
            indptr, indices = self.parent_indptr, self.parent_indices
            for node in range(n):
                row = indices[indptr[node] : indptr[node + 1]]
                if row.size:
                    longest[node] = 1 + longest[row].max()
            self._longest_past_path = longest
        return self._longest_past_path

    def cumulative_weights(self) -> np.ndarray:
        """Visible cumulative weight (1 + visible future cone) per node.

        A snapshot that covers a whole tangle answers from the tangle's
        incremental index in O(N) (valid while the tangle hasn't grown
        past the snapshot).  Truncated views — where the index, which
        counts the *whole* future cone, does not apply — pay a
        reverse-topological bitset pass, ``future(i) = union over
        approvers a of (future(a) | {a})``, O(N^2 / 64) words of work.
        Either way the values equal ``view.cumulative_weight(id)`` for
        every visible id; the tests pin that.
        """
        if self._cumulative is None and self._weight_authority is not None:
            tangle = self._weight_authority()
            if tangle is not None and len(tangle) == self._weight_authority_len:
                self._cumulative = tangle.cumulative_weights(self.ids).astype(
                    np.int64
                )
        if self._cumulative is None:
            n = len(self.ids)
            words = max(1, (n + 63) // 64)
            masks = np.zeros((n, words), dtype=np.uint64)
            indptr, indices = self.approver_indptr, self.approver_indices
            one = np.uint64(1)
            # Approvers have larger node ids, so a reverse sweep sees
            # every approver's mask completed before it is consumed.
            for node in range(n - 1, -1, -1):
                row = masks[node]
                for a in indices[indptr[node] : indptr[node + 1]]:
                    row |= masks[a]
                    row[a >> 6] |= one << np.uint64(a & 63)
            self._cumulative = 1 + _popcount_rows(masks)
        return self._cumulative


# --------------------------------------------------------- epoch caching
#: fingerprint -> (weakref to the anchoring tangle, snapshot).  Bounded
#: FIFO: an epoch needs one live entry per distinct view, and tangles
#: are append-only so (id, len, visibility bound) pins the visible set.
_SNAPSHOT_CACHE: dict = {}
_SNAPSHOT_CACHE_LIMIT = 8


def _fingerprint(view) -> tuple[object | None, tuple | None]:
    """(anchor object, append-only cache key) for a view, when safe.

    Keys combine the anchoring tangle's identity and length (append-only
    ⇒ same object at same length means same content) with the view's
    visibility bound.  Unknown view types return ``(None, None)`` and
    are rebuilt every time.
    """
    if isinstance(view, Tangle):
        return view, ("tangle", id(view), len(view))
    if isinstance(view, TangleView):
        tangle = view._tangle
        return tangle, ("view", id(tangle), len(tangle), view.max_round)
    # TimedTangleView lives in repro.fl (a layer above); duck-type it to
    # keep the dependency pointing downward.  Visibility times are set
    # once at publish and never mutated, so (len, now, observer) pins
    # the visible set.
    if hasattr(view, "_visible_from") and hasattr(view, "now"):
        tangle = view._tangle
        return tangle, (
            "timed",
            id(tangle),
            len(tangle),
            view.now,
            getattr(view, "_observer", None),
            # Distinct visibility maps over the same tangle are distinct
            # views even at the same `now` (map identity; entries for
            # existing transactions are set once at publish).
            id(view._visible_from),
            id(getattr(view, "_published_at", None)),
        )
    return None, None


def snapshot_for(view) -> TangleSnapshot:
    """The epoch snapshot for ``view``, built once and cached.

    Every walk of a round / publish epoch hits the same visible state;
    the cache turns N clients x num_tips walks into one CSR build.  A
    weakref identity check guards against ``id()`` reuse after GC.
    """
    anchor, key = _fingerprint(view)
    if key is None:
        return TangleSnapshot.build(view)
    entry = _SNAPSHOT_CACHE.get(key)
    if entry is not None and entry[0]() is anchor:
        return entry[1]
    snapshot = TangleSnapshot.build(view)
    # Purge entries whose tangle died before FIFO-evicting live ones, so
    # snapshots of collected tangles don't linger for up to 8 epochs.
    for dead_key in [k for k, (ref, _) in _SNAPSHOT_CACHE.items() if ref() is None]:
        del _SNAPSHOT_CACHE[dead_key]
    while len(_SNAPSHOT_CACHE) >= _SNAPSHOT_CACHE_LIMIT:
        _SNAPSHOT_CACHE.pop(next(iter(_SNAPSHOT_CACHE)))
    _SNAPSHOT_CACHE[key] = (weakref.ref(anchor), snapshot)
    return snapshot


def clear_snapshot_cache() -> None:
    """Drop all cached snapshots (benchmarks use this between variants)."""
    _SNAPSHOT_CACHE.clear()


# ------------------------------------------------------------ walk starts
def batched_walk_starts(
    snapshot: TangleSnapshot,
    count: int,
    rng: np.random.Generator,
    *,
    depth_range: tuple[int, int] = (15, 25),
    deadline=None,
) -> np.ndarray:
    """``count`` walk starting nodes, the Popov descent vectorized.

    Distributionally identical to ``count`` calls of
    :func:`repro.dag.random_walk.sample_walk_start`: a uniform tip, a
    uniform depth in ``depth_range``, then uniform parent choices,
    stopping early at genesis — but drawn in blocks (all tips, all
    depths, then one vectorized parent choice per descent level).

    ``deadline`` (any object with an ``expired`` attribute) is checked
    once on entry — the descent itself is a handful of vector ops — and
    raises :class:`WalkDeadlineExceeded` when already blown.
    """
    low, high = depth_range
    if low < 0 or high < low:
        raise ValueError(f"invalid depth range {depth_range}")
    if deadline is not None and deadline.expired:
        raise WalkDeadlineExceeded("deadline expired before walk starts")
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    tips = snapshot.tip_nodes
    current = tips[rng.integers(0, len(tips), size=count)]
    depths = rng.integers(low, high + 1, size=count)
    parent_counts = snapshot.parent_counts
    max_depth = int(depths.max(initial=0))
    if max_depth == 0 or len(snapshot) == 1:
        return current
    # One uniform block for every potential (level, particle) choice:
    # floor(u * k) is exactly a uniform draw over k parents, so the
    # descent distribution matches the per-step sampler's.  The loop
    # works full-width with masks (no index-list rebuild per level);
    # finished particles keep their node through the ``where``.
    # A particle whose depth budget covers the longest possible path
    # below its tip bottoms out whatever parents it draws; with a single
    # sink (every proper tangle: genesis) its endpoint is known without
    # stepping.  Only the undecided particles pay for descent levels.
    if snapshot.sink_nodes.size == 1:
        sink = snapshot.sink_nodes[0]
        resolved = depths >= snapshot.longest_past_path()[current]
        if resolved.all():
            return np.full(count, sink, dtype=np.int64)
        current = np.where(resolved, sink, current)
    if count <= 4:
        # A handful of particles cannot amortize full-width vector ops
        # across ~20 descent levels; scalar CSR walking is cheaper and
        # draws from the identical distribution.
        indptr, indices = snapshot.parent_indptr, snapshot.parent_indices
        uniforms = iter(rng.random(int(depths.sum())))
        for particle in range(count):
            node = int(current[particle])
            for _ in range(int(depths[particle])):
                k = parent_counts[node]
                if k == 0:
                    break
                node = int(indices[indptr[node] + int(next(uniforms) * k)])
            current[particle] = node
        return current
    uniforms = rng.random((max_depth, count))
    parents = snapshot.parents_padded()
    k = parent_counts[current]
    for level in range(max_depth):
        descending = (depths > level) & (k > 0)
        if not descending.any():
            break
        picks = (uniforms[level] * k).astype(np.int64)
        current = np.where(descending, parents[current, picks], current)
        k = parent_counts[current]
    return current


# --------------------------------------------------------------- stepping
def padded_normalize(
    scores: np.ndarray, valid: np.ndarray, normalization: str
) -> np.ndarray:
    """Row-wise Eq. 1 / Eq. 3 normalization over a padded ``(L, K)`` block.

    ``valid`` masks each row's real candidates (a row's first
    ``count_i`` columns); padding cells may hold anything, including
    NaN, and their outputs are unspecified — callers mask them out
    before sampling.  On the valid cells the elementwise arithmetic is
    exactly that of :func:`~repro.dag.tip_selection.normalize_standard`
    / :func:`~repro.dag.tip_selection.normalize_dynamic` applied to
    each row (subtract the row max; for ``"dynamic"`` divide by the row
    spread, falling back to the shift alone at zero spread), so the
    result is bit-identical per candidate.
    """
    row_max = np.where(valid, scores, -np.inf).max(axis=1, keepdims=True)
    shifted = scores - row_max
    if normalization == "standard":
        return shifted
    if normalization != "dynamic":
        raise ValueError(f"unknown normalization {normalization!r}")
    row_min = np.where(valid, scores, np.inf).min(axis=1, keepdims=True)
    spread = row_max - row_min
    positive = spread > 0
    return np.where(positive, shifted / np.where(positive, spread, 1.0), shifted)


def _fill_score_memo(
    score_memo: np.ndarray,
    candidates: np.ndarray,
    score_fn: ScoreFn,
    known: np.ndarray | None = None,
) -> None:
    """Score the distinct not-yet-scored nodes among ``candidates`` into
    the memo (one ``score_fn`` call); no-op when everything is known.

    ``known`` is the explicit scored-mask: filled indices are marked
    known *even when the score itself is NaN*, so a score function that
    returns NaN for a node (a corrupted model, a failed evaluation) is
    scored exactly once per call instead of being mistaken for a cache
    miss forever.  Without ``known`` the legacy NaN-sentinel convention
    applies (NaN in the memo = not yet scored)."""
    if known is None:
        missing = np.unique(candidates[np.isnan(score_memo[candidates])])
    else:
        missing = np.unique(candidates[~known[candidates]])
    if missing.size == 0:
        return
    fresh = np.asarray(score_fn(missing), dtype=np.float64)
    if fresh.shape != missing.shape:
        raise ValueError(
            f"score_fn returned shape {fresh.shape} for {missing.shape[0]} nodes"
        )
    score_memo[missing] = fresh
    if known is not None:
        known[missing] = True


def lockstep_walks(
    snapshot: TangleSnapshot,
    starts: Sequence[int] | np.ndarray,
    score_fn: ScoreFn,
    *,
    alpha: float,
    normalization: str = "standard",
    rng: np.random.Generator,
    evaluation_counter: Callable[[int], None] | None = None,
    score_memo: np.ndarray | None = None,
    trace: list | None = None,
    deadline=None,
) -> np.ndarray:
    """Walk every particle from its start to a tip, one superstep at a time.

    Per superstep, over the particles not yet on a tip:

    1. gather the union of their candidate frontiers (CSR row gather);
    2. score the **unique not-yet-scored** candidates with one
       ``score_fn`` call — the widest evaluation batch the walk plane
       has (candidates of every live particle, deduplicated against
       everything already scored);
    3. normalize scores row-wise over a padded frontier block
       (:func:`padded_normalize`, the sequential walker's exact
       arithmetic);
    4. sample each particle's next node by segment-wise Gumbel-max over
       ``alpha * normalized`` — equivalent to an independent
       ``rng.choice`` per particle with probabilities
       ``exp(alpha * normalized) / sum``.

    ``evaluation_counter`` preserves the sequential accounting exactly:
    it is called once per *live particle* per superstep with that
    particle's candidate count (never the deduplicated union size), so
    Figure 15's evaluations-per-walk measure is unchanged by batching.

    ``score_memo`` is an optional ``len(snapshot)``-sized float64 array
    with NaN marking not-yet-scored nodes; scores are filled in as the
    walk discovers nodes.  A caller that walks the same snapshot
    repeatedly (a selection's particles, a round's repeated selections)
    passes the same memo to skip the dedup-and-score round-trip for
    every previously seen node — sound because a node's score is fixed
    for the lifetime of a snapshot (a transaction's model never
    changes, and cumulative weights are frozen with the visible set).
    Omitted, a fresh memo still dedups within the call.

    ``trace`` (tests/debugging) appends one dict per superstep with the
    live particle indices, their nodes and candidate counts, each
    particle's candidate list, and the chosen next nodes.

    ``deadline`` (any object exposing an ``expired`` attribute, e.g.
    :class:`repro.service.resilience.Deadline`) is checked at every
    superstep boundary — between batches of score evaluations, never
    inside one — and raises :class:`WalkDeadlineExceeded` when blown.
    Scores already written into a caller-owned ``score_memo`` survive
    the abort, so a retry (or a cheaper fallback walking the same
    snapshot) keeps the evaluations the doomed walk paid for.  The
    check draws nothing: a walk whose deadline never fires consumes the
    generator exactly as an undeadlined walk would.

    Returns the final node of every particle (all tips of the snapshot).
    """
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    current = np.array(starts, dtype=np.int64, copy=True)
    degrees = snapshot.approver_counts
    indptr, indices = snapshot.approver_indptr, snapshot.approver_indices
    if score_memo is None:
        score_memo = np.full(len(snapshot), np.nan)
    elif score_memo.shape != (len(snapshot),):
        raise ValueError(
            f"score_memo must have shape ({len(snapshot)},), "
            f"got {score_memo.shape}"
        )
    approvers = snapshot.approvers_padded()
    columns = snapshot._column_range
    rows = np.arange(len(current))
    # The scored-mask is explicit: NaN in the memo marks "not yet
    # scored" only at entry (the construction convention of every
    # caller); once a node is filled it stays known even if its score
    # *is* NaN — a score function may legitimately return NaN for a
    # corrupted model, and re-scoring it every superstep (the old
    # NaN-as-sentinel ambiguity) both wasted evaluations and let NaN
    # win every argmax.  A memo with no holes at entry skips the
    # per-superstep miss probe entirely, as before.
    known = ~np.isnan(score_memo)
    memo_may_miss = not known.all()
    live = np.flatnonzero(degrees[current] > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        while live.size:
            if deadline is not None and deadline.expired:
                raise WalkDeadlineExceeded(
                    f"deadline expired with {live.size} particle(s) in flight"
                )
            if live.size == 1 and trace is None:
                # Tail finisher: one straggler left — the padded
                # frontier machinery costs more than it amortizes, so
                # walk it out with scalar steps (same scores, same
                # normalization arithmetic, same Gumbel-max law).
                particle = int(live[0])
                node = int(current[particle])
                while degrees[node] > 0:
                    if deadline is not None and deadline.expired:
                        raise WalkDeadlineExceeded(
                            "deadline expired in the tail finisher"
                        )
                    k = int(degrees[node])
                    if evaluation_counter is not None:
                        evaluation_counter(k)
                    start = indptr[node]
                    if k == 1:
                        node = int(indices[start])
                        continue
                    row = indices[start : start + k]
                    scores = score_memo[row]
                    if memo_may_miss and not known[row].all():
                        _fill_score_memo(score_memo, row, score_fn, known)
                        scores = score_memo[row]
                    finite = np.isfinite(scores)
                    if finite.all():
                        normalized = padded_normalize(
                            scores[None, :],
                            np.ones((1, k), dtype=bool),
                            normalization,
                        )[0]
                        logits = alpha * normalized
                    elif finite.any():
                        # Non-finite candidates (corrupted models) never
                        # attract the walk: their logits degrade to -inf
                        # while the finite ones keep the exact standard
                        # arithmetic over the reduced candidate set.
                        normalized = padded_normalize(
                            scores[None, :], finite[None, :], normalization
                        )[0]
                        logits = np.where(finite, alpha * normalized, -np.inf)
                    else:
                        # Every candidate is corrupt — degrade to a
                        # uniform step rather than crash or pick NaN.
                        logits = np.zeros(k)
                    z = logits - np.log(rng.standard_exponential(k))
                    node = int(row[int(z.argmax())])
                current[particle] = node
                break
            nodes = current[live]
            counts = degrees[nodes]
            if evaluation_counter is not None:
                for c in counts:
                    evaluation_counter(int(c))
            frontier = approvers[nodes]  # (L, width) padded candidates
            chosen = frontier[:, 0]  # single-candidate rows: final
            kmax = int(counts.max())
            if kmax > 1:
                # Row i's first counts[i] lanes are its candidates, the
                # rest repeats of its first — the valid mask keeps the
                # padding out of every reduction and sample.
                candidates = frontier[:, :kmax]
                valid = columns[:kmax] < counts[:, None]
                scores = score_memo[candidates]
                if memo_may_miss:
                    unknown = ~known[candidates] & valid
                    if unknown.any():
                        _fill_score_memo(
                            score_memo, candidates[unknown], score_fn, known
                        )
                        scores = score_memo[candidates]
                # Gumbel-max per row: argmax(logit - log E), E ~ Exp(1),
                # draws from softmax(logit) — one block of exponentials
                # per superstep replaces one rng.choice per particle.
                # Softmax is invariant to per-row constant shifts, so
                # the standard (Eq. 1) subtract-the-max never has to be
                # materialized: alpha * score is the same logit up to a
                # row constant.  Dynamic (Eq. 3) divides by the row
                # spread — a genuine per-row rescale — so only it pays
                # for the masked reductions, via the shared
                # padded_normalize arithmetic.
                bad = ~np.isfinite(scores) & valid
                any_bad = bool(bad.any())
                if normalization == "standard":
                    logits = alpha * scores
                else:
                    # Exclude non-finite candidates from the row
                    # reductions so one corrupt score cannot poison its
                    # whole row's max/spread.
                    norm_valid = valid & ~bad if any_bad else valid
                    logits = alpha * padded_normalize(
                        scores, norm_valid, normalization
                    )
                if any_bad:
                    # Corrupted candidates never attract the walk; a row
                    # with *no* finite candidate degrades to a uniform
                    # pick among its (corrupt) candidates instead of
                    # letting NaN win the argmax.  The exponential block
                    # below keeps its shape either way, so the rng
                    # stream position is independent of corruption.
                    logits = np.where(bad, -np.inf, logits)
                    alive = (valid & ~bad).any(axis=1)
                    if not alive.all():
                        logits = np.where(
                            ~alive[:, None] & valid, 0.0, logits
                        )
                z = logits - np.log(rng.standard_exponential(valid.shape))
                picks = np.where(valid, z, -np.inf).argmax(axis=1)
                chosen = np.where(
                    counts > 1, candidates[rows[: len(nodes)], picks], chosen
                )
            if trace is not None:
                trace.append(
                    {
                        "live": live.copy(),
                        "nodes": nodes.copy(),
                        "counts": counts.copy(),
                        "candidates": [
                            indices[indptr[n] : indptr[n] + degrees[n]].copy()
                            for n in nodes
                        ],
                        "chosen": chosen.copy(),
                    }
                )
            current[live] = chosen
            live = live[degrees[chosen] > 0]
    return current
