"""Lockstep multi-walk engine: frontier-batched tip selection.

The sequential walkers (:mod:`repro.dag.random_walk`) advance one
particle at a time: every step pays a ``tangle.approvers`` list build,
a per-step accuracy lookup, and a slow ``rng.choice`` — pure Python
overhead multiplied by ``count`` particles per selection and by every
active client per round.  This module runs **all particles of a
selection in lockstep** over an immutable array snapshot of the visible
tangle:

- :class:`TangleSnapshot` flattens a tangle (or any visibility view)
  into CSR adjacency over dense int node ids: approver lists, parent
  lists, the tip set, and (lazily) cumulative weights.  Built once per
  publish epoch and reused by every walk against the same visible state
  (:func:`snapshot_for` caches by an append-only fingerprint).  When an
  epoch merely *grows* the previous one, :meth:`TangleSnapshot.extend`
  derives the new snapshot from the cached one in O(delta) — CSR rows
  appended, candidate matrices patched, bitset cumulative weights
  extended by delta columns — bit-identical to a cold rebuild, so at
  10^5+ transactions per-publish maintenance cost stays flat instead of
  replaying the whole history (see ``docs/scaling.md``).
- :func:`batched_walk_starts` vectorizes the Popov depth descent: all
  tip draws, all depths, then one gather per descent level.
- :func:`lockstep_walks` advances every live particle one superstep at
  a time: the union of all live particles' candidate frontiers is
  scored in **one** batch call (this is what widens the fused
  ``Classifier.accuracy_many`` batches beyond a single particle's
  approver list), candidate scores are normalized segment-wise with the
  exact arithmetic of :func:`repro.dag.tip_selection.normalize_standard`
  / ``normalize_dynamic``, and every particle's next node is sampled in
  one shot by segment-wise **Gumbel-max** over ``alpha * normalized``
  logits — which draws from precisely the softmax distribution
  ``exp(alpha * normalized) / sum`` the sequential walker feeds to
  ``rng.choice``.

RNG discipline: the engine consumes the *same generator* the sequential
walker would, but draws different variates (uniform blocks for starts,
one Gumbel block per superstep instead of one ``rng.choice`` per
particle-step), so individual selections differ for a fixed seed while
the **distribution** over tips is identical — the property tests pin
both the per-superstep normalization bit-for-bit and the tip
distribution statistically.  Runs stay deterministic for a fixed seed,
and serial/parallel executors stay bit-identical to each other because
both run the same engine against the same keyed streams.

Edge semantics: the snapshot keeps exactly the edges whose **both**
endpoints are visible, matching ``view.approvers`` — and matching the
sequential start sampler, which filters its descent to visible parents
for the same reason (on a delay-bounded view a transaction can
propagate before its parent; the issuer exemption makes that reachable
in the async simulator).
"""

from __future__ import annotations

import weakref
from typing import Callable, Sequence

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.view import TangleView

__all__ = [
    "TangleSnapshot",
    "snapshot_for",
    "clear_snapshot_cache",
    "batched_walk_starts",
    "padded_normalize",
    "lockstep_walks",
    "WalkDeadlineExceeded",
]

ScoreFn = Callable[[np.ndarray], np.ndarray]


class WalkDeadlineExceeded(RuntimeError):
    """A lockstep walk ran out of its deadline budget mid-flight.

    Raised by :func:`lockstep_walks` (and :func:`batched_walk_starts`)
    when the ``deadline`` object passed in reports ``expired`` at a
    superstep boundary.  The walk's partial state is discarded — callers
    that must answer anyway (the service's degradation ladder) catch
    this and fall back to a cheaper selection mode.  The check never
    consumes the random generator, so a walk given a deadline that does
    not fire draws exactly the stream it would have drawn without one.
    """


def _pad_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    counts: np.ndarray,
    width: int | None = None,
) -> np.ndarray:
    """Dense ``(N, width)`` matrix of CSR rows, padded by repeating each
    row's first entry (0 for empty rows).

    The repeat-first padding keeps every lane a *real* entry, so score
    lookups on padding lanes stay well-defined; callers mask padding
    out of every reduction and sample (column draws for parents are
    ``floor(u * count) < count``; supersteps carry a valid mask).

    ``width`` defaults to ``max(counts)``; :meth:`TangleSnapshot.extend`
    passes it explicitly when padding a delta slice to the base
    matrix's lane count.  Fully vectorized: one fill from each row's
    first entry, one scatter of the real entries.
    """
    n = len(counts)
    if width is None:
        width = max(1, int(counts.max(initial=0)))
    first = np.zeros(n, dtype=np.int64)
    nonempty = counts > 0
    first[nonempty] = indices[indptr[:-1][nonempty]]
    padded = np.repeat(first, width).reshape(n, width)
    if len(indices):
        rows = np.repeat(np.arange(n), counts)
        cols = np.arange(len(indices)) - np.repeat(indptr[:-1], counts)
        padded[rows, cols] = indices
    return padded


def _popcount_rows(masks: np.ndarray) -> np.ndarray:
    """Per-row set-bit count of a uint64 bitset matrix."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(masks).sum(axis=1, dtype=np.int64)
    return np.unpackbits(
        masks.view(np.uint8), axis=1
    ).sum(axis=1, dtype=np.int64)


class TangleSnapshot:
    """CSR adjacency of a tangle's visible sub-DAG over int node ids.

    Node ids are positions in insertion (topological) order of the
    visible transactions — parents always have a *smaller* id than the
    transactions approving them.  ``ids[node]`` recovers the transaction
    id; ``index[tx_id]`` the node.  A snapshot's arrays never change
    once built: build it from a frozen view and reuse it for every walk
    of the epoch.  When the epoch rolls over, :meth:`extend` produces
    the *next* snapshot as a delta on this one (append-only growth keeps
    node ids stable), so a long-running tangle pays O(new transactions)
    per publish epoch rather than O(history) — the delta protocol
    ``docs/scaling.md`` specifies.
    """

    def __init__(
        self,
        ids: list[str],
        parent_lists: list[list[int]],
        approver_lists: list[list[int]],
    ):
        self.ids = ids
        self.index = {tx_id: node for node, tx_id in enumerate(ids)}
        n = len(ids)

        def to_csr(lists: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
            counts = np.fromiter(
                (len(adjacency) for adjacency in lists), dtype=np.int64, count=n
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.fromiter(
                (i for adjacency in lists for i in adjacency),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            return indptr, indices

        self.parent_indptr, self.parent_indices = to_csr(parent_lists)
        self.approver_indptr, self.approver_indices = to_csr(approver_lists)
        self.parent_counts = np.diff(self.parent_indptr)
        self.approver_counts = np.diff(self.approver_indptr)
        self.max_approvers = int(self.approver_counts.max(initial=0))
        # Shared arange scratch: supersteps slice prefixes instead of
        # re-allocating one arange per reduction.
        self._column_range = np.arange(max(1, self.max_approvers))
        self._parents_padded: np.ndarray | None = None
        self._approvers_padded: np.ndarray | None = None
        # Parentless nodes (genesis; plus orphans on views whose parents
        # are invisible): where depth descents terminate early.
        self.sink_nodes = np.flatnonzero(self.parent_counts == 0)
        self._longest_past_path: np.ndarray | None = None
        # Set by build() when the snapshot covers a whole tangle: a
        # weakref to that tangle plus its length, so weight queries can
        # be answered from its incremental index instead of the bitset
        # pass (valid only while the tangle hasn't grown — new approvers
        # outside the snapshot must not leak into snapshot weights).
        self._weight_authority: "weakref.ref | None" = None
        self._weight_authority_len = -1
        self._cumulative_float: np.ndarray | None = None
        # Tips: visible nodes with no visible approver, in the sorted-id
        # order tangle.tips() / view.tips() produce.
        tip_nodes = np.flatnonzero(self.approver_counts == 0)
        self.tip_nodes = np.array(
            sorted(tip_nodes.tolist(), key=ids.__getitem__), dtype=np.int64
        )
        self._cumulative: np.ndarray | None = None
        # Delta-extension provenance (set by build()/extend(); directly
        # constructed snapshots stay non-extendable): which tangle this
        # snapshot was cut from, at what length and compaction epoch,
        # under which visibility bound, and how many of the source's
        # transactions the bound hid.  snapshot_for() consults these to
        # route a grown view to extend() instead of a cold rebuild.
        self._anchor: "weakref.ref | None" = None
        self._source_len = n
        self._hidden = 0
        self._view_kind: str | None = None
        self._view_bound: object = None
        self._view_maps: tuple | None = None
        self._epoch = 0
        self._max_round_seen: int | None = None

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def build(cls, view) -> "TangleSnapshot":
        """Snapshot ``view`` (a :class:`Tangle` or any visibility view).

        One pass over ``view.transactions()``: an edge is kept iff both
        endpoints are visible, which reproduces ``view.approvers``
        exactly (on a raw tangle every edge is kept).
        """
        transactions = view.transactions()
        ids = [tx.tx_id for tx in transactions]
        index = {tx_id: node for node, tx_id in enumerate(ids)}
        parent_lists: list[list[int]] = [[] for _ in ids]
        approver_lists: list[list[int]] = [[] for _ in ids]
        for node, tx in enumerate(transactions):
            for parent in tx.parents:
                parent_node = index.get(parent)
                if parent_node is None:  # parent not visible in this view
                    continue
                parent_lists[node].append(parent_node)
                approver_lists[parent_node].append(node)
        snapshot = cls(ids, parent_lists, approver_lists)
        authority = None
        if isinstance(view, Tangle):
            authority = view
        elif isinstance(view, TangleView) and (
            view.max_round >= view._tangle.last_round_index
        ):
            authority = view._tangle
        if authority is not None:
            snapshot._weight_authority = weakref.ref(authority)
            snapshot._weight_authority_len = len(authority)
        anchor, key = _fingerprint(view)
        if key is not None:
            snapshot._stamp_provenance(anchor, key, transactions)
        return snapshot

    def _stamp_provenance(self, anchor, key: tuple, transactions) -> None:
        """Record where this snapshot was cut from (see ``__init__``)."""
        self._anchor = weakref.ref(anchor)
        self._source_len = key[2]
        self._hidden = key[2] - len(self.ids)
        self._epoch = key[-1]
        self._view_kind = key[0]
        if key[0] == "view":
            self._view_bound = key[3]
        elif key[0] == "timed":
            self._view_bound = key[3]
            self._view_maps = (key[5], key[6], key[4])
        self._max_round_seen = max(
            (tx.round_index for tx in transactions), default=-1
        )

    def _can_extend_to(self, anchor, key: tuple) -> bool:
        """Whether this snapshot's visible set is a prefix of ``key``'s.

        True iff the target view is anchored to the same live tangle at
        the same compaction epoch and every transaction visible here is
        visible there, in the same insertion order — the condition under
        which the target's node ids extend this snapshot's.  The rules
        per target kind:

        - a raw tangle sees everything, so any snapshot that hid
          nothing (``_hidden == 0``) extends to it;
        - a round-bounded view extends a same-bound snapshot (same
          predicate, append-only growth), or any hole-free snapshot
          whose highest seen round the new bound covers;
        - a delay-bounded (timed) view extends only a timed snapshot
          over the *same* visibility maps, at the same instant or — when
          the snapshot hid nothing — any later one (visibility times
          are written once at publish, so visibility is monotone in
          ``now``).
        """
        if self._view_kind is None or anchor is None:
            return False
        if self._anchor is None or self._anchor() is not anchor:
            return False
        if key[-1] != self._epoch or key[2] < self._source_len:
            return False
        kind = key[0]
        if kind == "tangle":
            return self._hidden == 0
        if kind == "view":
            if self._view_kind == "view" and self._view_bound == key[3]:
                return True
            return self._hidden == 0 and key[3] >= self._max_round_seen
        if kind == "timed":
            if self._view_kind != "timed":
                return False
            if self._view_maps != (key[5], key[6], key[4]):
                return False
            if key[3] == self._view_bound:
                return True
            return self._hidden == 0 and key[3] >= self._view_bound
        return False

    def extend(self, view) -> "TangleSnapshot":
        """A snapshot of ``view`` built as a delta on top of this one.

        The O(history) work of :meth:`build` — the Python pass over
        every visible transaction and its edges — shrinks to
        O(delta): only transactions the source tangle gained since this
        snapshot was cut are scanned; everything else is appended or
        patched at C speed (CSR row append, padded-matrix row stack,
        and a delta-width bitset pass for materialized cumulative
        weights).  The result is **bit-identical** to a cold
        ``build(view)``: same arrays, same walk distributions, same
        Gumbel stream consumption, same ``evaluation_counter`` calls —
        the scale benchmark and the extension tests pin this.

        Returns a *new* snapshot when the delta is non-empty (callers
        key memos by snapshot identity); returns ``self`` with its
        source length advanced when the tangle grew but nothing new is
        visible under ``view``'s bound.  Raises ``ValueError`` when the
        target is not an extension of this snapshot — use
        :meth:`_can_extend_to` (as :func:`snapshot_for` does) to route.
        """
        anchor, key = _fingerprint(view)
        if key is None or not self._can_extend_to(anchor, key):
            raise ValueError("snapshot does not extend to this view")
        tangle = anchor
        fresh = tangle.transactions_since(self._source_len)
        kind = key[0]
        if kind == "tangle":
            delta = fresh
        elif kind == "view":
            bound = key[3]
            delta = [tx for tx in fresh if tx.round_index <= bound]
        else:  # timed: same maps were verified, ask the view directly
            delta = [tx for tx in fresh if view._visible(tx.tx_id)]
        if not delta:
            # Content unchanged: serve the same object (memos keyed by
            # snapshot identity stay valid) with provenance advanced so
            # the next extension scans only genuinely new transactions.
            self._hidden += len(fresh)
            self._source_len = key[2]
            return self

        n0 = len(self.ids)
        d = len(delta)
        n = n0 + d
        delta_ids = [tx.tx_id for tx in delta]
        ids = self.ids + delta_ids
        index = dict(self.index)
        parent_rows: list[list[int]] = []
        edge_parents: list[int] = []
        edge_children: list[int] = []
        for offset, tx in enumerate(delta):
            node = n0 + offset
            index[tx.tx_id] = node
            row = []
            for parent in tx.parents:
                p = index.get(parent)
                if p is None:  # parent not visible in this view
                    continue
                row.append(p)
                edge_parents.append(p)
                edge_children.append(node)
            parent_rows.append(row)

        delta_counts = np.fromiter(
            (len(row) for row in parent_rows), dtype=np.int64, count=d
        )
        flat_parents = np.fromiter(
            (p for row in parent_rows for p in row),
            dtype=np.int64,
            count=int(delta_counts.sum()),
        )
        parent_counts = np.concatenate([self.parent_counts, delta_counts])
        parent_indptr = np.concatenate(
            [
                self.parent_indptr,
                self.parent_indptr[-1] + np.cumsum(delta_counts),
            ]
        )
        parent_indices = np.concatenate([self.parent_indices, flat_parents])

        eparents = np.asarray(edge_parents, dtype=np.int64)
        echildren = np.asarray(edge_children, dtype=np.int64)
        base_acounts = np.concatenate(
            [self.approver_counts, np.zeros(d, dtype=np.int64)]
        )
        if eparents.size:
            approver_counts = base_acounts + np.bincount(
                eparents, minlength=n
            ).astype(np.int64)
        else:
            approver_counts = base_acounts
        approver_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(approver_counts, out=approver_indptr[1:])
        edges0 = int(self.approver_indptr[-1])
        approver_indices = np.empty(edges0 + eparents.size, dtype=np.int64)
        if edges0:
            # Relocate every existing entry in one scatter: an entry in
            # row i shifts by however much the rows before i grew.
            row_of = np.repeat(np.arange(n0), self.approver_counts)
            shift = (approver_indptr[:n0] - self.approver_indptr[:n0])[row_of]
            approver_indices[np.arange(edges0) + shift] = self.approver_indices
        if eparents.size:
            # Group the new edges by parent, preserving child insertion
            # order within each group (stable sort + within-group rank),
            # and place them after the parent's existing approvers —
            # exactly the order a cold build appends them in.
            order = np.argsort(eparents, kind="stable")
            sorted_parents = eparents[order]
            rank = np.arange(sorted_parents.size) - np.searchsorted(
                sorted_parents, sorted_parents, side="left"
            )
            pos = (
                approver_indptr[sorted_parents]
                + base_acounts[sorted_parents]
                + rank
            )
            approver_indices[pos] = echildren[order]

        ext = object.__new__(TangleSnapshot)
        ext.ids = ids
        ext.index = index
        ext.parent_indptr = parent_indptr
        ext.parent_indices = parent_indices
        ext.parent_counts = parent_counts
        ext.approver_indptr = approver_indptr
        ext.approver_indices = approver_indices
        ext.approver_counts = approver_counts
        ext.max_approvers = int(approver_counts.max(initial=0))
        ext._column_range = (
            self._column_range
            if ext.max_approvers == self.max_approvers
            else np.arange(max(1, ext.max_approvers))
        )
        new_sinks = np.flatnonzero(delta_counts == 0) + n0
        ext.sink_nodes = (
            np.concatenate([self.sink_nodes, new_sinks])
            if new_sinks.size
            else self.sink_nodes
        )
        tip_nodes = np.flatnonzero(approver_counts == 0)
        ext.tip_nodes = np.array(
            sorted(tip_nodes.tolist(), key=ids.__getitem__), dtype=np.int64
        )

        # Patch the lazily materialized planes only if the base paid for
        # them; otherwise stay lazy (the next reader rebuilds vectorized).
        ext._parents_padded = None
        if self._parents_padded is not None:
            width = self._parents_padded.shape[1]
            if max(1, int(parent_counts.max(initial=0))) == width:
                delta_indptr = np.zeros(d + 1, dtype=np.int64)
                np.cumsum(delta_counts, out=delta_indptr[1:])
                ext._parents_padded = np.vstack(
                    [
                        self._parents_padded,
                        _pad_csr(
                            delta_indptr, flat_parents, delta_counts, width=width
                        ),
                    ]
                )
            else:
                ext._parents_padded = _pad_csr(
                    parent_indptr, parent_indices, parent_counts
                )
        ext._approvers_padded = None
        if self._approvers_padded is not None:
            width = self._approvers_padded.shape[1]
            if max(1, ext.max_approvers) == width:
                start = approver_indptr[n0]
                padded = np.vstack(
                    [
                        self._approvers_padded,
                        _pad_csr(
                            approver_indptr[n0:] - start,
                            approver_indices[start:],
                            approver_counts[n0:],
                            width=width,
                        ),
                    ]
                )
                # Rows that gained approvers keep their old entries but
                # their padding lanes must now hold the new list.
                for p in np.unique(eparents[eparents < n0]):
                    begin = approver_indptr[p]
                    row = approver_indices[begin : begin + approver_counts[p]]
                    padded[p, : row.size] = row
                    padded[p, row.size :] = row[0]
                ext._approvers_padded = padded
            else:
                ext._approvers_padded = _pad_csr(
                    approver_indptr, approver_indices, approver_counts
                )
        ext._longest_past_path = None
        if self._longest_past_path is not None:
            longest = np.empty(n, dtype=np.int64)
            longest[:n0] = self._longest_past_path
            for offset, row in enumerate(parent_rows):
                longest[n0 + offset] = (
                    1 + int(longest[row].max()) if row else 0
                )
            ext._longest_past_path = longest

        ext._cumulative = None
        ext._cumulative_float = None
        if self._cumulative is not None:
            # Delta bitset pass: track, per node, which of the d new
            # nodes its future cone contains — O(N * d / 64) words
            # instead of the cold pass's O(N^2 / 64).  Old nodes gain
            # the popcount; new nodes are 1 + their cone's popcount.
            words = max(1, (d + 63) // 64)
            masks = np.zeros((n, words), dtype=np.uint64)
            one = np.uint64(1)
            for node in range(n - 1, -1, -1):
                begin, end = approver_indptr[node], approver_indptr[node + 1]
                if begin == end:
                    continue
                row = masks[node]
                for a in approver_indices[begin:end]:
                    row |= masks[a]
                    if a >= n0:
                        b = int(a) - n0
                        row[b >> 6] |= one << np.uint64(b & 63)
            gained = _popcount_rows(masks)
            cumulative = np.empty(n, dtype=np.int64)
            cumulative[:n0] = self._cumulative + gained[:n0]
            cumulative[n0:] = 1 + gained[n0:]
            ext._cumulative = cumulative

        ext._weight_authority = None
        ext._weight_authority_len = -1
        if kind == "tangle" or (
            kind == "view" and key[3] >= tangle.last_round_index
        ):
            ext._weight_authority = weakref.ref(tangle)
            ext._weight_authority_len = key[2]

        ext._anchor = weakref.ref(tangle)
        ext._source_len = key[2]
        ext._hidden = self._hidden + (len(fresh) - d)
        ext._epoch = key[-1]
        ext._view_kind = kind
        ext._view_bound = None
        ext._view_maps = None
        if kind == "view":
            ext._view_bound = key[3]
        elif kind == "timed":
            ext._view_bound = key[3]
            ext._view_maps = (key[5], key[6], key[4])
        ext._max_round_seen = max(
            self._max_round_seen,
            max((tx.round_index for tx in delta), default=-1),
        )
        return ext

    def cumulative_weights_float(self) -> np.ndarray:
        """:meth:`cumulative_weights` as float64, cached — a complete,
        hole-free score table the weighted walk passes straight in as
        its memo (shared across every selection of the epoch; the
        engine never writes to a memo without NaN holes)."""
        if self._cumulative_float is None:
            self._cumulative_float = self.cumulative_weights().astype(np.float64)
        return self._cumulative_float

    def parents_padded(self) -> np.ndarray:
        """``(N, max_parents)`` padded parent matrix (:func:`_pad_csr`).

        Parent degree is tiny (``num_tips``, usually 2), so a dense
        padded matrix turns one descent level into a single 2-D gather.
        Genesis-like rows (no parents) self-pad with node 0; the
        descent mask stops those particles before the value is used.
        """
        if self._parents_padded is None:
            self._parents_padded = _pad_csr(
                self.parent_indptr, self.parent_indices, self.parent_counts
            )
        return self._parents_padded

    def approvers_padded(self) -> np.ndarray:
        """``(N, max_approvers)`` padded approver matrix (:func:`_pad_csr`).

        One 2-D gather replaces the per-superstep CSR position
        arithmetic; the engine's valid mask keeps padding lanes out of
        every reduction and sample.
        """
        if self._approvers_padded is None:
            self._approvers_padded = _pad_csr(
                self.approver_indptr, self.approver_indices, self.approver_counts
            )
        return self._approvers_padded

    def longest_past_path(self) -> np.ndarray:
        """Longest parent-path length from each node to a parentless one.

        One topological pass (parents precede children in node order).
        A depth budget of at least this many steps is guaranteed to
        bottom out regardless of which parents the descent draws —
        :func:`batched_walk_starts` uses it to resolve deep descents
        without stepping them.
        """
        if self._longest_past_path is None:
            n = len(self.ids)
            longest = np.zeros(n, dtype=np.int64)
            indptr, indices = self.parent_indptr, self.parent_indices
            for node in range(n):
                row = indices[indptr[node] : indptr[node + 1]]
                if row.size:
                    longest[node] = 1 + longest[row].max()
            self._longest_past_path = longest
        return self._longest_past_path

    def cumulative_weights(self) -> np.ndarray:
        """Visible cumulative weight (1 + visible future cone) per node.

        A snapshot that covers a whole tangle answers from the tangle's
        incremental index in O(N) (valid while the tangle hasn't grown
        past the snapshot).  Truncated views — where the index, which
        counts the *whole* future cone, does not apply — pay a
        reverse-topological bitset pass, ``future(i) = union over
        approvers a of (future(a) | {a})``, O(N^2 / 64) words of work.
        Either way the values equal ``view.cumulative_weight(id)`` for
        every visible id; the tests pin that.
        """
        if self._cumulative is None and self._weight_authority is not None:
            tangle = self._weight_authority()
            if tangle is not None and len(tangle) == self._weight_authority_len:
                self._cumulative = tangle.cumulative_weights(self.ids).astype(
                    np.int64
                )
        if self._cumulative is None:
            n = len(self.ids)
            words = max(1, (n + 63) // 64)
            masks = np.zeros((n, words), dtype=np.uint64)
            indptr, indices = self.approver_indptr, self.approver_indices
            one = np.uint64(1)
            # Approvers have larger node ids, so a reverse sweep sees
            # every approver's mask completed before it is consumed.
            for node in range(n - 1, -1, -1):
                row = masks[node]
                for a in indices[indptr[node] : indptr[node + 1]]:
                    row |= masks[a]
                    row[a >> 6] |= one << np.uint64(a & 63)
            self._cumulative = 1 + _popcount_rows(masks)
        return self._cumulative


# --------------------------------------------------------- epoch caching
#: fingerprint -> (weakref to the anchoring tangle, snapshot).  Bounded
#: FIFO: an epoch needs one live entry per distinct view, and tangles
#: are append-only between compactions, so (id, len, visibility bound,
#: compaction epoch) pins the visible set.  Superseded entries double as
#: **extension bases**: a miss scans them for the longest snapshot the
#: new fingerprint prefix-extends before paying a cold rebuild.
_SNAPSHOT_CACHE: dict = {}
_SNAPSHOT_CACHE_LIMIT = 8


def _fingerprint(view) -> tuple[object | None, tuple | None]:
    """(anchor object, append-only cache key) for a view, when safe.

    Keys combine the anchoring tangle's identity, length, and
    compaction epoch (append-only between compactions ⇒ same object at
    same length and epoch means same content) with the view's
    visibility bound.  The epoch term is what keeps a compacted tangle
    from resurrecting a stale snapshot whose length happens to match a
    pre-compaction fingerprint.  Unknown view types return
    ``(None, None)`` and are rebuilt every time.
    """
    if isinstance(view, Tangle):
        return view, (
            "tangle",
            id(view),
            len(view),
            getattr(view, "compaction_epoch", 0),
        )
    if isinstance(view, TangleView):
        tangle = view._tangle
        return tangle, (
            "view",
            id(tangle),
            len(tangle),
            view.max_round,
            getattr(tangle, "compaction_epoch", 0),
        )
    # TimedTangleView lives in repro.fl (a layer above); duck-type it to
    # keep the dependency pointing downward.  Visibility times are set
    # once at publish and never mutated, so (len, now, observer) pins
    # the visible set.
    if hasattr(view, "_visible_from") and hasattr(view, "now"):
        tangle = view._tangle
        return tangle, (
            "timed",
            id(tangle),
            len(tangle),
            view.now,
            getattr(view, "_observer", None),
            # Distinct visibility maps over the same tangle are distinct
            # views even at the same `now` (map identity; entries for
            # existing transactions are set once at publish).
            id(view._visible_from),
            id(getattr(view, "_published_at", None)),
            getattr(tangle, "compaction_epoch", 0),
        )
    return None, None


def snapshot_for(view) -> TangleSnapshot:
    """The epoch snapshot for ``view``: exact hit, delta-extend, or build.

    Every walk of a round / publish epoch hits the same visible state;
    the cache turns N clients x num_tips walks into one CSR build.  A
    weakref identity check guards against ``id()`` reuse after GC.

    On a miss, the cached entries anchored to the same live tangle are
    scanned for the longest snapshot whose visible set is a prefix of
    the requested view's (:meth:`TangleSnapshot._can_extend_to`); when
    one exists, :meth:`TangleSnapshot.extend` applies just the
    publish-epoch delta — O(new transactions) Python work instead of a
    full O(history) rebuild, bit-identical either way.  Only a view no
    cached snapshot prefixes (first contact, a shrunk bound, a
    compaction) pays :meth:`TangleSnapshot.build`.
    """
    anchor, key = _fingerprint(view)
    if key is None:
        return TangleSnapshot.build(view)
    entry = _SNAPSHOT_CACHE.get(key)
    if entry is not None and entry[0]() is anchor:
        return entry[1]
    base: TangleSnapshot | None = None
    for ref, cached in _SNAPSHOT_CACHE.values():
        if ref() is anchor and cached._can_extend_to(anchor, key):
            if (
                base is None
                or cached._source_len > base._source_len
                or (
                    cached._source_len == base._source_len
                    and len(cached) > len(base)
                )
            ):
                base = cached
    if base is not None:
        snapshot = base.extend(view)
    else:
        snapshot = TangleSnapshot.build(view)
    # Purge entries whose tangle died before FIFO-evicting live ones, so
    # snapshots of collected tangles don't linger for up to 8 epochs.
    for dead_key in [k for k, (ref, _) in _SNAPSHOT_CACHE.items() if ref() is None]:
        del _SNAPSHOT_CACHE[dead_key]
    while len(_SNAPSHOT_CACHE) >= _SNAPSHOT_CACHE_LIMIT:
        _SNAPSHOT_CACHE.pop(next(iter(_SNAPSHOT_CACHE)))
    _SNAPSHOT_CACHE[key] = (weakref.ref(anchor), snapshot)
    return snapshot


def clear_snapshot_cache() -> None:
    """Drop all cached snapshots (benchmarks use this between variants)."""
    _SNAPSHOT_CACHE.clear()


# ------------------------------------------------------------ walk starts
def batched_walk_starts(
    snapshot: TangleSnapshot,
    count: int,
    rng: np.random.Generator,
    *,
    depth_range: tuple[int, int] = (15, 25),
    deadline=None,
) -> np.ndarray:
    """``count`` walk starting nodes, the Popov descent vectorized.

    Distributionally identical to ``count`` calls of
    :func:`repro.dag.random_walk.sample_walk_start`: a uniform tip, a
    uniform depth in ``depth_range``, then uniform parent choices,
    stopping early at genesis — but drawn in blocks (all tips, all
    depths, then one vectorized parent choice per descent level).

    ``deadline`` (any object with an ``expired`` attribute) is checked
    once on entry — the descent itself is a handful of vector ops — and
    raises :class:`WalkDeadlineExceeded` when already blown.
    """
    low, high = depth_range
    if low < 0 or high < low:
        raise ValueError(f"invalid depth range {depth_range}")
    if deadline is not None and deadline.expired:
        raise WalkDeadlineExceeded("deadline expired before walk starts")
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    tips = snapshot.tip_nodes
    current = tips[rng.integers(0, len(tips), size=count)]
    depths = rng.integers(low, high + 1, size=count)
    parent_counts = snapshot.parent_counts
    max_depth = int(depths.max(initial=0))
    if max_depth == 0 or len(snapshot) == 1:
        return current
    # One uniform block for every potential (level, particle) choice:
    # floor(u * k) is exactly a uniform draw over k parents, so the
    # descent distribution matches the per-step sampler's.  The loop
    # works full-width with masks (no index-list rebuild per level);
    # finished particles keep their node through the ``where``.
    # A particle whose depth budget covers the longest possible path
    # below its tip bottoms out whatever parents it draws; with a single
    # sink (every proper tangle: genesis) its endpoint is known without
    # stepping.  Only the undecided particles pay for descent levels.
    if snapshot.sink_nodes.size == 1:
        sink = snapshot.sink_nodes[0]
        resolved = depths >= snapshot.longest_past_path()[current]
        if resolved.all():
            return np.full(count, sink, dtype=np.int64)
        current = np.where(resolved, sink, current)
    if count <= 4:
        # A handful of particles cannot amortize full-width vector ops
        # across ~20 descent levels; scalar CSR walking is cheaper and
        # draws from the identical distribution.
        indptr, indices = snapshot.parent_indptr, snapshot.parent_indices
        uniforms = iter(rng.random(int(depths.sum())))
        for particle in range(count):
            node = int(current[particle])
            for _ in range(int(depths[particle])):
                k = parent_counts[node]
                if k == 0:
                    break
                node = int(indices[indptr[node] + int(next(uniforms) * k)])
            current[particle] = node
        return current
    uniforms = rng.random((max_depth, count))
    parents = snapshot.parents_padded()
    k = parent_counts[current]
    for level in range(max_depth):
        descending = (depths > level) & (k > 0)
        if not descending.any():
            break
        picks = (uniforms[level] * k).astype(np.int64)
        current = np.where(descending, parents[current, picks], current)
        k = parent_counts[current]
    return current


# --------------------------------------------------------------- stepping
def padded_normalize(
    scores: np.ndarray, valid: np.ndarray, normalization: str
) -> np.ndarray:
    """Row-wise Eq. 1 / Eq. 3 normalization over a padded ``(L, K)`` block.

    ``valid`` masks each row's real candidates (a row's first
    ``count_i`` columns); padding cells may hold anything, including
    NaN, and their outputs are unspecified — callers mask them out
    before sampling.  On the valid cells the elementwise arithmetic is
    exactly that of :func:`~repro.dag.tip_selection.normalize_standard`
    / :func:`~repro.dag.tip_selection.normalize_dynamic` applied to
    each row (subtract the row max; for ``"dynamic"`` divide by the row
    spread, falling back to the shift alone at zero spread), so the
    result is bit-identical per candidate.
    """
    row_max = np.where(valid, scores, -np.inf).max(axis=1, keepdims=True)
    shifted = scores - row_max
    if normalization == "standard":
        return shifted
    if normalization != "dynamic":
        raise ValueError(f"unknown normalization {normalization!r}")
    row_min = np.where(valid, scores, np.inf).min(axis=1, keepdims=True)
    spread = row_max - row_min
    positive = spread > 0
    return np.where(positive, shifted / np.where(positive, spread, 1.0), shifted)


def _fill_score_memo(
    score_memo: np.ndarray,
    candidates: np.ndarray,
    score_fn: ScoreFn,
    known: np.ndarray | None = None,
) -> None:
    """Score the distinct not-yet-scored nodes among ``candidates`` into
    the memo (one ``score_fn`` call); no-op when everything is known.

    ``known`` is the explicit scored-mask: filled indices are marked
    known *even when the score itself is NaN*, so a score function that
    returns NaN for a node (a corrupted model, a failed evaluation) is
    scored exactly once per call instead of being mistaken for a cache
    miss forever.  Without ``known`` the legacy NaN-sentinel convention
    applies (NaN in the memo = not yet scored)."""
    if known is None:
        missing = np.unique(candidates[np.isnan(score_memo[candidates])])
    else:
        missing = np.unique(candidates[~known[candidates]])
    if missing.size == 0:
        return
    fresh = np.asarray(score_fn(missing), dtype=np.float64)
    if fresh.shape != missing.shape:
        raise ValueError(
            f"score_fn returned shape {fresh.shape} for {missing.shape[0]} nodes"
        )
    score_memo[missing] = fresh
    if known is not None:
        known[missing] = True


def lockstep_walks(
    snapshot: TangleSnapshot,
    starts: Sequence[int] | np.ndarray,
    score_fn: ScoreFn,
    *,
    alpha: float,
    normalization: str = "standard",
    rng: np.random.Generator,
    evaluation_counter: Callable[[int], None] | None = None,
    score_memo: np.ndarray | None = None,
    trace: list | None = None,
    deadline=None,
) -> np.ndarray:
    """Walk every particle from its start to a tip, one superstep at a time.

    Per superstep, over the particles not yet on a tip:

    1. gather the union of their candidate frontiers (CSR row gather);
    2. score the **unique not-yet-scored** candidates with one
       ``score_fn`` call — the widest evaluation batch the walk plane
       has (candidates of every live particle, deduplicated against
       everything already scored);
    3. normalize scores row-wise over a padded frontier block
       (:func:`padded_normalize`, the sequential walker's exact
       arithmetic);
    4. sample each particle's next node by segment-wise Gumbel-max over
       ``alpha * normalized`` — equivalent to an independent
       ``rng.choice`` per particle with probabilities
       ``exp(alpha * normalized) / sum``.

    ``evaluation_counter`` preserves the sequential accounting exactly:
    it is called once per *live particle* per superstep with that
    particle's candidate count (never the deduplicated union size), so
    Figure 15's evaluations-per-walk measure is unchanged by batching.

    ``score_memo`` is an optional ``len(snapshot)``-sized float64 array
    with NaN marking not-yet-scored nodes; scores are filled in as the
    walk discovers nodes.  A caller that walks the same snapshot
    repeatedly (a selection's particles, a round's repeated selections)
    passes the same memo to skip the dedup-and-score round-trip for
    every previously seen node — sound because a node's score is fixed
    for the lifetime of a snapshot (a transaction's model never
    changes, and cumulative weights are frozen with the visible set).
    Omitted, a fresh memo still dedups within the call.

    ``trace`` (tests/debugging) appends one dict per superstep with the
    live particle indices, their nodes and candidate counts, each
    particle's candidate list, and the chosen next nodes.

    ``deadline`` (any object exposing an ``expired`` attribute, e.g.
    :class:`repro.service.resilience.Deadline`) is checked at every
    superstep boundary — between batches of score evaluations, never
    inside one — and raises :class:`WalkDeadlineExceeded` when blown.
    Scores already written into a caller-owned ``score_memo`` survive
    the abort, so a retry (or a cheaper fallback walking the same
    snapshot) keeps the evaluations the doomed walk paid for.  The
    check draws nothing: a walk whose deadline never fires consumes the
    generator exactly as an undeadlined walk would.

    Returns the final node of every particle (all tips of the snapshot).
    """
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    current = np.array(starts, dtype=np.int64, copy=True)
    degrees = snapshot.approver_counts
    indptr, indices = snapshot.approver_indptr, snapshot.approver_indices
    if score_memo is None:
        score_memo = np.full(len(snapshot), np.nan)
    elif score_memo.shape != (len(snapshot),):
        raise ValueError(
            f"score_memo must have shape ({len(snapshot)},), "
            f"got {score_memo.shape}"
        )
    approvers = snapshot.approvers_padded()
    columns = snapshot._column_range
    rows = np.arange(len(current))
    # The scored-mask is explicit: NaN in the memo marks "not yet
    # scored" only at entry (the construction convention of every
    # caller); once a node is filled it stays known even if its score
    # *is* NaN — a score function may legitimately return NaN for a
    # corrupted model, and re-scoring it every superstep (the old
    # NaN-as-sentinel ambiguity) both wasted evaluations and let NaN
    # win every argmax.  A memo with no holes at entry skips the
    # per-superstep miss probe entirely, as before.
    known = ~np.isnan(score_memo)
    memo_may_miss = not known.all()
    live = np.flatnonzero(degrees[current] > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        while live.size:
            if deadline is not None and deadline.expired:
                raise WalkDeadlineExceeded(
                    f"deadline expired with {live.size} particle(s) in flight"
                )
            if live.size == 1 and trace is None:
                # Tail finisher: one straggler left — the padded
                # frontier machinery costs more than it amortizes, so
                # walk it out with scalar steps (same scores, same
                # normalization arithmetic, same Gumbel-max law).
                particle = int(live[0])
                node = int(current[particle])
                while degrees[node] > 0:
                    if deadline is not None and deadline.expired:
                        raise WalkDeadlineExceeded(
                            "deadline expired in the tail finisher"
                        )
                    k = int(degrees[node])
                    if evaluation_counter is not None:
                        evaluation_counter(k)
                    start = indptr[node]
                    if k == 1:
                        node = int(indices[start])
                        continue
                    row = indices[start : start + k]
                    scores = score_memo[row]
                    if memo_may_miss and not known[row].all():
                        _fill_score_memo(score_memo, row, score_fn, known)
                        scores = score_memo[row]
                    finite = np.isfinite(scores)
                    if finite.all():
                        normalized = padded_normalize(
                            scores[None, :],
                            np.ones((1, k), dtype=bool),
                            normalization,
                        )[0]
                        logits = alpha * normalized
                    elif finite.any():
                        # Non-finite candidates (corrupted models) never
                        # attract the walk: their logits degrade to -inf
                        # while the finite ones keep the exact standard
                        # arithmetic over the reduced candidate set.
                        normalized = padded_normalize(
                            scores[None, :], finite[None, :], normalization
                        )[0]
                        logits = np.where(finite, alpha * normalized, -np.inf)
                    else:
                        # Every candidate is corrupt — degrade to a
                        # uniform step rather than crash or pick NaN.
                        logits = np.zeros(k)
                    z = logits - np.log(rng.standard_exponential(k))
                    node = int(row[int(z.argmax())])
                current[particle] = node
                break
            nodes = current[live]
            counts = degrees[nodes]
            if evaluation_counter is not None:
                for c in counts:
                    evaluation_counter(int(c))
            frontier = approvers[nodes]  # (L, width) padded candidates
            chosen = frontier[:, 0]  # single-candidate rows: final
            kmax = int(counts.max())
            if kmax > 1:
                # Row i's first counts[i] lanes are its candidates, the
                # rest repeats of its first — the valid mask keeps the
                # padding out of every reduction and sample.
                candidates = frontier[:, :kmax]
                valid = columns[:kmax] < counts[:, None]
                scores = score_memo[candidates]
                if memo_may_miss:
                    unknown = ~known[candidates] & valid
                    if unknown.any():
                        _fill_score_memo(
                            score_memo, candidates[unknown], score_fn, known
                        )
                        scores = score_memo[candidates]
                # Gumbel-max per row: argmax(logit - log E), E ~ Exp(1),
                # draws from softmax(logit) — one block of exponentials
                # per superstep replaces one rng.choice per particle.
                # Softmax is invariant to per-row constant shifts, so
                # the standard (Eq. 1) subtract-the-max never has to be
                # materialized: alpha * score is the same logit up to a
                # row constant.  Dynamic (Eq. 3) divides by the row
                # spread — a genuine per-row rescale — so only it pays
                # for the masked reductions, via the shared
                # padded_normalize arithmetic.
                bad = ~np.isfinite(scores) & valid
                any_bad = bool(bad.any())
                if normalization == "standard":
                    logits = alpha * scores
                else:
                    # Exclude non-finite candidates from the row
                    # reductions so one corrupt score cannot poison its
                    # whole row's max/spread.
                    norm_valid = valid & ~bad if any_bad else valid
                    logits = alpha * padded_normalize(
                        scores, norm_valid, normalization
                    )
                if any_bad:
                    # Corrupted candidates never attract the walk; a row
                    # with *no* finite candidate degrades to a uniform
                    # pick among its (corrupt) candidates instead of
                    # letting NaN win the argmax.  The exponential block
                    # below keeps its shape either way, so the rng
                    # stream position is independent of corruption.
                    logits = np.where(bad, -np.inf, logits)
                    alive = (valid & ~bad).any(axis=1)
                    if not alive.all():
                        logits = np.where(
                            ~alive[:, None] & valid, 0.0, logits
                        )
                z = logits - np.log(rng.standard_exponential(valid.shape))
                picks = np.where(valid, z, -np.inf).argmax(axis=1)
                chosen = np.where(
                    counts > 1, candidates[rows[: len(nodes)], picks], chosen
                )
            if trace is not None:
                trace.append(
                    {
                        "live": live.copy(),
                        "nodes": nodes.copy(),
                        "counts": counts.copy(),
                        "candidates": [
                            indices[indptr[n] : indptr[n] + degrees[n]].copy()
                            for n in nodes
                        ],
                        "chosen": chosen.copy(),
                    }
                )
            current[live] = chosen
            live = live[degrees[chosen] > 0]
    return current
