"""Append-only DAG store with tip bookkeeping, weight queries, and
checkpoint compaction.

The store is append-only *between compactions*: :meth:`Tangle.compact`
truncates confirmed history below a cut — dropped models are freed (or
spilled to a memory-mapped archive) and surviving parents below the cut
remap to genesis — and bumps :attr:`Tangle.compaction_epoch`, the term
every snapshot fingerprint carries so caches never serve pre-compaction
state (see ``docs/scaling.md``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dag.arena import WeightArena
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.nn.serialization import FlatSpec

__all__ = ["Tangle", "CompactionReport"]


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`Tangle.compact` call did.

    ``resident_before``/``resident_after`` are the arena's resident
    (RAM-backed) byte counts around the cut; ``spill`` is the
    memory-mapped :class:`~repro.dag.arena.WeightArena` archiving the
    dropped models (``None`` unless a spill path was given) and
    ``spill_rows`` maps each dropped transaction id to its row in it.
    """

    dropped: int
    kept: int
    epoch: int
    resident_before: int
    resident_after: int
    dropped_ids: tuple[str, ...] = ()
    spill: WeightArena | None = None
    spill_rows: dict | None = None


class Tangle:
    """The DAG of model updates.

    Acyclicity is guaranteed by construction: a transaction may only
    approve transactions that already exist, so every edge points strictly
    backwards in insertion order.  Walks move in the *opposite* direction
    of approvals, from older transactions towards the tips, via
    :meth:`approvers` (Algorithm 1's ``GetChildren``).

    Cumulative weights (own weight plus the size of the future cone) are
    maintained **lazily, then incrementally**: the index is built on the
    first :meth:`cumulative_weight` query, after which every :meth:`add`
    propagates ``+1`` along the new transaction's past cone — queries are
    O(1) dictionary lookups instead of the future-cone BFS that made
    weighted walks quadratic in tangle size, and runs that never query
    weights pay nothing.  :meth:`invalidate_weight_index` returns to the
    lazy state for bulk mutation paths.

    **Model storage** lives in a per-tangle :class:`WeightArena`: the
    genesis weights fix the :class:`FlatSpec` (shapes/offsets of the
    architecture), and :meth:`add` interns each transaction's model as
    one contiguous flat row, after which the transaction serves
    ``model_weights`` as zero-copy views into its row.  Models whose
    shapes differ from the genesis architecture (foreign tangles glued
    together in tests or tooling) simply stay in per-transaction
    storage — interning is opportunistic, never a protocol requirement.
    ``store_dtype=np.float32`` halves arena memory and IPC volume at the
    cost of float64 bit-compatibility.
    """

    def __init__(
        self,
        genesis_weights: list[np.ndarray],
        *,
        store_dtype: np.dtype | type = np.float64,
    ):
        self._spec = FlatSpec.from_weights(genesis_weights)
        self._arena = WeightArena(self._spec, dtype=store_dtype)
        genesis = Transaction(
            tx_id=GENESIS_ID,
            parents=(),
            model_weights=genesis_weights,
            issuer=-1,
            round_index=-1,
        )
        self._intern(genesis)
        self._transactions: dict[str, Transaction] = {GENESIS_ID: genesis}
        self._approvers: dict[str, list[str]] = {GENESIS_ID: []}
        self._tips: set[str] = {GENESIS_ID}
        self._order: list[str] = [GENESIS_ID]
        self._counter = 0
        # Lazy-then-incremental: the index is built on the first weight
        # query and maintained incrementally from then on, so runs that
        # never query weights (e.g. pure accuracy-selector simulations)
        # pay nothing per add.
        self._weights: dict[str, int] = {GENESIS_ID: 1}
        self._weights_dirty = True
        self._last_round_index = -1
        self._compaction_epoch = 0

    # ------------------------------------------------------------ queries
    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def genesis(self) -> Transaction:
        return self._transactions[GENESIS_ID]

    @property
    def spec(self) -> FlatSpec:
        """Flat layout of the tangle's model architecture."""
        return self._spec

    @property
    def arena(self) -> WeightArena:
        """The contiguous model-weight store."""
        return self._arena

    # ------------------------------------------------- shared-memory plane
    def share_memory(self) -> "Tangle":
        """Move the model store into a shared-memory segment (idempotent).

        After this, pickling the tangle ships transaction metadata plus an
        attach-by-name arena handle instead of the slab bytes — the IPC
        form the parallel substrate uses.  Values are bit-identical; only
        the storage location changes.  Returns ``self`` for chaining.
        """
        self._arena.to_shared()
        return self

    def close(self) -> None:
        """Release the arena's shared-memory segment, if any (idempotent).

        Live views (this process's and attached workers') keep working;
        the segment's name is removed so nothing leaks in ``/dev/shm``.
        Heap-backed tangles have nothing to release.
        """
        self._arena.close()

    def __enter__(self) -> "Tangle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _cost_footprint(self, walk) -> tuple[int, int]:
        """(shipped bytes, dense bytes) for the substrate's router.

        The arena dominates; transactions add per-object dict/metadata
        overhead (ids, parents, tags) that ships regardless of backing.
        """
        arena_ipc, arena_dense = self._arena._cost_footprint(walk)
        meta = 250 * len(self._transactions)
        return arena_ipc + meta, arena_dense + meta

    def flat_weights(self, tx_id: str) -> np.ndarray:
        """A transaction's model as one flat vector (zero-copy when
        arena-resident)."""
        return self.get(tx_id).flat_vector(self._spec)

    def get(self, tx_id: str) -> Transaction:
        """The transaction stored under ``tx_id`` (KeyError if unknown —
        including ids truncated by a past :meth:`compact`)."""
        try:
            return self._transactions[tx_id]
        except KeyError:
            raise KeyError(f"unknown transaction {tx_id!r}") from None

    def transactions(self) -> list[Transaction]:
        """All transactions in insertion (topological) order."""
        return [self._transactions[tx_id] for tx_id in self._order]

    def transactions_since(self, start: int) -> list[Transaction]:
        """Transactions appended at insertion positions ``>= start``.

        The delta accessor behind snapshot extension: between
        compactions the store is append-only, so the suffix of the
        insertion order *is* the publish-epoch delta — O(delta) to
        produce, never O(history)."""
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        return [self._transactions[tx_id] for tx_id in self._order[start:]]

    @property
    def compaction_epoch(self) -> int:
        """How many compactions this tangle has undergone.

        Snapshot fingerprints include this term: a post-compaction
        tangle whose length happens to match a pre-compaction one must
        never be served a stale cached snapshot."""
        return self._compaction_epoch

    def approvers(self, tx_id: str) -> list[str]:
        """Transactions that directly approve ``tx_id`` (walk successors)."""
        if tx_id not in self._transactions:
            raise KeyError(f"unknown transaction {tx_id!r}")
        return list(self._approvers[tx_id])

    def tips(self) -> list[str]:
        """Transactions that have received no approvals yet, sorted."""
        return sorted(self._tips)

    def is_tip(self, tx_id: str) -> bool:
        """Whether ``tx_id`` currently has no approvers."""
        return tx_id in self._tips

    @property
    def last_round_index(self) -> int:
        """Highest ``round_index`` of any non-genesis transaction (-1 if none).

        Round indices are non-decreasing in both simulators, so a
        :class:`~repro.dag.view.TangleView` whose bound is at least this
        value sees the whole tangle and may answer weight queries straight
        from the incremental index.
        """
        return self._last_round_index

    # ------------------------------------------------------------ mutation
    def next_tx_id(self, issuer: int) -> str:
        """Produce a unique transaction id."""
        self._counter += 1
        return f"tx{self._counter}-c{issuer}"

    def add(self, transaction: Transaction) -> None:
        """Append a transaction whose parents already exist."""
        if transaction.tx_id in self._transactions:
            raise ValueError(f"duplicate transaction id {transaction.tx_id!r}")
        if not transaction.parents:
            raise ValueError("only genesis may have no parents")
        for parent in transaction.parents:
            if parent not in self._transactions:
                raise ValueError(
                    f"{transaction.tx_id!r} approves unknown parent {parent!r}"
                )
        self._intern(transaction)
        self._transactions[transaction.tx_id] = transaction
        self._approvers[transaction.tx_id] = []
        self._order.append(transaction.tx_id)
        for parent in transaction.parents:
            self._approvers[parent].append(transaction.tx_id)
            self._tips.discard(parent)
        self._tips.add(transaction.tx_id)
        if transaction.round_index > self._last_round_index:
            self._last_round_index = transaction.round_index
        if not self._weights_dirty:
            self._weights[transaction.tx_id] = 1
            self._bump_past_cone(transaction.tx_id)

    def _intern(self, transaction: Transaction) -> None:
        """Move a transaction's model into the arena (opportunistic)."""
        if transaction.arena_bound:
            return
        try:
            flat = transaction.flat_vector(self._spec)
        except ValueError:
            return  # foreign architecture: keep per-transaction storage
        transaction.bind_arena(self._arena, self._arena.intern(flat))

    # ---------------------------------------------------------- compaction
    def compact(
        self,
        *,
        keep_last: int | None = None,
        min_round: int | None = None,
        spill_path=None,
    ) -> CompactionReport:
        """Truncate confirmed history below a cut, in place.

        Exactly one of ``keep_last`` (keep the newest N non-genesis
        transactions) or ``min_round`` (keep every transaction from the
        first insertion position after which no round index is below
        ``min_round``) picks the cut.  Both keep an insertion-order
        *suffix* plus genesis, which is closed under approval — every
        approver of a kept transaction is newer, hence kept — so the
        kept sub-DAG's cumulative weights are untouched by the cut.

        What happens at the cut:

        - dropped transactions leave ``transactions()``/``get`` and the
          weight index; their ids stay burned (the publish counter never
          rewinds), so a checkpoint written after a compaction can be
          reloaded and extended without id collisions;
        - kept transactions whose parents fell below the cut re-parent
          onto genesis (duplicates collapsed, approval order kept) —
          the DAG stays rooted and walkable;
        - the :class:`WeightArena` is rebuilt with only the kept rows
          (shared-memory backing is preserved); the dropped rows are
          freed, or — when ``spill_path`` names a file — archived first
          into a memory-mapped spill arena returned on the report;
        - :attr:`compaction_epoch` bumps, which retires every cached
          walk snapshot of this tangle (their fingerprints carry the
          epoch), and live readers holding old snapshots or old
          :class:`Transaction` objects keep working off the state they
          captured.

        No-op (epoch unchanged) when nothing falls below the cut.
        """
        if (keep_last is None) == (min_round is None):
            raise ValueError(
                "exactly one of keep_last / min_round is required"
            )
        order = self._order
        if keep_last is not None:
            if keep_last < 0:
                raise ValueError(f"keep_last must be >= 0, got {keep_last}")
            cut = max(1, len(order) - keep_last)
        else:
            cut = 1
            for i in range(len(order) - 1, 0, -1):
                if self._transactions[order[i]].round_index < min_round:
                    cut = i + 1
                    break
        dropped_ids = tuple(order[1:cut])
        resident_before = self._arena.resident_nbytes
        if not dropped_ids:
            return CompactionReport(
                dropped=0,
                kept=len(self),
                epoch=self._compaction_epoch,
                resident_before=resident_before,
                resident_after=resident_before,
            )
        kept_ids = [GENESIS_ID] + order[cut:]
        kept_set = set(kept_ids)

        spill = None
        spill_rows: dict[str, int] | None = None
        if spill_path is not None:
            spill = WeightArena(
                self._spec,
                dtype=self._arena.dtype,
                initial_capacity=max(1, len(dropped_ids)),
            )
            spill_rows = {}
            for tx_id in dropped_ids:
                try:
                    flat = self._transactions[tx_id].flat_vector(self._spec)
                except ValueError:
                    continue  # foreign architecture: nothing arena-shaped
                spill_rows[tx_id] = spill.intern(flat)
            spill.to_spilled(spill_path)

        old_arena = self._arena
        fresh = WeightArena(
            self._spec,
            dtype=old_arena.dtype,
            initial_capacity=max(16, len(kept_ids)),
        )
        for tx_id in kept_ids:
            tx = self._transactions[tx_id]
            if tx.parents:
                remapped = tuple(
                    dict.fromkeys(
                        p if p in kept_set else GENESIS_ID for p in tx.parents
                    )
                )
                if remapped != tx.parents:
                    tx.parents = remapped
            try:
                flat = tx.flat_vector(self._spec)
            except ValueError:
                continue
            tx.bind_arena(fresh, fresh.intern(flat))
        if old_arena.is_shared:
            fresh.to_shared()
        self._arena = fresh
        old_arena.close()

        self._transactions = {t: self._transactions[t] for t in kept_ids}
        approvers: dict[str, list[str]] = {t: [] for t in kept_ids}
        for tx_id in kept_ids[1:]:
            for parent in self._transactions[tx_id].parents:
                approvers[parent].append(tx_id)
        self._approvers = approvers
        # The oldest kept transaction always re-parents onto genesis, so
        # genesis is a tip only when it is alone.
        self._tips = {t for t in kept_ids if not approvers[t]}
        self._order = kept_ids
        self._last_round_index = max(
            (
                self._transactions[t].round_index
                for t in kept_ids
                if t != GENESIS_ID
            ),
            default=-1,
        )
        self._weights = {GENESIS_ID: 1}
        self._weights_dirty = True
        self._compaction_epoch += 1
        return CompactionReport(
            dropped=len(dropped_ids),
            kept=len(kept_ids),
            epoch=self._compaction_epoch,
            resident_before=resident_before,
            resident_after=self._arena.resident_nbytes,
            dropped_ids=dropped_ids,
            spill=spill,
            spill_rows=spill_rows,
        )

    # ----------------------------------------------------------- analysis
    def future_cone(self, tx_id: str) -> set[str]:
        """All transactions that directly or indirectly approve ``tx_id``."""
        seen: set[str] = set()
        queue = deque(self._approvers[self.get(tx_id).tx_id])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._approvers[current])
        return seen

    def past_cone(self, tx_id: str) -> set[str]:
        """All transactions ``tx_id`` directly or indirectly approves."""
        seen: set[str] = set()
        queue = deque(self.get(tx_id).parents)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._transactions[current].parents)
        return seen

    # ----------------------------------------------------- weight index
    def _bump_past_cone(self, tx_id: str) -> None:
        """Propagate a new transaction's +1 to every ancestor's weight."""
        for ancestor in self.past_cone(tx_id):
            self._weights[ancestor] += 1

    def invalidate_weight_index(self) -> None:
        """Mark the weight index stale; it is rebuilt lazily on next query.

        Bulk construction paths may call this before a run of
        :meth:`add` calls to skip per-add propagation and pay for one
        full rebuild instead.
        """
        self._weights_dirty = True

    def _rebuild_weight_index(self) -> None:
        self._weights = {tx_id: 1 for tx_id in self._order}
        self._weights_dirty = False
        for tx_id in self._order:
            self._bump_past_cone(tx_id)

    def cumulative_weight(self, tx_id: str) -> int:
        """Classic tangle weight: own weight plus all approving txs.

        Served from the incremental index in O(1); equal to
        :meth:`recount_cumulative_weight` at all times (the randomized
        index tests assert this invariant under interleaved mutation).
        """
        self.get(tx_id)  # raise on unknown ids
        if self._weights_dirty:
            self._rebuild_weight_index()
        return self._weights[tx_id]

    def cumulative_weights(self, tx_ids) -> np.ndarray:
        """Batched :meth:`cumulative_weight`: one query for many ids.

        The weighted walk's per-step path — a step's whole approver
        list is answered with a single call against the incremental
        index (one float64 array out, no per-id method dispatch or
        re-validation).  Raises ``KeyError`` on unknown ids.
        """
        if self._weights_dirty:
            self._rebuild_weight_index()
        weights = self._weights
        try:
            return np.fromiter(
                (weights[tx_id] for tx_id in tx_ids),
                dtype=np.float64,
                count=len(tx_ids),
            )
        except KeyError as exc:
            raise KeyError(f"unknown transaction {exc.args[0]!r}") from None

    def recount_cumulative_weight(self, tx_id: str) -> int:
        """Weight via a from-scratch future-cone BFS (the legacy path).

        O(edges) per call; kept as the ground truth for index
        verification and as the baseline in the substrate benchmarks.
        """
        return 1 + len(self.future_cone(tx_id))

    def depth_from_tips(self, tx_id: str) -> int:
        """Shortest approval distance from any tip to ``tx_id`` (0 = tip)."""
        if self.is_tip(tx_id):
            return 0
        distance = {tx_id: 0}
        queue = deque([tx_id])
        while queue:
            current = queue.popleft()
            for approver in self._approvers[current]:
                if approver in distance:
                    continue
                distance[approver] = distance[current] + 1
                if approver in self._tips:
                    return distance[approver]
                queue.append(approver)
        raise RuntimeError("DAG invariant violated: no tip above a transaction")

    def approval_edges(self) -> list[tuple[Transaction, Transaction]]:
        """All (approving, approved) transaction pairs, genesis excluded."""
        edges: list[tuple[Transaction, Transaction]] = []
        for tx_id in self._order:
            tx = self._transactions[tx_id]
            for parent in tx.parents:
                parent_tx = self._transactions[parent]
                if parent_tx.is_genesis:
                    continue
                edges.append((tx, parent_tx))
        return edges
