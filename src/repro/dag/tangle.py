"""Append-only DAG store with tip bookkeeping and weight queries."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.dag.transaction import GENESIS_ID, Transaction

__all__ = ["Tangle"]


class Tangle:
    """The DAG of model updates.

    Acyclicity is guaranteed by construction: a transaction may only
    approve transactions that already exist, so every edge points strictly
    backwards in insertion order.  Walks move in the *opposite* direction
    of approvals, from older transactions towards the tips, via
    :meth:`approvers` (Algorithm 1's ``GetChildren``).
    """

    def __init__(self, genesis_weights: list[np.ndarray]):
        genesis = Transaction(
            tx_id=GENESIS_ID,
            parents=(),
            model_weights=genesis_weights,
            issuer=-1,
            round_index=-1,
        )
        self._transactions: dict[str, Transaction] = {GENESIS_ID: genesis}
        self._approvers: dict[str, list[str]] = {GENESIS_ID: []}
        self._tips: set[str] = {GENESIS_ID}
        self._order: list[str] = [GENESIS_ID]
        self._counter = 0

    # ------------------------------------------------------------ queries
    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def genesis(self) -> Transaction:
        return self._transactions[GENESIS_ID]

    def get(self, tx_id: str) -> Transaction:
        try:
            return self._transactions[tx_id]
        except KeyError:
            raise KeyError(f"unknown transaction {tx_id!r}") from None

    def transactions(self) -> list[Transaction]:
        """All transactions in insertion (topological) order."""
        return [self._transactions[tx_id] for tx_id in self._order]

    def approvers(self, tx_id: str) -> list[str]:
        """Transactions that directly approve ``tx_id`` (walk successors)."""
        if tx_id not in self._transactions:
            raise KeyError(f"unknown transaction {tx_id!r}")
        return list(self._approvers[tx_id])

    def tips(self) -> list[str]:
        """Transactions that have received no approvals yet, sorted."""
        return sorted(self._tips)

    def is_tip(self, tx_id: str) -> bool:
        return tx_id in self._tips

    # ------------------------------------------------------------ mutation
    def next_tx_id(self, issuer: int) -> str:
        """Produce a unique transaction id."""
        self._counter += 1
        return f"tx{self._counter}-c{issuer}"

    def add(self, transaction: Transaction) -> None:
        """Append a transaction whose parents already exist."""
        if transaction.tx_id in self._transactions:
            raise ValueError(f"duplicate transaction id {transaction.tx_id!r}")
        if not transaction.parents:
            raise ValueError("only genesis may have no parents")
        for parent in transaction.parents:
            if parent not in self._transactions:
                raise ValueError(
                    f"{transaction.tx_id!r} approves unknown parent {parent!r}"
                )
        self._transactions[transaction.tx_id] = transaction
        self._approvers[transaction.tx_id] = []
        self._order.append(transaction.tx_id)
        for parent in transaction.parents:
            self._approvers[parent].append(transaction.tx_id)
            self._tips.discard(parent)
        self._tips.add(transaction.tx_id)

    # ----------------------------------------------------------- analysis
    def future_cone(self, tx_id: str) -> set[str]:
        """All transactions that directly or indirectly approve ``tx_id``."""
        seen: set[str] = set()
        queue = deque(self._approvers[self.get(tx_id).tx_id])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._approvers[current])
        return seen

    def past_cone(self, tx_id: str) -> set[str]:
        """All transactions ``tx_id`` directly or indirectly approves."""
        seen: set[str] = set()
        queue = deque(self.get(tx_id).parents)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._transactions[current].parents)
        return seen

    def cumulative_weight(self, tx_id: str) -> int:
        """Classic tangle weight: own weight plus all approving txs."""
        return 1 + len(self.future_cone(tx_id))

    def depth_from_tips(self, tx_id: str) -> int:
        """Shortest approval distance from any tip to ``tx_id`` (0 = tip)."""
        if self.is_tip(tx_id):
            return 0
        distance = {tx_id: 0}
        queue = deque([tx_id])
        while queue:
            current = queue.popleft()
            for approver in self._approvers[current]:
                if approver in distance:
                    continue
                distance[approver] = distance[current] + 1
                if approver in self._tips:
                    return distance[approver]
                queue.append(approver)
        raise RuntimeError("DAG invariant violated: no tip above a transaction")

    def approval_edges(self) -> list[tuple[Transaction, Transaction]]:
        """All (approving, approved) transaction pairs, genesis excluded."""
        edges: list[tuple[Transaction, Transaction]] = []
        for tx_id in self._order:
            tx = self._transactions[tx_id]
            for parent in tx.parents:
                parent_tx = self._transactions[parent]
                if parent_tx.is_genesis:
                    continue
                edges.append((tx, parent_tx))
        return edges
