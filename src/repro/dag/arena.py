"""The per-tangle weight arena: contiguous row-per-transaction storage.

Every transaction of a tangle carries a model with the same architecture
(the genesis model's).  Storing each model as its own list of per-layer
arrays scatters the hottest data in the system across thousands of small
allocations and makes every boundary crossing — aggregation, walk
evaluation, process-pool pickling, persistence — pay per-array overhead.

The :class:`WeightArena` instead keeps all models in one 2-D slab, one
row per transaction, in flat (:class:`~repro.nn.serialization.FlatSpec`)
order.  Rows are immutable once written and exposed as read-only views,
so transactions can hand out zero-copy per-layer views; stacked
aggregation over arena-resident models is a row-slice away; and pickling
a tangle ships one contiguous buffer instead of re-pickling every model.

``dtype`` defaults to ``float64`` (bit-identical to the historical
list-of-arrays path).  ``float32`` halves memory and IPC volume at the
cost of rounding every stored model to single precision — evaluation
accuracy is unaffected in practice, but results are no longer
bit-comparable with float64 runs.

**Shared-memory backing.**  :meth:`to_shared` migrates the slab into a
named ``multiprocessing.shared_memory`` segment (one copy, bit-exact).
From then on the arena's pickle form is an **attach-by-name handle** —
uid, segment name, generation, row count — instead of the slab bytes,
so shipping a round context to a pool worker costs a few hundred bytes
no matter how many models the tangle holds.  Workers attach once per
``(uid, segment)`` through :func:`repro.utils.shm.attach_cached` and
reuse the mapping across rounds; capacity growth allocates a fresh,
larger segment, copies the live rows, unlinks the old name and bumps
``generation`` — a worker holding the superseded mapping keeps reading
it safely (POSIX keeps unlinked mappings alive) and re-attaches when the
next round's handle names the new segment.  Attached arenas are
read-only: only the owning process interns.  :meth:`close` unlinks the
owner's segment (idempotent; live views stay valid), and the
:mod:`repro.utils.shm` registry unlinks anything left at interpreter
exit.

**Spill backing.**  :meth:`to_spilled` migrates the slab into a
memory-mapped file (``numpy.memmap``) instead of a shared-memory
segment: the rows leave RAM — :attr:`resident_nbytes` drops to 0, the
kernel pages them in on demand and may evict them at will — while every
read keeps working unchanged.  This is the cold end of the storage
ladder (heap → shm → mmap): :meth:`~repro.dag.tangle.Tangle.compact`
uses it to archive the model rows of truncated history without holding
them resident.  Spilled arenas are **archival**: :meth:`intern` raises,
pickling ships an open-by-path handle (the receiver maps the file
read-only), and :meth:`close` copies the rows back to heap and deletes
the file.  Unnamed spills go to temp files that are removed at
interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.nn.serialization import FlatSpec
from repro.utils import shm as shm_registry

__all__ = ["WeightArena"]

#: Auto-created (unnamed) spill files, removed at interpreter exit so a
#: benchmark or test that never calls close() cannot litter the disk.
_TEMP_SPILLS: set = set()


def _purge_temp_spills() -> None:
    for path in list(_TEMP_SPILLS):
        try:
            os.unlink(path)
        except OSError:
            pass
    _TEMP_SPILLS.clear()


atexit.register(_purge_temp_spills)

#: Estimated pickle size of an attach-by-name handle (name, uid, shape
#: metadata) — what a shared arena costs on the wire instead of its slab.
HANDLE_NBYTES = 256


class WeightArena:
    """Append-only 2-D slab of flat model-weight rows."""

    def __init__(
        self,
        spec: FlatSpec,
        *,
        dtype: np.dtype | type = np.float64,
        initial_capacity: int = 16,
        shared: bool = False,
    ):
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"arena dtype must be float64 or float32, got {dtype}")
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self.spec = spec
        self.dtype = dtype
        self._rows = 0
        self._shm = None  # SharedMemory backing the slab (None = heap)
        self._mmap_path: Path | None = None  # spill file backing the slab
        self._attached = False  # True in worker processes (read-only)
        self.uid: str | None = None
        # Bumped whenever the slab moves (growth or shared migration):
        # holders of cached row views use it to notice their base buffer
        # is a superseded generation and rebuild, so old slabs are not
        # kept alive indefinitely through stale views.
        self.generation = 0
        if shared:
            self.uid = shm_registry.new_uid()
            self._shm = shm_registry.create_segment(
                initial_capacity * spec.total * dtype.itemsize
            )
            self._slab = self._segment_slab(self._shm, initial_capacity)
        else:
            self._slab = np.empty((initial_capacity, spec.total), dtype=dtype)

    def _segment_slab(self, segment, capacity: int) -> np.ndarray:
        """Numpy view of ``capacity`` rows over a segment's buffer."""
        return np.ndarray(
            (capacity, self.spec.total), dtype=self.dtype, buffer=segment.buf
        )

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return self._rows

    @property
    def capacity(self) -> int:
        return self._slab.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes of live (written) rows."""
        return self._rows * self.spec.total * self.dtype.itemsize

    @property
    def resident_nbytes(self) -> int:
        """Bytes of live rows held resident in RAM.

        Equal to :attr:`nbytes` for heap and shared-memory arenas; 0
        for spilled ones, whose pages are file-backed and reclaimable
        by the kernel (touched pages may transiently occupy page cache,
        but nothing is pinned)."""
        return 0 if self._mmap_path is not None else self.nbytes

    @property
    def is_shared(self) -> bool:
        """True when the slab lives in a named shared-memory segment."""
        return self._shm is not None

    @property
    def is_spilled(self) -> bool:
        """True when the slab lives in a memory-mapped spill file."""
        return self._mmap_path is not None

    @property
    def spill_path(self) -> Path | None:
        """Path of the backing spill file (None unless spilled)."""
        return self._mmap_path

    @property
    def is_attached(self) -> bool:
        """True for read-only worker-side attachments to another
        process's segment."""
        return self._attached

    @property
    def segment_name(self) -> str | None:
        """Name of the backing segment (None for heap arenas)."""
        return self._shm.name if self._shm is not None else None

    def row(self, index: int) -> np.ndarray:
        """Read-only 1-D view of one stored model."""
        if not 0 <= index < self._rows:
            raise IndexError(f"arena row {index} out of range (have {self._rows})")
        view = self._slab[index]
        view.flags.writeable = False
        return view

    def rows(self, indices) -> np.ndarray:
        """Stacked ``(k, total)`` matrix of the given rows.

        A contiguous ascending range comes back as a zero-copy slice of
        the slab; arbitrary index lists pay one gather.
        """
        indices = list(indices)
        for i in indices:
            if not 0 <= i < self._rows:
                raise IndexError(f"arena row {i} out of range (have {self._rows})")
        if indices and indices == list(range(indices[0], indices[0] + len(indices))):
            view = self._slab[indices[0] : indices[0] + len(indices)]
            view.flags.writeable = False
            return view
        return self._slab[indices]

    # ------------------------------------------------------------ mutation
    def intern(self, flat: np.ndarray) -> int:
        """Copy a flat vector into the slab; returns its row index."""
        if self._attached:
            raise RuntimeError(
                "cannot intern into a read-only attached arena; only the "
                "owning process appends rows"
            )
        if self._mmap_path is not None:
            raise RuntimeError(
                "spilled arenas are archival (read-only); close() restores "
                "heap backing before appending"
            )
        flat = np.asarray(flat)
        if flat.shape != (self.spec.total,):
            raise ValueError(
                f"expected a ({self.spec.total},) vector, got shape {flat.shape}"
            )
        if self._rows == self._slab.shape[0]:
            self._grow(max(2 * self._slab.shape[0], 1))
        self._slab[self._rows] = flat
        self._rows += 1
        return self._rows - 1

    def _grow(self, capacity: int) -> None:
        """Reallocate the slab to ``capacity`` rows (generation bump)."""
        if self._shm is not None:
            old = self._shm
            grown_shm = shm_registry.create_segment(
                capacity * self.spec.total * self.dtype.itemsize
            )
            grown = self._segment_slab(grown_shm, capacity)
            grown[: self._rows] = self._slab[: self._rows]
            self._slab = grown
            self._shm = grown_shm
            # The old name disappears from /dev/shm immediately; workers
            # still mapping it keep reading valid memory and re-attach to
            # the new name when the next handle arrives.
            shm_registry.unlink_segment(old.name)
        else:
            grown = np.empty((capacity, self.spec.total), dtype=self.dtype)
            grown[: self._rows] = self._slab[: self._rows]
            self._slab = grown
        self.generation += 1

    # ------------------------------------------- shared-memory lifecycle
    def to_shared(self) -> "WeightArena":
        """Migrate the slab into a shared-memory segment (idempotent).

        One bit-exact copy of the live rows plus the growth headroom;
        bumps ``generation`` so cached row views rebuild against the new
        buffer.  Returns ``self`` for chaining.
        """
        if self._shm is not None:
            return self
        if self._attached:
            raise RuntimeError("attached arenas are already shared")
        self.uid = shm_registry.new_uid()
        segment = shm_registry.create_segment(
            self.capacity * self.spec.total * self.dtype.itemsize
        )
        slab = self._segment_slab(segment, self.capacity)
        slab[: self._rows] = self._slab[: self._rows]
        self._slab = slab
        self._shm = segment
        self.generation += 1
        return self

    # ------------------------------------------------ spill (mmap) backing
    def to_spilled(self, path=None) -> "WeightArena":
        """Migrate the slab into a memory-mapped file (idempotent).

        One bit-exact copy of the live rows into ``path`` (a temp file
        when omitted, removed at interpreter exit), after which the
        arena's rows are file-backed: :attr:`resident_nbytes` is 0 and
        the kernel pages rows in on demand.  The growth headroom is
        trimmed — spilled arenas are frozen archives (:meth:`intern`
        raises) — and a shared-memory segment, if any, is unlinked once
        its contents land in the file.  Bumps ``generation`` so cached
        row views rebuild.  Returns ``self`` for chaining.
        """
        if self._mmap_path is not None:
            return self
        if self._attached:
            raise RuntimeError(
                "attached arenas cannot be spilled; only the owner "
                "chooses the backing"
            )
        if path is None:
            fd, name = tempfile.mkstemp(prefix="repro-spill-", suffix=".bin")
            os.close(fd)
            path = Path(name)
            _TEMP_SPILLS.add(path)
        else:
            path = Path(path)
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
        slab = np.memmap(
            path,
            dtype=self.dtype,
            mode="w+",
            shape=(max(1, self._rows), self.spec.total),
        )
        slab[: self._rows] = self._slab[: self._rows]
        slab.flush()
        if self._shm is not None:
            old_name = self._shm.name
            self._shm = None
            self.uid = None
            shm_registry.unlink_segment(old_name)
        self._slab = slab
        self._mmap_path = path
        self.generation += 1
        return self

    def close(self) -> None:
        """Release any non-heap backing and revert to heap (idempotent).

        The inverse of :meth:`to_shared` / :meth:`to_spilled`: live rows
        are copied back to a heap slab (so the arena stays fully usable
        — and re-shareable or re-spillable — afterwards, never pickling
        a handle to a name that no longer exists), then the
        shared-memory segment is unlinked or the spill file deleted.
        Mappings held by attached workers stay valid; the memory is
        reclaimed when the last one is collected.  Attached arenas never
        unlink or delete: the owner does.
        """
        if self._attached:
            return
        if self._shm is not None:
            heap = np.empty((self.capacity, self.spec.total), dtype=self.dtype)
            heap[: self._rows] = self._slab[: self._rows]
            old_name = self._shm.name
            self._slab = heap
            self._shm = None
            self.uid = None
            self.generation += 1
            shm_registry.unlink_segment(old_name)
            return
        if self._mmap_path is not None:
            heap = np.empty(
                (max(1, self._rows), self.spec.total), dtype=self.dtype
            )
            heap[: self._rows] = self._slab[: self._rows]
            path = self._mmap_path
            self._slab = heap
            self._mmap_path = None
            self.generation += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            _TEMP_SPILLS.discard(path)

    def __enter__(self) -> "WeightArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------- cost model
    def _cost_footprint(self, walk) -> tuple[int, int]:
        """(bytes actually shipped, dense working-set bytes) — the
        :mod:`repro.substrate.cost` hook.  Shared and spilled arenas
        ship a few-hundred-byte attach handle instead of the slab."""
        handle = self._shm is not None or self._mmap_path is not None
        return (HANDLE_NBYTES if handle else self.nbytes, self.nbytes)

    # ------------------------------------------------------------ pickling
    def __getstate__(self) -> dict:
        if self._shm is not None:
            # Attach-by-name handle: the receiver maps the segment, it
            # never receives the bytes.
            return {
                "mode": "shm",
                "uid": self.uid,
                "name": self._shm.name,
                "generation": self.generation,
                "rows": self._rows,
                "capacity": self.capacity,
                "spec_shapes": self.spec.shapes,
                "dtype": self.dtype.str,
            }
        if self._mmap_path is not None:
            # Attach-by-path handle: the receiver maps the spill file
            # read-only; the bytes stay on disk.
            return {
                "mode": "mmap",
                "path": str(self._mmap_path),
                "generation": self.generation,
                "rows": self._rows,
                "spec_shapes": self.spec.shapes,
                "dtype": self.dtype.str,
            }
        # Ship only the written rows, never the growth headroom: a pickled
        # arena is exactly one contiguous buffer of live models.
        return {
            "spec_shapes": self.spec.shapes,
            "dtype": self.dtype.str,
            "slab": np.ascontiguousarray(self._slab[: self._rows]),
        }

    def __setstate__(self, state: dict) -> None:
        self.spec = FlatSpec(state["spec_shapes"])
        self.dtype = np.dtype(state["dtype"])
        self._mmap_path = None
        if state.get("mode") == "shm":
            self.uid = state["uid"]
            segment = shm_registry.attach_cached(self.uid, state["name"])
            self._shm = segment
            self._attached = True
            capacity = min(
                state["capacity"],
                segment.size // (self.spec.total * self.dtype.itemsize),
            )
            self._slab = self._segment_slab(segment, capacity)
            self._rows = state["rows"]
            self.generation = state["generation"]
            return
        if state.get("mode") == "mmap":
            self._mmap_path = Path(state["path"])
            self._rows = state["rows"]
            self._slab = np.memmap(
                self._mmap_path,
                dtype=self.dtype,
                mode="r",
                shape=(max(1, self._rows), self.spec.total),
            )
            self._shm = None
            self._attached = True
            self.uid = None
            self.generation = state["generation"]
            return
        slab = state["slab"]
        self._slab = np.array(slab, dtype=self.dtype, copy=True)
        self._rows = slab.shape[0]
        self._shm = None
        self._attached = False
        self.uid = None
        self.generation = 0
