"""The per-tangle weight arena: contiguous row-per-transaction storage.

Every transaction of a tangle carries a model with the same architecture
(the genesis model's).  Storing each model as its own list of per-layer
arrays scatters the hottest data in the system across thousands of small
allocations and makes every boundary crossing — aggregation, walk
evaluation, process-pool pickling, persistence — pay per-array overhead.

The :class:`WeightArena` instead keeps all models in one 2-D slab, one
row per transaction, in flat (:class:`~repro.nn.serialization.FlatSpec`)
order.  Rows are immutable once written and exposed as read-only views,
so transactions can hand out zero-copy per-layer views; stacked
aggregation over arena-resident models is a row-slice away; and pickling
a tangle ships one contiguous buffer instead of re-pickling every model.

``dtype`` defaults to ``float64`` (bit-identical to the historical
list-of-arrays path).  ``float32`` halves memory and IPC volume at the
cost of rounding every stored model to single precision — evaluation
accuracy is unaffected in practice, but results are no longer
bit-comparable with float64 runs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.serialization import FlatSpec

__all__ = ["WeightArena"]


class WeightArena:
    """Append-only 2-D slab of flat model-weight rows."""

    def __init__(
        self,
        spec: FlatSpec,
        *,
        dtype: np.dtype | type = np.float64,
        initial_capacity: int = 16,
    ):
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"arena dtype must be float64 or float32, got {dtype}")
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self.spec = spec
        self.dtype = dtype
        self._slab = np.empty((initial_capacity, spec.total), dtype=dtype)
        self._rows = 0
        # Bumped whenever the slab is reallocated (growth): holders of
        # cached row views use it to notice their base buffer is a
        # superseded generation and rebuild, so old slabs are not kept
        # alive indefinitely through stale views.
        self.generation = 0

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return self._rows

    @property
    def capacity(self) -> int:
        return self._slab.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes of live (written) rows."""
        return self._rows * self.spec.total * self.dtype.itemsize

    def row(self, index: int) -> np.ndarray:
        """Read-only 1-D view of one stored model."""
        if not 0 <= index < self._rows:
            raise IndexError(f"arena row {index} out of range (have {self._rows})")
        view = self._slab[index]
        view.flags.writeable = False
        return view

    def rows(self, indices) -> np.ndarray:
        """Stacked ``(k, total)`` matrix of the given rows.

        A contiguous ascending range comes back as a zero-copy slice of
        the slab; arbitrary index lists pay one gather.
        """
        indices = list(indices)
        for i in indices:
            if not 0 <= i < self._rows:
                raise IndexError(f"arena row {i} out of range (have {self._rows})")
        if indices and indices == list(range(indices[0], indices[0] + len(indices))):
            view = self._slab[indices[0] : indices[0] + len(indices)]
            view.flags.writeable = False
            return view
        return self._slab[indices]

    # ------------------------------------------------------------ mutation
    def intern(self, flat: np.ndarray) -> int:
        """Copy a flat vector into the slab; returns its row index."""
        flat = np.asarray(flat)
        if flat.shape != (self.spec.total,):
            raise ValueError(
                f"expected a ({self.spec.total},) vector, got shape {flat.shape}"
            )
        if self._rows == self._slab.shape[0]:
            grown = np.empty(
                (max(2 * self._slab.shape[0], 1), self.spec.total), dtype=self.dtype
            )
            grown[: self._rows] = self._slab[: self._rows]
            self._slab = grown
            self.generation += 1
        self._slab[self._rows] = flat
        self._rows += 1
        return self._rows - 1

    # ------------------------------------------------------------ pickling
    def __getstate__(self) -> dict:
        # Ship only the written rows, never the growth headroom: a pickled
        # arena is exactly one contiguous buffer of live models.
        return {
            "spec_shapes": self.spec.shapes,
            "dtype": self.dtype.str,
            "slab": np.ascontiguousarray(self._slab[: self._rows]),
        }

    def __setstate__(self, state: dict) -> None:
        self.spec = FlatSpec(state["spec_shapes"])
        self.dtype = np.dtype(state["dtype"])
        slab = state["slab"]
        self._slab = np.array(slab, dtype=self.dtype, copy=True)
        self._rows = slab.shape[0]
        self.generation = 0
