"""Tip-selection algorithms.

Three selectors are provided:

- :class:`RandomTipSelector` — uniform over current tips (the paper's
  "random tip selector" baseline in the poisoning study);
- :class:`WeightedTipSelector` — the classic tangle walk biased by
  cumulative transaction weight (Figure 3 of the paper);
- :class:`AccuracyTipSelector` — the paper's contribution: the walk is
  biased by each candidate model's accuracy *on the selecting client's
  local test data* (Algorithm 1), with either the standard (Eq. 1-2) or
  the dynamic-spread (Eq. 3) normalization.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.dag.random_walk import random_walk, sample_walk_start
from repro.dag.tangle import Tangle

__all__ = [
    "TipSelector",
    "RandomTipSelector",
    "WeightedTipSelector",
    "AccuracyTipSelector",
    "normalize_standard",
    "normalize_dynamic",
    "accuracy_walk_weights",
]

AccuracyFn = Callable[[str], float]
BatchAccuracyFn = Callable[[Sequence[str]], np.ndarray]


def normalize_standard(accuracies: np.ndarray) -> np.ndarray:
    """Eq. 1: subtract the maximum accuracy (all values become <= 0)."""
    return accuracies - accuracies.max()


def normalize_dynamic(accuracies: np.ndarray) -> np.ndarray:
    """Eq. 3: additionally divide by the spread of accuracies.

    Makes the walk scale-free w.r.t. the absolute accuracy differences,
    which the paper shows helps small alpha values.  Falls back to the
    standard normalization when all accuracies are equal (zero spread).
    """
    spread = accuracies.max() - accuracies.min()
    shifted = accuracies - accuracies.max()
    if spread <= 0:
        return shifted  # all zero
    return shifted / spread


_NORMALIZATIONS = {
    "standard": normalize_standard,
    "dynamic": normalize_dynamic,
}


def accuracy_walk_weights(
    accuracies: np.ndarray, alpha: float, *, normalization: str = "standard"
) -> np.ndarray:
    """Walk-step probabilities from candidate accuracies (Eq. 1-3).

    ``weight = exp(alpha * normalized)``, then normalized to sum to one.
    Higher ``alpha`` means more determinism; ``alpha = 0`` is uniform.
    """
    try:
        normalize = _NORMALIZATIONS[normalization]
    except KeyError:
        raise ValueError(
            f"unknown normalization {normalization!r}; "
            f"expected one of {sorted(_NORMALIZATIONS)}"
        ) from None
    if accuracies.ndim != 1 or accuracies.size == 0:
        raise ValueError("accuracies must be a non-empty 1-D array")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    weights = np.exp(alpha * normalize(np.asarray(accuracies, dtype=np.float64)))
    return weights / weights.sum()


class TipSelector(Protocol):
    """Interface: produce the tips a new transaction should approve."""

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        """Return ``count`` tip ids (may repeat if fewer tips exist)."""
        ...


class RandomTipSelector:
    """Uniform choice among the current tips (no walk)."""

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        """``count`` tips drawn uniformly (distinct while supply lasts)."""
        tips = tangle.tips()
        distinct = min(count, len(tips))
        chosen = list(rng.choice(len(tips), size=distinct, replace=False))
        selected = [tips[i] for i in chosen]
        while len(selected) < count:
            selected.append(tips[int(rng.integers(0, len(tips)))])
        return selected


class WeightedTipSelector:
    """Classic cumulative-weight-biased walk (traditional tangle).

    Transition weights are ``exp(alpha * (w - max(w)))`` over the
    approvers' cumulative weights, the Markov-chain Monte Carlo rule of
    Popov's tangle.  Weight queries hit the tangle's incremental index —
    fetched for a whole step's approvers in **one** batched
    ``cumulative_weights`` query where the store provides it — so a walk
    is linear in its length rather than quadratic in tangle size.

    ``engine=True`` runs all ``count`` walks in lockstep over a CSR
    snapshot of the visible tangle (:mod:`repro.dag.walk_engine`), with
    cumulative weights read from the snapshot's vectorized array —
    distribution-identical to the sequential walk, deterministic for a
    fixed seed, but consuming the generator in different blocks.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        *,
        depth_range: tuple[int, int] = (15, 25),
        engine: bool = False,
    ):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.depth_range = depth_range
        self.engine = engine

    def _select_tips_engine(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        from repro.dag import walk_engine

        snapshot = walk_engine.snapshot_for(tangle)
        # The snapshot's weight array *is* a complete score table: pass
        # it as the memo so the scoring round-trip never runs.
        weights = snapshot.cumulative_weights_float()
        starts = walk_engine.batched_walk_starts(
            snapshot, count, rng, depth_range=self.depth_range
        )
        finals = walk_engine.lockstep_walks(
            snapshot,
            starts,
            lambda nodes: weights[nodes],
            alpha=self.alpha,
            normalization="standard",
            rng=rng,
            score_memo=weights,
        )
        return [snapshot.ids[node] for node in finals]

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        """``count`` tips via weight-biased walks (lockstep when
        ``engine`` is set, else one sequential walk per tip)."""
        if self.engine:
            return self._select_tips_engine(tangle, count, rng)
        batch_weights = getattr(tangle, "cumulative_weights", None)

        def transition(
            _node: str, approvers: list[str], step_rng: np.random.Generator
        ) -> str:
            if batch_weights is not None:
                weights = np.asarray(batch_weights(approvers), dtype=np.float64)
            else:  # stores without the batched query (e.g. bare mappings)
                weights = np.array(
                    [tangle.cumulative_weight(a) for a in approvers],
                    dtype=np.float64,
                )
            probs = np.exp(self.alpha * (weights - weights.max()))
            probs /= probs.sum()
            return approvers[int(step_rng.choice(len(approvers), p=probs))]

        selected = []
        for _ in range(count):
            start = sample_walk_start(tangle, rng, depth_range=self.depth_range)
            selected.append(random_walk(tangle, start, transition, rng))
        return selected


class AccuracyTipSelector:
    """The paper's accuracy-biased tip selection (Algorithm 1).

    Evaluation contract (the walk's hot path):

    - ``accuracy_fn`` evaluates one transaction's model on the *selecting
      client's* local test data.  Implementations **must** cache per
      transaction id (as :meth:`repro.fl.client.Client.tx_accuracy`
      does): walks revisit candidates constantly, a transaction's model
      never changes, and an uncached function turns every walk step into
      a full model evaluation.
    - ``batch_accuracy_fn``, when given, is preferred over
      ``accuracy_fn``: it receives all uncached-or-cached candidate ids
      of a walk step at once and returns their accuracies as one array
      (:meth:`repro.fl.client.Client.tx_accuracies`).  Beyond collapsing
      the per-candidate call overhead, this is the entry point of the
      **fused evaluation plane**: the step's uncached candidates are
      evaluated in one vectorized forward pass over a ``(k, P)`` stack
      of their arena rows (:meth:`repro.nn.model.Classifier.accuracy_many`),
      falling back per model for architectures without fused kernels.
    - ``evaluation_counter`` (optional) is called once per walk step with
      the number of candidates considered — the scalability experiment
      (Figure 15) uses it to account walk cost independently of caching.
      The lockstep engine preserves this accounting exactly: one call
      per particle per superstep with that particle's candidate count.

    ``engine=True`` switches :meth:`select_tips` to the lockstep
    multi-walk engine (:mod:`repro.dag.walk_engine`): all ``count``
    particles advance in supersteps over a cached CSR snapshot of the
    visible tangle, and each superstep scores the **union** of the live
    particles' candidate frontiers with one ``batch_accuracy_fn`` call —
    wider fused ``accuracy_many`` batches than any single particle's
    step.  The sequential per-particle walk remains the oracle:
    distribution-identical (the engine samples by Gumbel-max over the
    same softmax weights) but not draw-for-draw identical, since the
    generator is consumed in blocks.

    At least one of ``accuracy_fn`` / ``batch_accuracy_fn`` is required;
    both may be supplied (the batch function wins).
    """

    def __init__(
        self,
        accuracy_fn: AccuracyFn | None = None,
        *,
        batch_accuracy_fn: BatchAccuracyFn | None = None,
        alpha: float = 10.0,
        normalization: str = "standard",
        depth_range: tuple[int, int] = (15, 25),
        evaluation_counter: Callable[[int], None] | None = None,
        engine: bool = False,
        score_cache_fn: Callable[[], dict] | None = None,
        cache_epoch_fn: Callable[[], int] | None = None,
    ):
        if normalization not in _NORMALIZATIONS:
            raise ValueError(f"unknown normalization {normalization!r}")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if accuracy_fn is None and batch_accuracy_fn is None:
            raise ValueError(
                "one of accuracy_fn / batch_accuracy_fn is required"
            )
        self.accuracy_fn = accuracy_fn
        self.batch_accuracy_fn = batch_accuracy_fn
        self.alpha = alpha
        self.normalization = normalization
        self.depth_range = depth_range
        self.evaluation_counter = evaluation_counter
        self.engine = engine
        # ``score_cache_fn`` (engine mode): returns the caller's
        # transaction-accuracy cache (tx id -> accuracy), used to
        # prefill the engine's score memo so supersteps only round-trip
        # through ``batch_accuracy_fn`` for genuinely unevaluated
        # models.  :func:`repro.substrate.build_selector` wires it to
        # :meth:`repro.fl.client.Client.tx_accuracy_cache`.
        # ``cache_epoch_fn`` reports that cache's generation
        # (:attr:`Client.cache_epoch`): a bump — reset, wholesale
        # restore, personalization-tail change — invalidates the memo.
        self.score_cache_fn = score_cache_fn
        self.cache_epoch_fn = cache_epoch_fn
        # Per-snapshot engine score memo (node -> accuracy, NaN =
        # unknown).  Sound for the lifetime of a snapshot: a
        # transaction's model never changes and the selector is bound to
        # one client's accuracy function.  Replaced whenever the walk
        # runs against a different snapshot (new epoch or view) or the
        # mirrored cache's epoch changes.
        self._engine_snapshot = None
        self._engine_memo: np.ndarray | None = None
        self._engine_memo_epoch: object = None

    def _candidate_accuracies(self, approvers: list[str]) -> np.ndarray:
        if self.batch_accuracy_fn is not None:
            return np.asarray(self.batch_accuracy_fn(approvers), dtype=np.float64)
        return np.array(
            [self.accuracy_fn(a) for a in approvers], dtype=np.float64
        )

    def _transition(
        self, _node: str, approvers: list[str], rng: np.random.Generator
    ) -> str:
        if self.evaluation_counter is not None:
            self.evaluation_counter(len(approvers))
        accuracies = self._candidate_accuracies(approvers)
        probs = accuracy_walk_weights(
            accuracies, self.alpha, normalization=self.normalization
        )
        return approvers[int(rng.choice(len(approvers), p=probs))]

    def _select_tips_engine(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        from repro.dag import walk_engine

        snapshot = walk_engine.snapshot_for(tangle)
        # Without an epoch probe, freshness of mirrored scores can't be
        # proven across calls — rebuild the memo every selection (the
        # sequential path re-asks its accuracy function too).  With the
        # probe (how build_selector wires clients), the memo persists
        # until the cache's epoch bumps.
        epoch = object() if self.cache_epoch_fn is None else self.cache_epoch_fn()
        if self._engine_snapshot is not snapshot or self._engine_memo_epoch != epoch:
            self._engine_snapshot = snapshot
            self._engine_memo_epoch = epoch
            if self.score_cache_fn is not None and (cache := self.score_cache_fn()):
                get = cache.get
                self._engine_memo = np.array(
                    [get(tx_id, np.nan) for tx_id in snapshot.ids]
                )
            else:
                self._engine_memo = np.full(len(snapshot), np.nan)
        starts = walk_engine.batched_walk_starts(
            snapshot, count, rng, depth_range=self.depth_range
        )

        def score_fn(nodes: np.ndarray) -> np.ndarray:
            return self._candidate_accuracies(
                [snapshot.ids[node] for node in nodes]
            )

        finals = walk_engine.lockstep_walks(
            snapshot,
            starts,
            score_fn,
            alpha=self.alpha,
            normalization=self.normalization,
            rng=rng,
            evaluation_counter=self.evaluation_counter,
            score_memo=self._engine_memo,
        )
        return [snapshot.ids[node] for node in finals]

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        """``count`` tips via accuracy-biased walks (Algorithm 1;
        lockstep supersteps when ``engine`` is set)."""
        if self.engine:
            return self._select_tips_engine(tangle, count, rng)
        selected = []
        for _ in range(count):
            start = sample_walk_start(tangle, rng, depth_range=self.depth_range)
            selected.append(random_walk(tangle, start, self._transition, rng))
        return selected
