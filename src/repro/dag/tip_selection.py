"""Tip-selection algorithms.

Three selectors are provided:

- :class:`RandomTipSelector` — uniform over current tips (the paper's
  "random tip selector" baseline in the poisoning study);
- :class:`WeightedTipSelector` — the classic tangle walk biased by
  cumulative transaction weight (Figure 3 of the paper);
- :class:`AccuracyTipSelector` — the paper's contribution: the walk is
  biased by each candidate model's accuracy *on the selecting client's
  local test data* (Algorithm 1), with either the standard (Eq. 1-2) or
  the dynamic-spread (Eq. 3) normalization.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.dag.random_walk import random_walk, sample_walk_start
from repro.dag.tangle import Tangle

__all__ = [
    "TipSelector",
    "RandomTipSelector",
    "WeightedTipSelector",
    "AccuracyTipSelector",
    "normalize_standard",
    "normalize_dynamic",
    "accuracy_walk_weights",
]

AccuracyFn = Callable[[str], float]
BatchAccuracyFn = Callable[[Sequence[str]], np.ndarray]


def normalize_standard(accuracies: np.ndarray) -> np.ndarray:
    """Eq. 1: subtract the maximum accuracy (all values become <= 0)."""
    return accuracies - accuracies.max()


def normalize_dynamic(accuracies: np.ndarray) -> np.ndarray:
    """Eq. 3: additionally divide by the spread of accuracies.

    Makes the walk scale-free w.r.t. the absolute accuracy differences,
    which the paper shows helps small alpha values.  Falls back to the
    standard normalization when all accuracies are equal (zero spread).
    """
    spread = accuracies.max() - accuracies.min()
    shifted = accuracies - accuracies.max()
    if spread <= 0:
        return shifted  # all zero
    return shifted / spread


_NORMALIZATIONS = {
    "standard": normalize_standard,
    "dynamic": normalize_dynamic,
}


def accuracy_walk_weights(
    accuracies: np.ndarray, alpha: float, *, normalization: str = "standard"
) -> np.ndarray:
    """Walk-step probabilities from candidate accuracies (Eq. 1-3).

    ``weight = exp(alpha * normalized)``, then normalized to sum to one.
    Higher ``alpha`` means more determinism; ``alpha = 0`` is uniform.
    """
    try:
        normalize = _NORMALIZATIONS[normalization]
    except KeyError:
        raise ValueError(
            f"unknown normalization {normalization!r}; "
            f"expected one of {sorted(_NORMALIZATIONS)}"
        ) from None
    if accuracies.ndim != 1 or accuracies.size == 0:
        raise ValueError("accuracies must be a non-empty 1-D array")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    weights = np.exp(alpha * normalize(np.asarray(accuracies, dtype=np.float64)))
    return weights / weights.sum()


class TipSelector(Protocol):
    """Interface: produce the tips a new transaction should approve."""

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        """Return ``count`` tip ids (may repeat if fewer tips exist)."""
        ...


class RandomTipSelector:
    """Uniform choice among the current tips (no walk)."""

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        tips = tangle.tips()
        distinct = min(count, len(tips))
        chosen = list(rng.choice(len(tips), size=distinct, replace=False))
        selected = [tips[i] for i in chosen]
        while len(selected) < count:
            selected.append(tips[int(rng.integers(0, len(tips)))])
        return selected


class WeightedTipSelector:
    """Classic cumulative-weight-biased walk (traditional tangle).

    Transition weights are ``exp(alpha * (w - max(w)))`` over the
    approvers' cumulative weights, the Markov-chain Monte Carlo rule of
    Popov's tangle.  Weight queries hit the tangle's incremental index
    (O(1) per approver), so a walk is linear in its length rather than
    quadratic in tangle size.
    """

    def __init__(self, alpha: float = 0.5, *, depth_range: tuple[int, int] = (15, 25)):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.depth_range = depth_range

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        def transition(
            _node: str, approvers: list[str], step_rng: np.random.Generator
        ) -> str:
            weights = np.array(
                [tangle.cumulative_weight(a) for a in approvers], dtype=np.float64
            )
            probs = np.exp(self.alpha * (weights - weights.max()))
            probs /= probs.sum()
            return approvers[int(step_rng.choice(len(approvers), p=probs))]

        selected = []
        for _ in range(count):
            start = sample_walk_start(tangle, rng, depth_range=self.depth_range)
            selected.append(random_walk(tangle, start, transition, rng))
        return selected


class AccuracyTipSelector:
    """The paper's accuracy-biased tip selection (Algorithm 1).

    Evaluation contract (the walk's hot path):

    - ``accuracy_fn`` evaluates one transaction's model on the *selecting
      client's* local test data.  Implementations **must** cache per
      transaction id (as :meth:`repro.fl.client.Client.tx_accuracy`
      does): walks revisit candidates constantly, a transaction's model
      never changes, and an uncached function turns every walk step into
      a full model evaluation.
    - ``batch_accuracy_fn``, when given, is preferred over
      ``accuracy_fn``: it receives all uncached-or-cached candidate ids
      of a walk step at once and returns their accuracies as one array
      (:meth:`repro.fl.client.Client.tx_accuracies`).  Beyond collapsing
      the per-candidate call overhead, this is the entry point of the
      **fused evaluation plane**: the step's uncached candidates are
      evaluated in one vectorized forward pass over a ``(k, P)`` stack
      of their arena rows (:meth:`repro.nn.model.Classifier.accuracy_many`),
      falling back per model for architectures without fused kernels.
    - ``evaluation_counter`` (optional) is called once per walk step with
      the number of candidates considered — the scalability experiment
      (Figure 15) uses it to account walk cost independently of caching.

    At least one of ``accuracy_fn`` / ``batch_accuracy_fn`` is required;
    both may be supplied (the batch function wins).
    """

    def __init__(
        self,
        accuracy_fn: AccuracyFn | None = None,
        *,
        batch_accuracy_fn: BatchAccuracyFn | None = None,
        alpha: float = 10.0,
        normalization: str = "standard",
        depth_range: tuple[int, int] = (15, 25),
        evaluation_counter: Callable[[int], None] | None = None,
    ):
        if normalization not in _NORMALIZATIONS:
            raise ValueError(f"unknown normalization {normalization!r}")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if accuracy_fn is None and batch_accuracy_fn is None:
            raise ValueError(
                "one of accuracy_fn / batch_accuracy_fn is required"
            )
        self.accuracy_fn = accuracy_fn
        self.batch_accuracy_fn = batch_accuracy_fn
        self.alpha = alpha
        self.normalization = normalization
        self.depth_range = depth_range
        self.evaluation_counter = evaluation_counter

    def _candidate_accuracies(self, approvers: list[str]) -> np.ndarray:
        if self.batch_accuracy_fn is not None:
            return np.asarray(self.batch_accuracy_fn(approvers), dtype=np.float64)
        return np.array(
            [self.accuracy_fn(a) for a in approvers], dtype=np.float64
        )

    def _transition(
        self, _node: str, approvers: list[str], rng: np.random.Generator
    ) -> str:
        if self.evaluation_counter is not None:
            self.evaluation_counter(len(approvers))
        accuracies = self._candidate_accuracies(approvers)
        probs = accuracy_walk_weights(
            accuracies, self.alpha, normalization=self.normalization
        )
        return approvers[int(rng.choice(len(approvers), p=probs))]

    def select_tips(
        self, tangle: Tangle, count: int, rng: np.random.Generator
    ) -> list[str]:
        selected = []
        for _ in range(count):
            start = sample_walk_start(tangle, rng, depth_range=self.depth_range)
            selected.append(random_walk(tangle, start, self._transition, rng))
        return selected
