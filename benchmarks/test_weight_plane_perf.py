"""Weight-plane benchmarks: vectorized aggregation and the flat round loop.

Two enforced floors, recorded to ``BENCH_weights.json`` for CI:

- **Aggregation**: merging 32 arena-resident models with the vectorized
  stacked-matrix mean must be >= 3x faster than the per-layer Python
  loop the seed shipped (``REFERENCE_AGGREGATORS``).  Median and
  trimmed mean are reported alongside (no floor — they were already
  numpy-dominated per layer).
- **Round loop**: a walk-evaluate/merge/publish loop over the flat plane
  (``Classifier.load_flat`` + accuracy-only evaluation + flat mean +
  ``Transaction.from_flat``) must be >= 1.3x faster than the same loop
  through the seed's primitives (reallocating ``set_weights``, full
  loss+accuracy ``evaluate``, per-layer mean, list-of-arrays publish) —
  while producing **bit-identical** accuracies and merged models in
  float64 (two-parent merges reduce in the same order on both paths).

Timings are best-of-N so a noisy-neighbor stall on a shared CI runner
cannot flake the comparison.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.fl.aggregation import FLAT_AGGREGATORS, REFERENCE_AGGREGATORS
from repro.nn import zoo

AGGREGATION_FLOOR = 3.0
ROUND_LOOP_FLOOR = 1.3

_RESULTS: dict = {}


def _best_of(fn, repeats=5):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _legacy_set_weights(model, weights):
    """The seed's weight load: fresh value and grad arrays per layer."""
    for param, value in zip(model.net.parameters(), weights):
        param.value = np.array(value, dtype=np.float64, copy=True)
        param.grad = np.zeros_like(param.value)


# ------------------------------------------------------------ aggregation
def test_vectorized_aggregation_speedup_on_32_model_merge():
    """32 FMNIST-CNN models (8 parameter arrays each, the regime where
    the per-layer loop's Python overhead is at its most realistic)."""
    cnn = zoo.build_fmnist_cnn(np.random.default_rng(0), image_size=14, size="small")
    spec = cnn.flat_spec
    rng = np.random.default_rng(1)
    k = 32
    # Old system: each model its own list of per-layer arrays.
    weight_sets = [[rng.normal(size=s) for s in spec.shapes] for _ in range(k)]
    # New system: the same models as rows of a tangle's arena; a
    # contiguous run of rows stacks as a zero-copy slab view.
    slab = np.stack([spec.flatten(ws) for ws in weight_sets])

    report = {}
    for name in ["mean", "median", "trimmed_mean"]:
        legacy_time, legacy = _best_of(lambda: REFERENCE_AGGREGATORS[name](weight_sets))
        flat_time, flat = _best_of(lambda: spec.unflatten(FLAT_AGGREGATORS[name](slab)))
        for a, b in zip(legacy, flat):
            np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
        report[name] = {
            "legacy_ms": legacy_time * 1e3,
            "flat_ms": flat_time * 1e3,
            "speedup": legacy_time / flat_time,
        }

    _RESULTS["aggregation"] = {
        "workload": f"{k}-model merge, fmnist-cnn-small ({spec.total} params, "
        f"{len(spec)} arrays)",
        "models": k,
        "parameters": spec.total,
        "floor_mean": AGGREGATION_FLOOR,
        **report,
    }
    speedup = report["mean"]["speedup"]
    assert speedup >= AGGREGATION_FLOOR, (
        f"vectorized mean only {speedup:.1f}x over the per-layer loop "
        f"(floor {AGGREGATION_FLOOR}x)"
    )


# ------------------------------------------------------------- round loop
def _grown_tangle(genesis, n=60):
    tangle = Tangle([w.copy() for w in genesis])
    ids = [GENESIS_ID]
    rng = np.random.default_rng(2)
    for i in range(n):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        perturbed = [w + rng.normal(0.0, 0.05, size=w.shape) for w in genesis]
        tangle.add(Transaction(f"t{i}", parents, perturbed, i % 10, i // 10))
        ids.append(f"t{i}")
    return tangle, ids


def test_flat_round_loop_speedup_and_equivalence():
    """Walk-evaluate candidates, merge two parents, publish — the per-round
    data-plane work — through seed primitives vs the flat plane."""
    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=196, hidden=(256,), num_classes=10
    )
    spec = model.flat_spec
    rng = np.random.default_rng(1)
    x = rng.normal(size=(8, 196))  # small local test set, the walk's regime
    y = rng.integers(0, 10, size=8)
    tangle, ids = _grown_tangle(model.get_weights())
    rounds, candidates = 20, 12

    def legacy_loop():
        walk_rng = np.random.default_rng(3)
        accuracies, published = [], []
        for _ in range(rounds):
            chosen = [
                ids[int(walk_rng.integers(0, len(ids)))] for _ in range(candidates)
            ]
            for tx_id in chosen:
                _legacy_set_weights(model, tangle.get(tx_id).model_weights)
                accuracies.append(model.evaluate(x, y)[1])
            parents = [tangle.get(p).model_weights for p in dict.fromkeys([chosen[0], chosen[-1]])]
            published.append(REFERENCE_AGGREGATORS["mean"](parents))
        return accuracies, [spec.flatten(w) for w in published]

    def flat_loop():
        walk_rng = np.random.default_rng(3)
        accuracies, published = [], []
        for _ in range(rounds):
            chosen = [
                ids[int(walk_rng.integers(0, len(ids)))] for _ in range(candidates)
            ]
            for tx_id in chosen:
                model.load_flat(tangle.flat_weights(tx_id))
                accuracies.append(model.accuracy(x, y))
            parent_rows = np.stack(
                [tangle.flat_weights(p) for p in dict.fromkeys([chosen[0], chosen[-1]])]
            )
            published.append(FLAT_AGGREGATORS["mean"](parent_rows))
        return accuracies, published

    legacy_time, (legacy_accs, legacy_models) = _best_of(legacy_loop)
    flat_time, (flat_accs, flat_models) = _best_of(flat_loop)

    # Equivalence: same walks, bit-identical accuracies and merged models.
    assert legacy_accs == flat_accs
    for a, b in zip(legacy_models, flat_models):
        np.testing.assert_array_equal(a, b)

    speedup = legacy_time / flat_time
    _RESULTS["round_loop"] = {
        "workload": f"{rounds} rounds x {candidates} walk evaluations, "
        f"mlp-196-256-10 ({spec.total} params), 8-sample local test set",
        "legacy_ms": legacy_time * 1e3,
        "flat_ms": flat_time * 1e3,
        "speedup": speedup,
        "floor": ROUND_LOOP_FLOOR,
        "bit_identical_float64": True,
    }
    assert speedup >= ROUND_LOOP_FLOOR, (
        f"flat round loop only {speedup:.2f}x over the list-of-arrays "
        f"baseline (floor {ROUND_LOOP_FLOOR}x)"
    )


def test_zzz_emit_bench_weights_json():
    """Write the trajectory file CI uploads (runs after the measurements;
    the zzz prefix keeps pytest's in-file ordering explicit)."""
    assert "aggregation" in _RESULTS and "round_loop" in _RESULTS
    out = Path(
        os.environ.get(
            "BENCH_WEIGHTS_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_weights.json",
        )
    )
    out.write_text(json.dumps(_RESULTS, indent=2) + "\n")
    assert out.exists()
