"""Figure 15: random-walk cost vs concurrently active clients."""

import numpy as np
from benchmarks_shared import run_once

from repro.experiments import fig15


def test_fig15(benchmark, scale):
    result = run_once(benchmark, fig15.run, scale, seed=0)
    runs = result["runs"]
    durations = {
        int(active): run["mean_duration"] for active, run in runs.items()
    }
    counts = sorted(durations)
    # Shape: the walk cost grows far slower than the concurrency — the
    # paper calls the differences "marginal".  Allow sub-linear growth:
    # 4x the active clients must cost well under 4x the walk time.
    low, high = counts[0], counts[-1]
    ratio = durations[high] / max(durations[low], 1e-9)
    assert ratio < (high / low) * 0.75
    # Every run recorded per-round series of the right length.
    for run in runs.values():
        assert len(run["walk_duration"]) == scale.rounds
        assert all(np.isfinite(run["walk_duration"]))
