"""Benchmark configuration.

Each benchmark runs one paper experiment end-to-end (once — these are
seconds-long macro-benchmarks, not micro-benchmarks) and asserts the
qualitative shape the paper reports.  Set ``REPRO_SCALE=default`` or
``paper`` for higher-fidelity runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import resolve_scale


@pytest.fixture(scope="session")
def scale():
    return resolve_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
