"""Benchmark configuration.

Each benchmark runs one paper experiment end-to-end (once — these are
seconds-long macro-benchmarks, not micro-benchmarks) and asserts the
qualitative shape the paper reports.  Set ``REPRO_SCALE=default`` or
``paper`` for higher-fidelity runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Benchmark modules share helpers via ``benchmarks_shared``; under
# --import-mode=importlib (the repo default) test directories are not put
# on sys.path automatically, so do it here (conftests load first).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.scale import resolve_scale  # noqa: E402


@pytest.fixture(scope="session")
def scale():
    return resolve_scale()
