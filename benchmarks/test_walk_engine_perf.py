"""Lockstep walk-engine benchmarks: frontier-batched tip selection.

PR 3 fused a single walk *step*'s candidate evaluations; the engine
(`repro.dag.walk_engine`) batches across a whole selection: every
particle advances in lockstep supersteps over a per-epoch CSR snapshot,
scores come from a NaN-sentinel memo prefilled from the client cache,
and each particle's next node is drawn by row-wise Gumbel-max — no
per-step Python dict walking, no ``rng.choice``.

Enforced floors, recorded to ``BENCH_walk_engine.json`` for CI:

- **Kernel**: a full ``select_tips(count=5)`` on the simulation-profile
  MLP tangle (mlp-100-16-10 models, round-grown DAG: 16 rounds x 8
  publications — the simulator's shape) must be >= 3x faster than the
  sequential per-particle walker in the steady-state regime (client
  cache warm, snapshot cached for the epoch).  The two walkers draw
  from the *same tip distribution* (asserted by total-variation
  distance over thousands of walks; the per-superstep transition law is
  pinned analytically in ``tests/property/test_properties_walk_engine.py``).
- **End-to-end**: a walk-heavy ``TangleLearning`` run (tiny local
  training, 10 clients/round) must not lose round throughput with the
  engine on, and the summed per-round walk time must improve.

Also recorded (no floor): a shallow and a deep tangle shape, and the
cold-cache variant (first-contact selections, where model evaluation
dominates both paths).  Timings are best-of-N so a noisy-neighbor stall
on a shared CI runner cannot flake the comparison.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import AccuracyTipSelector
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.walk_engine import clear_snapshot_cache
from repro.fl import Client, DagConfig, TangleLearning, TrainingConfig
from repro.nn import zoo

KERNEL_FLOOR = 3.0
COUNT = 5  # particles per selection
SELECTIONS = 20  # selections per timed batch
DISTRIBUTION_SELECTIONS = 300  # per walker, for the distribution assert
TV_LIMIT = 0.15

_RESULTS: dict = {}


class _Data:
    client_id = 0
    metadata: dict = {}

    def __init__(self, rng):
        self.x_train = rng.normal(size=(16, 100))
        self.y_train = rng.integers(0, 10, size=16)
        self.x_test = rng.normal(size=(8, 100))
        self.y_test = rng.integers(0, 10, size=8)


def _best_of(fn, repeats=7):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _round_grown_tangle(model, rounds, per_round, sigma=0.05, seed=2):
    """A DAG with the simulator's shape: ``per_round`` publications per
    round, each approving two tips of the previous round's view — width
    ~per_round, depth ~rounds (uniform-parent growth is much shallower
    than anything the simulators produce)."""
    genesis = model.get_weights()
    tangle = Tangle([w.copy() for w in genesis])
    rng = np.random.default_rng(seed)
    ids = [GENESIS_ID]
    for round_index in range(rounds):
        tips = tangle.tips()
        batch = []
        for client in range(per_round):
            parents = tuple(
                dict.fromkeys(
                    tips[int(rng.integers(0, len(tips)))] for _ in range(2)
                )
            )
            perturbed = [w + rng.normal(0.0, sigma, size=w.shape) for w in genesis]
            batch.append(
                Transaction(
                    f"r{round_index}c{client}", parents, perturbed, client, round_index
                )
            )
        for tx in batch:  # barrier: the round's view excluded these
            tangle.add(tx)
            ids.append(tx.tx_id)
    return tangle, ids


def _selectors(client, tangle):
    def make(engine):
        return AccuracyTipSelector(
            batch_accuracy_fn=lambda tx_ids: client.tx_accuracies(tangle, tx_ids),
            alpha=10.0,
            depth_range=(15, 25),
            engine=engine,
            score_cache_fn=client.tx_accuracy_cache,
            cache_epoch_fn=lambda: client.cache_epoch,
        )

    return make(False), make(True)


def _tip_distribution(tips):
    counts: dict = {}
    for tip in tips:
        counts[tip] = counts.get(tip, 0) + 1
    return {tip: c / len(tips) for tip, c in counts.items()}


def _total_variation(p, q):
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in set(p) | set(q))


def _measure_selection(rounds, per_round):
    """(sequential_s, engine_s, tv) per SELECTIONS-batch on a warm client."""
    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=100, hidden=(16,), num_classes=10
    )
    tangle, ids = _round_grown_tangle(model, rounds, per_round)
    client = Client(_Data(np.random.default_rng(4)), model, TrainingConfig(), rng=1)
    client.tx_accuracies(tangle, ids)  # steady state: cache fully warm
    sequential, engine = _selectors(client, tangle)
    clear_snapshot_cache()
    engine.select_tips(tangle, COUNT, np.random.default_rng(0))  # epoch snapshot

    def run(selector, seed, selections=SELECTIONS):
        rng = np.random.default_rng(seed)
        tips = []
        for _ in range(selections):
            tips.extend(selector.select_tips(tangle, COUNT, rng))
        return tips

    sequential_s, _ = _best_of(lambda: run(sequential, 3))
    engine_s, _ = _best_of(lambda: run(engine, 3))
    tv = _total_variation(
        _tip_distribution(run(sequential, 11, DISTRIBUTION_SELECTIONS)),
        _tip_distribution(run(engine, 12, DISTRIBUTION_SELECTIONS)),
    )
    return sequential_s, engine_s, tv, tangle


# ----------------------------------------------------------------- kernel
def test_lockstep_selection_speedup_and_distribution():
    """The enforced kernel floor: select_tips(count=5), warm client, on
    the 16x8 round-grown simulation-profile MLP tangle."""
    sequential_s, engine_s, tv, tangle = _measure_selection(16, 8)
    speedup = sequential_s / engine_s
    _RESULTS["lockstep_selection"] = {
        "workload": f"select_tips(count={COUNT}) x {SELECTIONS}, "
        f"mlp-100-16-10 models, round-grown tangle 16x8 ({len(tangle)} txs), "
        "warm cache + epoch snapshot",
        "sequential_ms": sequential_s / SELECTIONS * 1e3,
        "engine_ms": engine_s / SELECTIONS * 1e3,
        "speedup": speedup,
        "floor": KERNEL_FLOOR,
        "tip_distribution_tv": tv,
        "tv_limit": TV_LIMIT,
    }
    assert tv < TV_LIMIT, f"engine tip distribution diverged (TV={tv:.3f})"
    assert speedup >= KERNEL_FLOOR, (
        f"lockstep selection only {speedup:.2f}x over the sequential "
        f"walker (floor {KERNEL_FLOOR}x)"
    )


def test_tangle_shape_sweep_recorded():
    """Shallow (young simulation) and deep (long simulation) shapes,
    recorded without floors — the trajectory should show where the
    frontier batching wins most."""
    for key, rounds, per_round in (("shallow_10x6", 10, 6), ("deep_30x8", 30, 8)):
        sequential_s, engine_s, tv, tangle = _measure_selection(rounds, per_round)
        _RESULTS[key] = {
            "workload": f"select_tips(count={COUNT}) x {SELECTIONS}, "
            f"round-grown tangle {rounds}x{per_round} ({len(tangle)} txs)",
            "sequential_ms": sequential_s / SELECTIONS * 1e3,
            "engine_ms": engine_s / SELECTIONS * 1e3,
            "speedup": sequential_s / engine_s,
            "tip_distribution_tv": tv,
        }
        assert tv < TV_LIMIT


def test_cold_cache_selection_recorded():
    """First-contact regime: the client has evaluated nothing, so model
    evaluation dominates both walkers.  The engine still batches wider
    (union frontiers) but the win honestly shrinks — recorded, no
    floor."""
    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=100, hidden=(16,), num_classes=10
    )
    tangle, _ = _round_grown_tangle(model, 16, 8)
    client = Client(_Data(np.random.default_rng(4)), model, TrainingConfig(), rng=1)
    clear_snapshot_cache()

    def run(engine_mode, seed):
        rng = np.random.default_rng(seed)
        tips = []
        for _ in range(5):
            # fresh cache AND fresh selector: the engine's epoch memo
            # must not carry scores past the reset
            client.reset_cache()
            selector = _selectors(client, tangle)[1 if engine_mode else 0]
            tips.extend(selector.select_tips(tangle, COUNT, rng))
        return tips

    sequential_s, _ = _best_of(lambda: run(False, 3), repeats=3)
    engine_s, _ = _best_of(lambda: run(True, 3), repeats=3)
    _RESULTS["cold_cache"] = {
        "workload": f"select_tips(count={COUNT}) x 5, cache cleared per "
        "selection (every candidate evaluated)",
        "sequential_ms": sequential_s / 5 * 1e3,
        "engine_ms": engine_s / 5 * 1e3,
        "speedup": sequential_s / engine_s,
        "note": "no floor: model evaluation dominates both walkers here",
    }


# ------------------------------------------------------------- end-to-end
def test_end_to_end_round_throughput():
    """Full simulator rounds, walk-heavy profile: with the engine on,
    round throughput must not lose to the PR 3 sequential baseline and
    the walk-plane time (the engine's deliverable) must improve."""
    from repro.data import make_fmnist_clustered

    dataset = make_fmnist_clustered(
        num_clients=10, samples_per_client=24, image_size=10, seed=3
    )
    builder = lambda rng: zoo.build_mlp(
        rng, in_features=100, hidden=(16,), num_classes=10
    )
    train_config = TrainingConfig(
        local_epochs=1, local_batches=1, batch_size=8, learning_rate=0.1
    )

    def run(engine, rounds, num_tips):
        best, walk_time, history = float("inf"), None, None
        for _ in range(3):
            simulation = TangleLearning(
                dataset,
                builder,
                train_config,
                DagConfig(alpha=10.0, num_tips=num_tips, walk_engine=engine),
                clients_per_round=10,
                seed=0,
            )
            start = time.perf_counter()
            simulation.run(rounds)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
                walk_time = sum(
                    sum(r.walk_duration.values()) for r in simulation.history
                )
                history = simulation.history
            simulation.close()
        return best, walk_time, history

    # (key, num_tips, rounds, throughput floor): the paper's 2-tip
    # protocol must at least break even (measured ~1.1x); the 5-tip
    # robust-aggregation variant, where a selection carries 5 particles,
    # must win clearly.
    for key, num_tips, rounds, floor in (
        ("end_to_end_2tip", 2, 34, 1.0),
        ("end_to_end_5tip", 5, 30, 1.2),
    ):
        baseline_s, baseline_walk_s, baseline_history = run(False, rounds, num_tips)
        engine_s, engine_walk_s, engine_history = run(True, rounds, num_tips)
        throughput_speedup = baseline_s / engine_s
        walk_speedup = baseline_walk_s / engine_walk_s
        # learning dynamics must be intact under the engine (individual
        # draws differ per the rng discipline, the qualitative run not):
        # the accuracy trend of the run's second half must not collapse
        # below its first half on either walker
        def halves(history):
            mid = len(history) // 2
            first = float(np.mean([r.mean_accuracy for r in history[:mid]]))
            second = float(np.mean([r.mean_accuracy for r in history[mid:]]))
            return first, second

        for history in (engine_history, baseline_history):
            first, second = halves(history)
            assert second >= first - 0.02, (first, second)
        _RESULTS[key] = {
            "workload": f"{rounds} rounds x 10 clients, num_tips={num_tips}, "
            "fmnist-clustered mlp-100-16-10, 1 local batch (walk-heavy profile)",
            "baseline_seconds": baseline_s,
            "engine_seconds": engine_s,
            "baseline_rounds_per_sec": rounds / baseline_s,
            "engine_rounds_per_sec": rounds / engine_s,
            "round_throughput_speedup": throughput_speedup,
            "throughput_floor": floor,
            "baseline_walk_seconds": baseline_walk_s,
            "engine_walk_seconds": engine_walk_s,
            "walk_time_speedup": walk_speedup,
        }
        assert walk_speedup >= 1.0, (
            f"engine walk plane lost time end-to-end ({key}): {walk_speedup:.2f}x"
        )
        assert throughput_speedup >= floor, (
            f"engine round throughput {throughput_speedup:.2f}x under the "
            f"{floor}x floor ({key})"
        )


def test_zzz_emit_bench_walk_engine_json():
    """Write the trajectory file CI uploads (runs after the measurements;
    the zzz prefix keeps pytest's in-file ordering explicit)."""
    assert "lockstep_selection" in _RESULTS
    assert "end_to_end_2tip" in _RESULTS
    out = Path(
        os.environ.get(
            "BENCH_WALK_ENGINE_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_walk_engine.json",
        )
    )
    out.write_text(json.dumps(_RESULTS, indent=2) + "\n")
    assert out.exists()
