"""Helpers shared between benchmark modules."""

from repro.experiments.fig12_13_14 import SCENARIOS


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def scenario_subset(*labels: str):
    """Select poisoning scenarios by label (see fig12_13_14.SCENARIOS)."""
    chosen = [s for s in SCENARIOS if s[0] in labels]
    missing = set(labels) - {s[0] for s in chosen}
    if missing:
        raise KeyError(f"unknown scenario labels: {sorted(missing)}")
    return tuple(chosen)
