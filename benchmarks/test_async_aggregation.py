"""Benches: asynchronous convergence and aggregation robustness."""

from benchmarks_shared import run_once

from repro.experiments import extensions


def test_async_convergence(benchmark, scale):
    result = run_once(benchmark, extensions.run_async_convergence, scale, seed=0)
    sync, asynchronous = result["sync"], result["async"]
    # The protocol works without rounds: comparable cycle budget yields
    # learning progress and specialization in continuous time too.
    assert asynchronous["cycles"] > 0
    assert asynchronous["final_accuracy"] > 0.4
    assert asynchronous["pureness"] > 1 / 3  # above 3-cluster random base
    # Discrete rounds are an idealization (no staleness), so sync may be
    # somewhat ahead — but not categorically.
    assert asynchronous["final_accuracy"] > sync["final_accuracy"] - 0.3


def test_aggregation_robustness(benchmark, scale):
    result = run_once(
        benchmark, extensions.run_aggregation_robustness, scale, seed=0
    )
    variants = result["variants"]
    # Attackers cost accuracy relative to clean...
    assert variants["clean-mean"]["final_accuracy"] >= (
        variants["mean"]["final_accuracy"] - 0.05
    )
    # ...and the documented negative result: the coordinate median does
    # not meaningfully beat the mean (the walk, not the merge, defends).
    assert abs(
        variants["median"]["final_accuracy"] - variants["mean"]["final_accuracy"]
    ) < 0.25
