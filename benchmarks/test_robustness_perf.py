"""Robustness benchmarks: the fault plane's cost and its payoff.

Two claims are recorded to ``BENCH_robustness.json`` for CI:

- **Overhead floor** (enforced): the fault plane must be (near) free
  when it injects nothing.  ``always_on`` forces the per-link delivery
  machinery active with every rate at zero — the plane's worst-case
  bookkeeping on a bit-identical trace — and the clean run must not be
  more than ~5% faster than it (floor 0.95 on the wall-clock ratio,
  with headroom for CI noise).  A ``FaultModel()`` at its defaults
  skips the machinery entirely, so the deployed clean path costs
  nothing at all.
- **Composed-scenario resilience** (recorded, no floor): the accuracy
  timeline of a composed degraded regime — message drops, client
  crashes, and 10% random-weight poisoners — next to the clean
  baseline on the same seed.  The protocol's implicit defenses
  (publish gate, accuracy-biased walks, quarantine) should keep the
  faulty run training; the numbers land in the perf trajectory for the
  README table.
"""

import json
import os
import time
from pathlib import Path

from repro.data import make_fedprox_synthetic
from repro.fl import DagConfig, TrainingConfig
from repro.nn import zoo
from repro.sim import EventDrivenTangleLearning, FaultModel, SimConfig

OVERHEAD_FLOOR = 0.95

_RESULTS: dict = {}


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _build_engine(sim_config, *, num_clients=50, seed=0):
    dataset = make_fedprox_synthetic(
        num_clients=num_clients, mean_samples=10, seed=1
    )
    features = dataset.clients[0].x_train.shape[1]
    return EventDrivenTangleLearning(
        dataset,
        lambda rng: zoo.build_logistic_regression(
            rng, in_features=features, num_classes=10
        ),
        TrainingConfig(
            local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.05
        ),
        DagConfig(alpha=5.0, depth_range=(2, 5), training_plane=True),
        sim_config=sim_config,
        seed=seed,
    )


def test_fault_plane_disabled_overhead_floor():
    """Clean trace vs the same trace with the delivery machinery forced
    on (``always_on``), event-at-a-time: both runs are bit-identical in
    behavior and build the same walk snapshots, so the wall-clock ratio
    isolates the plane's pure bookkeeping (per-link arrival fan-out and
    per-observer visibility maps).  A ``FaultModel()`` at its defaults
    skips even that, taking the exact pre-plane code path."""
    horizon, repeats = 4.0, 3

    def run(faults):
        engine = _build_engine(SimConfig(faults=faults))
        engine.run_until(horizon)
        return engine

    clean_time, clean = _best_of(lambda: run(FaultModel()), repeats)
    plane_time, plane = _best_of(
        lambda: run(FaultModel(always_on=True)), repeats
    )
    assert clean.completed_cycles == plane.completed_cycles
    assert [e.tx_id for e in clean.events] == [e.tx_id for e in plane.events]
    ratio = clean_time / plane_time
    _RESULTS["fault_plane_overhead"] = {
        "workload": f"50 clients to t={horizon} ({clean.completed_cycles} "
        "cycles), event-at-a-time, clean vs always_on delivery machinery",
        "cycles": clean.completed_cycles,
        "clean_seconds": clean_time,
        "always_on_seconds": plane_time,
        "speedup": ratio,
        "floor": OVERHEAD_FLOOR,
    }
    assert ratio >= OVERHEAD_FLOOR, (
        f"fault-plane bookkeeping costs {(1 / ratio - 1) * 100:.1f}% "
        f"(clean/always_on ratio {ratio:.3f}, floor {OVERHEAD_FLOOR})"
    )


def test_batched_link_fidelity_cost_recorded():
    """Under quantum batching, per-link visibility is a real fidelity
    feature with a real cost: every observer sees a different tangle, so
    walk snapshots can no longer be shared across a batch.  Recorded
    without a floor — it measures a feature's price, not overhead of the
    disabled plane — and the traces must still match bit for bit."""
    horizon = 4.0

    def run(faults):
        engine = _build_engine(SimConfig(quantum=0.5, faults=faults))
        engine.run_until(horizon)
        return engine

    clean_time, clean = _best_of(lambda: run(FaultModel()), 2)
    link_time, link = _best_of(lambda: run(FaultModel(always_on=True)), 2)
    assert [e.tx_id for e in clean.events] == [e.tx_id for e in link.events]
    _RESULTS["batched_link_fidelity"] = {
        "workload": f"50 clients to t={horizon}, quantum 0.5: shared "
        "snapshots (clean) vs per-observer snapshots (always_on)",
        "cycles": clean.completed_cycles,
        "clean_seconds": clean_time,
        "always_on_seconds": link_time,
        "ratio": clean_time / link_time,
        "note": "no floor: the price of per-link fidelity under batching",
    }


def test_composed_scenario_accuracy_recorded():
    """Drops + crashes + 10% poisoners vs the clean baseline, same seed.
    No floor — accuracy under faults is a scientific result, not a perf
    gate — but the degraded run must keep training (a non-empty
    timeline) and the fault counters must show the scenario actually
    fired."""
    horizon = 6.0
    faulty_config = SimConfig(
        quantum=0.5,
        faults=FaultModel(
            drop_rate=0.15,
            crash_rate=0.1,
            recovery=1.0,
        ),
        attackers=frozenset(range(5)),  # 5 of 50 = 10% poisoners
    )

    def timeline(engine):
        engine.run_until(horizon)
        return [(t, a) for t, a in engine.accuracy_timeline()]

    clean = _build_engine(SimConfig(quantum=0.5), seed=3)
    faulty = _build_engine(faulty_config, seed=3)
    clean_timeline = timeline(clean)
    faulty_timeline = timeline(faulty)
    assert faulty_timeline, "the degraded run must keep training"
    assert faulty.fault_stats["dropped_links"] > 0
    assert faulty.fault_stats["crashes"] > 0
    malicious = sum(
        1 for tx in faulty.tangle.transactions() if tx.tags.get("malicious")
    )
    assert malicious > 0
    _RESULTS["composed_scenario"] = {
        "workload": f"50 clients to t={horizon}, quantum 0.5: 15% drops, "
        "10% crash rate (recovery 1.0), 10% random-weight poisoners "
        "vs clean baseline, seed 3",
        "clean_timeline": clean_timeline,
        "faulty_timeline": faulty_timeline,
        "clean_final_accuracy": clean_timeline[-1][1],
        "faulty_final_accuracy": faulty_timeline[-1][1],
        "malicious_transactions": malicious,
        "fault_stats": dict(faulty.fault_stats),
        "note": "no floor: resilience numbers, not a perf gate",
    }


def test_zzz_emit_bench_robustness_json():
    """Write the trajectory file CI uploads (runs after the measurements;
    the zzz prefix keeps pytest's in-file ordering explicit)."""
    assert "fault_plane_overhead" in _RESULTS
    out = Path(
        os.environ.get(
            "BENCH_ROBUSTNESS_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_robustness.json",
        )
    )
    out.write_text(json.dumps(_RESULTS, indent=2) + "\n")
    assert out.exists()
