"""Figure 6: accuracy vs rounds for alpha sweep (standard normalization)."""

import numpy as np
from benchmarks_shared import run_once

from repro.experiments import fig6


def late_mean(series, k=3):
    return float(np.mean(series[-k:]))


def test_fig6(benchmark, scale):
    result = run_once(benchmark, fig6.run, scale, seed=0)
    alphas = result["alphas"]
    # Shape: high alpha at least matches low alpha late in training, and
    # the most specialized run clearly beats the most random one.
    assert late_mean(alphas["10.0"]["accuracy"]) >= late_mean(
        alphas["0.1"]["accuracy"]
    ) - 0.05
    assert late_mean(alphas["100.0"]["accuracy"]) > 0.5
    # Specialization only happens for the higher alphas.
    assert alphas["100.0"]["final_pureness"] > alphas["0.1"]["final_pureness"]
