"""Figure 8: the relaxed (15-20 % foreign data) FMNIST-clustered dataset."""

import numpy as np
from benchmarks_shared import run_once

from repro.experiments import fig8


def test_fig8(benchmark, scale):
    result = run_once(benchmark, fig8.run, scale, seed=0)
    alphas = result["alphas"]
    assert result["dataset"] == "fmnist-relaxed"
    # Everyone learns on the relaxed dataset (thresholds are loose: foreign
    # samples make tiny smoke-scale client datasets genuinely harder).
    for series in alphas.values():
        assert np.mean(series["accuracy"][-3:]) > 0.3
    # Relaxation caps specialization below perfect pureness: clients hold
    # foreign data, so some cross-cluster approvals remain useful.
    assert alphas["100.0"]["final_pureness"] <= 1.0
