"""Table 2: approval pureness across the three datasets."""

from benchmarks_shared import run_once

from repro.experiments import table2


def test_table2(benchmark, scale):
    result = run_once(benchmark, table2.run, scale, seed=0)
    rows = result["rows"]
    # Shape: every dataset's (late) pureness exceeds its random base.
    for name, row in rows.items():
        observed = max(row["pureness"], row["late_pureness"])
        assert observed > row["base_pureness"], name
    # Shape: the two cleanly clustered datasets (FMNIST, Poets) approach
    # perfect pureness, while CIFAR — whose clients hold superclass
    # mixtures — stays clearly below them, exactly as in Table 2.
    assert rows["fmnist-clustered"]["pureness"] > 0.8
    assert rows["poets"]["pureness"] > 0.7
    assert rows["cifar100"]["pureness"] < rows["fmnist-clustered"]["pureness"]
    assert rows["cifar100"]["pureness"] < rows["poets"]["pureness"]
