"""Figure 7: the dynamic normalization (normalized*)."""

import numpy as np
from benchmarks_shared import run_once

from repro.experiments import fig7


def test_fig7(benchmark, scale):
    result = run_once(benchmark, fig7.run, scale, seed=0)
    alphas = result["alphas"]
    assert result["normalization"] == "dynamic"
    # All alphas still learn.
    for series in alphas.values():
        assert series["accuracy"][-1] > 0.4
    # The paper's headline: dynamic normalization gives alpha=1 real
    # specialization (pureness above the 3-cluster random base of 1/3).
    assert alphas["1.0"]["final_pureness"] > 1 / 3
