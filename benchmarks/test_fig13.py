"""Figure 13: poisoned transactions approved by the consensus."""

import numpy as np
from benchmarks_shared import run_once

from repro.experiments import fig12_13_14
from benchmarks_shared import scenario_subset


def test_fig13(benchmark, scale):
    result = run_once(
        benchmark,
        fig12_13_14.run,
        scale,
        seed=1,
        scenarios=scenario_subset("p0.0", "p0.2", "p0.3"),
    )
    scenarios = result["scenarios"]
    # Clean network never approves poison.
    assert all(c == 0 for c in scenarios["p0.0"]["approved_poisoned"])
    # Poisoned transactions ARE woven into the consensus (the paper's
    # containment story: included, but their effect stays cluster-local).
    assert np.mean(scenarios["p0.2"]["approved_poisoned"][-3:]) > 0
    assert np.mean(scenarios["p0.3"]["approved_poisoned"][-3:]) > 0
