"""Walk-evaluation benchmarks: the fused multi-model forward pass.

The accuracy-biased walk's hot path evaluates each walk step's K
candidate approvers on the selecting client's small local test set.
PR 2 made each single evaluation cheap (``load_flat`` + accuracy-only
forward); this plane fuses the K evaluations of a step into **one**
vectorized pass over a ``(K, P)`` stack sliced from the tangle's weight
arena (``Classifier.accuracy_many``).

Enforced floor, recorded to ``BENCH_walk.json`` for CI:

- **Fused walk step**: evaluating 8 MLP candidates per step must be
  >= 2x faster than the per-model ``load_flat`` + ``accuracy`` loop, in
  the walk's real regime — the test-suite simulation profile's MLP
  (10x10 inputs, 16 hidden units) on an 8-sample local test set, where
  per-model Python/layer dispatch dominates — with **bit-identical**
  float64 accuracies (the fused kernels perform the same per-model
  numpy products, so even the logits match exactly).

Also recorded (no floor): a mid-size MLP where the step cost is
dominated by moving K x P weight bytes (the fused gather pays the same
memory traffic as K ``load_flat`` copies, so the win shrinks — the
trajectory documents that honestly), the conv fallback path, which
routes the same entry point through the per-model loop (parity
documented, near-1x by construction), and the end-to-end
``Client.tx_accuracies`` step.

Timings are best-of-N so a noisy-neighbor stall on a shared CI runner
cannot flake the comparison.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.fl import Client, TrainingConfig
from repro.nn import zoo

WALK_STEP_FLOOR = 2.0
CANDIDATES = 8
STEPS = 30

_RESULTS: dict = {}


def _best_of(fn, repeats=5):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _grown_tangle(model, n=64, sigma=0.05, seed=2):
    genesis = model.get_weights()
    tangle = Tangle([w.copy() for w in genesis])
    ids = [GENESIS_ID]
    rng = np.random.default_rng(seed)
    for i in range(n):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        perturbed = [w + rng.normal(0.0, sigma, size=w.shape) for w in genesis]
        tangle.add(Transaction(f"t{i}", parents, perturbed, i % 10, i // 10))
        ids.append(f"t{i}")
    return tangle, ids


def _walk_steps(ids, steps=STEPS, k=CANDIDATES, seed=3):
    """The candidate ids of each simulated walk step (fixed across
    paths so both evaluate exactly the same models)."""
    rng = np.random.default_rng(seed)
    return [
        [ids[int(rng.integers(0, len(ids)))] for _ in range(k)]
        for _ in range(steps)
    ]


# ------------------------------------------------------------- fused walk
def _measure_walk(model, *, in_features, batch):
    """Timed per-model-loop vs fused evaluation of the same walk steps;
    returns (loop_time, fused_time) after asserting bit-identity."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(batch, in_features))  # small local test set
    y = rng.integers(0, 10, size=batch)
    tangle, ids = _grown_tangle(model)
    steps = _walk_steps(ids)
    arena = tangle.arena

    def per_model_loop():
        accuracies = []
        for candidates in steps:
            for tx_id in candidates:
                model.load_flat(tangle.flat_weights(tx_id))
                accuracies.append(model.accuracy(x, y))
        return np.array(accuracies)

    def fused():
        accuracies = []
        for candidates in steps:
            rows = arena.rows(
                [tangle.get(tx_id).arena_location()[1] for tx_id in candidates]
            )
            accuracies.append(model.accuracy_many(rows, x, y))
        return np.concatenate(accuracies)

    loop_time, loop_accs = _best_of(per_model_loop)
    fused_time, fused_accs = _best_of(fused)
    # Equivalence oracle: bit-identical float64 accuracies.
    np.testing.assert_array_equal(loop_accs, fused_accs)
    assert loop_accs.dtype == fused_accs.dtype == np.float64
    return loop_time, fused_time


def test_fused_walk_step_speedup_and_equivalence():
    """8-candidate walk steps over the simulation-profile MLP
    (10x10 inputs, 16 hidden units — the regime every test-suite walk
    runs in), per-model loop vs one fused pass over arena rows."""
    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=100, hidden=(16,), num_classes=10
    )
    assert model.supports_fused_eval
    loop_time, fused_time = _measure_walk(model, in_features=100, batch=8)
    speedup = loop_time / fused_time
    _RESULTS["fused_walk_step"] = {
        "workload": f"{STEPS} steps x {CANDIDATES} candidates, "
        f"mlp-100-16-10 ({model.flat_spec.total} params), "
        "8-sample local test set",
        "steps": STEPS,
        "candidates": CANDIDATES,
        "parameters": model.flat_spec.total,
        "per_model_ms": loop_time * 1e3,
        "fused_ms": fused_time * 1e3,
        "speedup": speedup,
        "floor": WALK_STEP_FLOOR,
        "bit_identical_float64": True,
    }
    assert speedup >= WALK_STEP_FLOOR, (
        f"fused walk-step evaluation only {speedup:.2f}x over the "
        f"per-model loop (floor {WALK_STEP_FLOOR}x)"
    )


def test_midsize_mlp_walk_step_recorded():
    """Mid-size MLP (14x14 inputs, 64 hidden): here K x P weight-byte
    traffic dominates the step and the fused gather pays the same bytes
    the per-model loads paid, so the speedup shrinks toward the memory
    bound.  Recorded without a floor — the trajectory should show where
    the fusion wins and where the hardware does."""
    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=196, hidden=(64,), num_classes=10
    )
    loop_time, fused_time = _measure_walk(model, in_features=196, batch=8)
    _RESULTS["midsize_walk_step"] = {
        "workload": f"{STEPS} steps x {CANDIDATES} candidates, "
        f"mlp-196-64-10 ({model.flat_spec.total} params), "
        "8-sample local test set",
        "per_model_ms": loop_time * 1e3,
        "fused_ms": fused_time * 1e3,
        "speedup": loop_time / fused_time,
        "bit_identical_float64": True,
        "note": "no floor: weight-byte traffic bounds both paths at this size",
    }


# -------------------------------------------------------- conv fallback
def test_conv_fallback_parity_recorded():
    """Conv models have no fused kernels: ``accuracy_many`` falls back
    to the per-model loop.  Parity (not speed) is the claim — recorded
    so the trajectory file documents the fused/fallback split."""
    model = zoo.build_fmnist_cnn(
        np.random.default_rng(0), image_size=10, size="small"
    )
    assert not model.supports_fused_eval
    rng = np.random.default_rng(1)
    x = rng.normal(size=(8, 1, 10, 10))
    y = rng.integers(0, 10, size=8)
    tangle, ids = _grown_tangle(model, n=12)
    steps = _walk_steps(ids, steps=4)

    def per_model_loop():
        accuracies = []
        for candidates in steps:
            for tx_id in candidates:
                model.load_flat(tangle.flat_weights(tx_id))
                accuracies.append(model.accuracy(x, y))
        return np.array(accuracies)

    def via_accuracy_many():
        accuracies = []
        for candidates in steps:
            rows = np.stack([tangle.flat_weights(t) for t in candidates])
            accuracies.append(model.accuracy_many(rows, x, y))
        return np.concatenate(accuracies)

    loop_time, loop_accs = _best_of(per_model_loop, repeats=3)
    many_time, many_accs = _best_of(via_accuracy_many, repeats=3)
    np.testing.assert_array_equal(loop_accs, many_accs)
    _RESULTS["conv_fallback"] = {
        "workload": "4 steps x 8 candidates, fmnist-cnn-small (conv: per-model fallback)",
        "per_model_ms": loop_time * 1e3,
        "accuracy_many_ms": many_time * 1e3,
        "ratio": loop_time / many_time,
        "bit_identical_float64": True,
        "note": "no floor: conv layers have no fused kernel, parity is the claim",
    }


# ----------------------------------------------------------- client level
def test_client_walk_step_end_to_end_recorded():
    """The walk's real entry point (``Client.tx_accuracies`` with cache
    cleared per step, i.e. every step all-misses) — recorded to show the
    fused plane's end-to-end effect including cache and stacking
    overhead (no floor; the kernel-level floor above is the gate)."""

    class _Data:
        client_id = 0
        metadata: dict = {}

        def __init__(self, rng):
            self.x_train = rng.normal(size=(16, 100))
            self.y_train = rng.integers(0, 10, size=16)
            self.x_test = rng.normal(size=(8, 100))
            self.y_test = rng.integers(0, 10, size=8)

    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=100, hidden=(16,), num_classes=10
    )
    client = Client(_Data(np.random.default_rng(4)), model, TrainingConfig(), rng=1)
    tangle, ids = _grown_tangle(model)
    steps = _walk_steps(ids, steps=10)

    def fused_steps():
        accuracies = []
        for candidates in steps:
            client.reset_cache()
            accuracies.append(client.tx_accuracies(tangle, candidates))
        return np.concatenate(accuracies)

    def sequential_steps():
        accuracies = []
        for candidates in steps:
            client.reset_cache()
            accuracies.append(
                np.array([client.tx_accuracy(tangle, t) for t in candidates])
            )
        return np.concatenate(accuracies)

    sequential_time, sequential_accs = _best_of(sequential_steps)
    fused_time, fused_accs = _best_of(fused_steps)
    np.testing.assert_array_equal(sequential_accs, fused_accs)
    _RESULTS["client_walk_step"] = {
        "workload": "10 all-miss steps x 8 candidates via Client.tx_accuracies",
        "sequential_ms": sequential_time * 1e3,
        "fused_ms": fused_time * 1e3,
        "speedup": sequential_time / fused_time,
        "bit_identical_float64": True,
    }


def test_zzz_emit_bench_walk_json():
    """Write the trajectory file CI uploads (runs after the measurements;
    the zzz prefix keeps pytest's in-file ordering explicit)."""
    assert "fused_walk_step" in _RESULTS
    out = Path(
        os.environ.get(
            "BENCH_WALK_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_walk.json",
        )
    )
    out.write_text(json.dumps(_RESULTS, indent=2) + "\n")
    assert out.exists()
