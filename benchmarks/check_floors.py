#!/usr/bin/env python
"""Benchmark-floor regression guard.

Parses every ``BENCH_*.json`` trajectory file the benchmark suite emits
and fails (exit 1) if any recorded speedup dropped below the floor
recorded next to it.  The benchmarks assert their own floors when they
run, but this guard is the belt to those braces: it re-checks the
*written* numbers as the last CI step, so a benchmark that silently
stopped asserting (or a file produced by a stale run) cannot slip a
regression through.

Recognized floor conventions (matching the emitters):

- ``{"speedup": s, "floor": f}`` in one object
  (``BENCH_walk.json``, ``BENCH_walk_engine.json``, ``BENCH_training.json``,
  ``BENCH_weights.json`` round_loop, ``BENCH_substrate.json`` large
  workload — the shared-memory substrate's parallel-beats-serial floor,
  emitted only on multi-core runners where the win is physically
  possible);
- ``{"floor_<name>": f, "<name>": {"speedup": s}}`` — a floor naming a
  sibling sub-object (``BENCH_weights.json`` aggregation);
- ``{"<stem>_floor": f, "...<stem>_speedup": s}`` — a suffixed floor
  naming a sibling metric (``BENCH_walk_engine.json`` end-to-end
  throughput).

A floor with no matching speedup is itself a failure: it means the file
format drifted and the guard would otherwise silently check nothing.

Usage::

    python benchmarks/check_floors.py [BENCH_a.json BENCH_b.json ...]

With no arguments, checks every ``BENCH_*.json`` in the repository root.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

NUMBER = (int, float)


def iter_checks(node, path):
    """Yield ``(label, speedup_or_None, floor)`` for every floor found."""
    if isinstance(node, dict):
        for key, value in node.items():
            if isinstance(value, (dict, list)):
                yield from iter_checks(value, f"{path}.{key}")
        for key, floor in node.items():
            if not isinstance(floor, NUMBER) or isinstance(floor, bool):
                continue
            if key == "floor":
                speedup = node.get("speedup")
                yield f"{path}.speedup", speedup, floor
            elif key.startswith("floor_"):
                sub = node.get(key[len("floor_") :])
                speedup = sub.get("speedup") if isinstance(sub, dict) else None
                yield f"{path}.{key[len('floor_'):]}.speedup", speedup, floor
            elif key.endswith("_floor"):
                stem = key[: -len("_floor")]
                matches = [
                    k
                    for k in node
                    if k != key and stem in k and k.endswith("speedup")
                ]
                speedup = node[matches[0]] if len(matches) == 1 else None
                yield f"{path}.{stem}_speedup", speedup, floor
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from iter_checks(value, f"{path}[{index}]")


def check_file(path: Path) -> tuple[int, list[str]]:
    """Return (floors_checked, failure_messages) for one trajectory file."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return 0, [f"{path.name}: unreadable trajectory file: {error}"]
    checked = 0
    failures = []
    for label, speedup, floor in iter_checks(data, path.name):
        checked += 1
        if not isinstance(speedup, NUMBER) or isinstance(speedup, bool):
            failures.append(
                f"{label}: floor {floor} has no matching recorded speedup "
                "(emitter format drift?)"
            )
        elif speedup < floor:
            failures.append(f"{label}: {speedup:.3f}x is below its floor {floor}x")
        else:
            print(f"  ok  {label}: {speedup:.3f}x >= {floor}x")
    return checked, failures


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = [Path(arg) for arg in argv] or sorted(root.glob("BENCH_*.json"))
    if not paths:
        print("check_floors: no BENCH_*.json files found", file=sys.stderr)
        return 1
    total_checked = 0
    all_failures: list[str] = []
    for path in paths:
        print(f"{path.name}:")
        checked, failures = check_file(path)
        if not checked and not failures:
            print("  (no floors recorded)")
        total_checked += checked
        all_failures.extend(failures)
    if all_failures:
        print(f"\n{len(all_failures)} floor violation(s):", file=sys.stderr)
        for failure in all_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"\nall {total_checked} recorded floors hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
