"""Micro-benchmarks for the hot substrate operations.

These are classic pytest-benchmark micro-benches (many iterations) for
the three operations that dominate simulation time: CNN forward
evaluation (the random walk's inner loop), one SGD training batch, and a
full biased random walk over a grown tangle — plus direct-timing
comparisons for the execution substrate: the incremental cumulative-
weight index against the legacy future-cone BFS, and serial against
parallel round throughput (written to ``BENCH_substrate.json`` so CI can
track the perf trajectory).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dag.random_walk import random_walk, sample_walk_start
from repro.dag.tangle import Tangle
from repro.dag.tip_selection import AccuracyTipSelector
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.nn import SGD, zoo


@pytest.fixture(scope="module")
def cnn():
    return zoo.build_fmnist_cnn(np.random.default_rng(0), image_size=14, size="small")


def test_cnn_forward_evaluation(benchmark, cnn):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(40, 1, 14, 14))
    y = rng.integers(0, 10, size=40)
    loss, acc = benchmark(cnn.evaluate, x, y)
    assert loss > 0


def test_cnn_training_batch(benchmark, cnn):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(10, 1, 14, 14))
    y = rng.integers(0, 10, size=10)
    optimizer = SGD(0.05)
    loss = benchmark(cnn.train_batch, x, y, optimizer)
    assert loss > 0


def test_lstm_forward_evaluation(benchmark):
    model = zoo.build_poets_lstm(np.random.default_rng(0), vocab_size=30, size="small")
    rng = np.random.default_rng(3)
    x = rng.integers(0, 30, size=(40, 12))
    y = rng.integers(0, 30, size=40)
    loss, acc = benchmark(model.evaluate, x, y)
    assert loss > 0


def test_biased_random_walk(benchmark):
    """A full accuracy-biased walk over a 200-transaction tangle with a
    cached (dict-lookup) accuracy function — isolates walk overhead."""
    rng = np.random.default_rng(4)
    tangle = Tangle([np.zeros(1)])
    ids = [GENESIS_ID]
    for i in range(200):
        parents = tuple(
            dict.fromkeys(
                ids[int(rng.integers(0, len(ids)))] for _ in range(2)
            )
        )
        tx = Transaction(f"t{i}", parents, [np.zeros(1)], i % 10, i // 10)
        tangle.add(tx)
        ids.append(tx.tx_id)
    accuracies = {tx_id: float(rng.random()) for tx_id in ids}
    selector = AccuracyTipSelector(accuracies.__getitem__, alpha=10.0)

    def walk():
        return selector.select_tips(tangle, 2, rng)

    tips = benchmark(walk)
    assert len(tips) == 2
    assert all(tangle.is_tip(t) for t in tips)


# --------------------------------------------------------------- substrate


def grow_random_tangle(size: int, seed: int = 4) -> Tangle:
    rng = np.random.default_rng(seed)
    tangle = Tangle([np.zeros(1)])
    ids = [GENESIS_ID]
    for i in range(size):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        tx = Transaction(f"t{i}", parents, [np.zeros(1)], i % 10, i // 10)
        tangle.add(tx)
        ids.append(tx.tx_id)
    return tangle


def weighted_walk_workload(tangle, weight_fn, *, walks: int, alpha: float = 0.5):
    """Run cumulative-weight-biased walks using ``weight_fn`` for weights."""

    def transition(_node, approvers, step_rng):
        weights = np.array([weight_fn(a) for a in approvers], dtype=np.float64)
        probs = np.exp(alpha * (weights - weights.max()))
        probs /= probs.sum()
        return approvers[int(step_rng.choice(len(approvers), p=probs))]

    rng = np.random.default_rng(7)
    tips = []
    for _ in range(walks):
        start = sample_walk_start(tangle, rng, depth_range=(15, 25))
        tips.append(random_walk(tangle, start, transition, rng))
    return tips


def test_weight_index_speedup_on_walk_workload():
    """The incremental index must beat the per-query future-cone BFS by
    >= 2x on a 500-transaction weighted-walk workload (it is typically
    nearer 8x at this size, growing with the tangle).  Best-of-3 timing
    per variant so a noisy-neighbor stall on a shared CI runner cannot
    flake the comparison."""
    tangle = grow_random_tangle(500)

    def best_of(weight_fn, repeats: int = 3):
        best_time, tips = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            tips = weighted_walk_workload(tangle, weight_fn, walks=30)
            best_time = min(best_time, time.perf_counter() - start)
        return best_time, tips

    # identical walk sequences: weight values agree, rng streams agree
    indexed_time, tips_indexed = best_of(tangle.cumulative_weight)
    recount_time, tips_recount = best_of(tangle.recount_cumulative_weight)

    assert tips_indexed == tips_recount  # same weights -> same walks
    assert all(tangle.is_tip(t) for t in tips_indexed)
    speedup = recount_time / indexed_time
    assert speedup >= 2.0, (
        f"weight index only {speedup:.1f}x faster than BFS recount "
        f"({indexed_time:.4f}s vs {recount_time:.4f}s)"
    )


def test_round_throughput_serial_vs_parallel_emits_json():
    """Measure rounds/sec under both executors and write the trajectory
    file CI tracks (``BENCH_substrate.json``).  No speedup assertion: at
    benchmark scale the per-round payload pickling can dominate; the
    point is the recorded trend as models and tangles grow."""
    from repro.data import make_fmnist_clustered
    from repro.fl import DagConfig, TangleLearning, TrainingConfig
    from repro.nn import zoo

    dataset = make_fmnist_clustered(
        num_clients=8, samples_per_client=30, image_size=10, seed=3
    )
    builder = lambda rng: zoo.build_mlp(
        rng, in_features=100, hidden=(16,), num_classes=10
    )
    train_config = TrainingConfig(
        local_epochs=1, local_batches=3, batch_size=10, learning_rate=0.1
    )
    rounds = 6

    def run(parallelism: int) -> tuple[float, list]:
        sim = TangleLearning(
            dataset,
            builder,
            train_config,
            DagConfig(alpha=10.0, depth_range=(2, 5), parallelism=parallelism),
            clients_per_round=6,
            seed=0,
        )
        try:
            start = time.perf_counter()
            sim.run(rounds)
            elapsed = time.perf_counter() - start
        finally:
            sim.close()
        return elapsed, sim.history

    serial_time, serial_history = run(1)
    parallel_time, parallel_history = run(2)

    # equivalence holds at benchmark scale too
    for a, b in zip(serial_history, parallel_history):
        assert a.client_accuracy == b.client_accuracy
        assert a.published == b.published

    payload = {
        "workload": "fmnist-clustered mlp, 8 clients, 6/round, 6 rounds",
        "rounds": rounds,
        "serial_seconds": serial_time,
        "parallel_seconds": parallel_time,
        "serial_rounds_per_sec": rounds / serial_time,
        "parallel_rounds_per_sec": rounds / parallel_time,
        "parallel_speedup": serial_time / parallel_time,
        "parallel_workers": 2,
    }
    out = Path(
        os.environ.get(
            "BENCH_SUBSTRATE_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_substrate.json",
        )
    )
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert out.exists()
