"""Micro-benchmarks for the hot substrate operations.

These are classic pytest-benchmark micro-benches (many iterations) for
the three operations that dominate simulation time: CNN forward
evaluation (the random walk's inner loop), one SGD training batch, and a
full biased random walk over a grown tangle — plus direct-timing
comparisons for the execution substrate: the incremental cumulative-
weight index against the legacy future-cone BFS, and serial against
parallel round throughput (written to ``BENCH_substrate.json`` so CI can
track the perf trajectory).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dag.random_walk import random_walk, sample_walk_start
from repro.dag.tangle import Tangle
from repro.dag.tip_selection import AccuracyTipSelector
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.nn import SGD, zoo


@pytest.fixture(scope="module")
def cnn():
    return zoo.build_fmnist_cnn(np.random.default_rng(0), image_size=14, size="small")


def test_cnn_forward_evaluation(benchmark, cnn):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(40, 1, 14, 14))
    y = rng.integers(0, 10, size=40)
    loss, acc = benchmark(cnn.evaluate, x, y)
    assert loss > 0


def test_cnn_training_batch(benchmark, cnn):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(10, 1, 14, 14))
    y = rng.integers(0, 10, size=10)
    optimizer = SGD(0.05)
    loss = benchmark(cnn.train_batch, x, y, optimizer)
    assert loss > 0


def test_lstm_forward_evaluation(benchmark):
    model = zoo.build_poets_lstm(np.random.default_rng(0), vocab_size=30, size="small")
    rng = np.random.default_rng(3)
    x = rng.integers(0, 30, size=(40, 12))
    y = rng.integers(0, 30, size=40)
    loss, acc = benchmark(model.evaluate, x, y)
    assert loss > 0


def test_biased_random_walk(benchmark):
    """A full accuracy-biased walk over a 200-transaction tangle with a
    cached (dict-lookup) accuracy function — isolates walk overhead."""
    rng = np.random.default_rng(4)
    tangle = Tangle([np.zeros(1)])
    ids = [GENESIS_ID]
    for i in range(200):
        parents = tuple(
            dict.fromkeys(
                ids[int(rng.integers(0, len(ids)))] for _ in range(2)
            )
        )
        tx = Transaction(f"t{i}", parents, [np.zeros(1)], i % 10, i // 10)
        tangle.add(tx)
        ids.append(tx.tx_id)
    accuracies = {tx_id: float(rng.random()) for tx_id in ids}
    selector = AccuracyTipSelector(accuracies.__getitem__, alpha=10.0)

    def walk():
        return selector.select_tips(tangle, 2, rng)

    tips = benchmark(walk)
    assert len(tips) == 2
    assert all(tangle.is_tip(t) for t in tips)


# --------------------------------------------------------------- substrate


def grow_random_tangle(size: int, seed: int = 4) -> Tangle:
    rng = np.random.default_rng(seed)
    tangle = Tangle([np.zeros(1)])
    ids = [GENESIS_ID]
    for i in range(size):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        tx = Transaction(f"t{i}", parents, [np.zeros(1)], i % 10, i // 10)
        tangle.add(tx)
        ids.append(tx.tx_id)
    return tangle


def weighted_walk_workload(tangle, weight_fn, *, walks: int, alpha: float = 0.5):
    """Run cumulative-weight-biased walks using ``weight_fn`` for weights."""

    def transition(_node, approvers, step_rng):
        weights = np.array([weight_fn(a) for a in approvers], dtype=np.float64)
        probs = np.exp(alpha * (weights - weights.max()))
        probs /= probs.sum()
        return approvers[int(step_rng.choice(len(approvers), p=probs))]

    rng = np.random.default_rng(7)
    tips = []
    for _ in range(walks):
        start = sample_walk_start(tangle, rng, depth_range=(15, 25))
        tips.append(random_walk(tangle, start, transition, rng))
    return tips


def test_weight_index_speedup_on_walk_workload():
    """The incremental index must beat the per-query future-cone BFS by
    >= 2x on a 500-transaction weighted-walk workload (it is typically
    nearer 8x at this size, growing with the tangle).  Best-of-3 timing
    per variant so a noisy-neighbor stall on a shared CI runner cannot
    flake the comparison."""
    tangle = grow_random_tangle(500)

    def best_of(weight_fn, repeats: int = 3):
        best_time, tips = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            tips = weighted_walk_workload(tangle, weight_fn, walks=30)
            best_time = min(best_time, time.perf_counter() - start)
        return best_time, tips

    # identical walk sequences: weight values agree, rng streams agree
    indexed_time, tips_indexed = best_of(tangle.cumulative_weight)
    recount_time, tips_recount = best_of(tangle.recount_cumulative_weight)

    assert tips_indexed == tips_recount  # same weights -> same walks
    assert all(tangle.is_tip(t) for t in tips_indexed)
    speedup = recount_time / indexed_time
    assert speedup >= 2.0, (
        f"weight index only {speedup:.1f}x faster than BFS recount "
        f"({indexed_time:.4f}s vs {recount_time:.4f}s)"
    )


def _available_cores() -> int:
    from repro.substrate import available_cores

    return available_cores()


def _run_workload(dataset, builder, train_config, *, rounds, clients_per_round, parallelism):
    from repro.fl import DagConfig, TangleLearning

    sim = TangleLearning(
        dataset,
        builder,
        train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5), parallelism=parallelism),
        clients_per_round=clients_per_round,
        seed=0,
    )
    try:
        start = time.perf_counter()
        sim.run(rounds)
        elapsed = time.perf_counter() - start
        estimate = getattr(sim.executor, "last_estimate", None)
        executor_info = {
            "workers": sim.executor.parallelism,
            "mode_counts": dict(getattr(sim.executor, "mode_counts", {})) or None,
            # the router's last (bytes-shipped, dense-working-set) pair:
            # with shared-memory export the first number is handles+scalars
            "last_estimate": list(estimate) if estimate else None,
        }
    finally:
        sim.close()
    return elapsed, sim.history, executor_info


def test_round_throughput_serial_vs_parallel_emits_json():
    """Measure rounds/sec under both executors on two workloads and write
    the trajectory file CI tracks (``BENCH_substrate.json``).

    The **small** workload (tiny model, microsecond training steps) is
    the documented crossover counter-example: per-round coordination —
    even with the flat-weight plane shipping the tangle as one arena
    slab — outweighs the parallelized compute, and parallel loses.  It
    is recorded, never asserted on.

    The **large** workload trains a bigger model for more batches per
    client, so per-unit compute dominates coordination and parallel
    execution must win (speedup >= 1.0) — asserted only when the runner
    actually has >= 2 cores; on a single-core box time-slicing makes a
    parallel win physically impossible and only the recorded numbers
    matter.
    """
    from repro.data import make_fmnist_clustered
    from repro.fl import TrainingConfig
    from repro.nn import zoo

    cores = _available_cores()
    payload: dict = {"parallel_workers": 2, "available_cores": cores, "workloads": {}}

    workloads = {
        "small": {
            "dataset": dict(num_clients=8, samples_per_client=30, image_size=10, seed=3),
            "model": dict(in_features=100, hidden=(16,), num_classes=10),
            "train": dict(local_epochs=1, local_batches=3, batch_size=10, learning_rate=0.1),
            "rounds": 6,
            "assert_speedup": False,
            "describe": "fmnist-clustered mlp-100-16-10, 8 clients x 30 samples, "
            "6/round, 3 batches of 10, 6 rounds",
            "note": "crossover counter-example: coordination dominates, "
            "parallel expected to lose at this scale",
        },
        "large": {
            "dataset": dict(num_clients=8, samples_per_client=120, image_size=14, seed=3),
            "model": dict(in_features=196, hidden=(128,), num_classes=10),
            "train": dict(local_epochs=1, local_batches=200, batch_size=32, learning_rate=0.1),
            "rounds": 6,
            "assert_speedup": True,
            "describe": "fmnist-clustered mlp-196-128-10, 8 clients x 120 samples, "
            "6/round, 200 batches of 32, 6 rounds",
        },
    }

    large_speedup = None
    for name, wl in workloads.items():
        dataset = make_fmnist_clustered(**wl["dataset"])
        builder = lambda rng, _m=wl["model"]: zoo.build_mlp(rng, **_m)
        train_config = TrainingConfig(**wl["train"])
        rounds = wl["rounds"]
        times = {}
        histories = {}
        infos = {}
        for parallelism in (1, 2, "auto"):
            times[parallelism], histories[parallelism], infos[parallelism] = (
                _run_workload(
                    dataset, builder, train_config,
                    rounds=rounds, clients_per_round=6, parallelism=parallelism,
                )
            )
        # equivalence at bench scale, across all three routings
        for other in (2, "auto"):
            for a, b in zip(histories[1], histories[other]):
                assert a.client_accuracy == b.client_accuracy
                assert a.published == b.published
        speedup = times[1] / times[2]
        auto_modes = infos["auto"]["mode_counts"]
        entry = {
            "workload": wl["describe"],
            "rounds": rounds,
            "serial_seconds": times[1],
            "parallel_seconds": times[2],
            "serial_rounds_per_sec": rounds / times[1],
            "parallel_rounds_per_sec": rounds / times[2],
            "parallel_speedup": speedup,
            # parallelism="auto": which mode it actually routed each round
            # to, and whether that choice beat the forced-parallel run.
            "auto_seconds": times["auto"],
            "auto_mode_counts": auto_modes,
            "auto_workers": infos["auto"]["workers"],
            "auto_picked": (
                "serial" if auto_modes.get("parallel", 0) == 0 else "parallel"
            ),
            "auto_speedup_vs_serial": times[1] / times["auto"],
            "auto_ipc_estimate": infos["auto"]["last_estimate"],
        }
        if wl["assert_speedup"]:
            entry["speedup_asserted"] = cores >= 2
            large_speedup = speedup
            if cores >= 2:
                # Floor-guarded pair for benchmarks/check_floors.py: with
                # the shared-memory substrate (handle-sized payloads, a
                # persistent attached pool) 2 workers must clear 1.5x on
                # the training-dominated workload.
                entry["speedup"] = speedup
                entry["floor"] = 1.5
                # the payload-size router must actually pick the pool on
                # a workload this large — pin the parallel path in CI
                assert auto_modes.get("parallel", 0) > 0, (
                    f"auto never routed parallel on the large workload "
                    f"with {cores} cores: {auto_modes}"
                )
        else:
            entry["note"] = wl["note"]
        payload["workloads"][name] = entry
        # The regression this knob fixes: on a single-core machine (or a
        # round plan too small to amortize coordination) auto must not
        # route to the process pool and must therefore not reproduce the
        # recorded parallel slowdown (0.80x large / 0.35x small).
        if cores < 2:
            assert auto_modes.get("parallel", 0) == 0
            assert times["auto"] <= times[2] * 1.10, (
                f"auto ({times['auto']:.3f}s) should avoid the parallel "
                f"penalty ({times[2]:.3f}s) on a single-core machine"
            )

    out = Path(
        os.environ.get(
            "BENCH_SUBSTRATE_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_substrate.json",
        )
    )
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert out.exists()

    if cores >= 2:
        assert large_speedup >= 1.0, (
            f"parallel lost on the training-dominated workload: "
            f"{large_speedup:.2f}x with {cores} cores available"
        )
