"""Micro-benchmarks for the hot substrate operations.

These are classic pytest-benchmark micro-benches (many iterations) for
the three operations that dominate simulation time: CNN forward
evaluation (the random walk's inner loop), one SGD training batch, and a
full biased random walk over a grown tangle.
"""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import AccuracyTipSelector
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.nn import SGD, zoo


@pytest.fixture(scope="module")
def cnn():
    return zoo.build_fmnist_cnn(np.random.default_rng(0), image_size=14, size="small")


def test_cnn_forward_evaluation(benchmark, cnn):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(40, 1, 14, 14))
    y = rng.integers(0, 10, size=40)
    loss, acc = benchmark(cnn.evaluate, x, y)
    assert loss > 0


def test_cnn_training_batch(benchmark, cnn):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(10, 1, 14, 14))
    y = rng.integers(0, 10, size=10)
    optimizer = SGD(0.05)
    loss = benchmark(cnn.train_batch, x, y, optimizer)
    assert loss > 0


def test_lstm_forward_evaluation(benchmark):
    model = zoo.build_poets_lstm(np.random.default_rng(0), vocab_size=30, size="small")
    rng = np.random.default_rng(3)
    x = rng.integers(0, 30, size=(40, 12))
    y = rng.integers(0, 30, size=40)
    loss, acc = benchmark(model.evaluate, x, y)
    assert loss > 0


def test_biased_random_walk(benchmark):
    """A full accuracy-biased walk over a 200-transaction tangle with a
    cached (dict-lookup) accuracy function — isolates walk overhead."""
    rng = np.random.default_rng(4)
    tangle = Tangle([np.zeros(1)])
    ids = [GENESIS_ID]
    for i in range(200):
        parents = tuple(
            dict.fromkeys(
                ids[int(rng.integers(0, len(ids)))] for _ in range(2)
            )
        )
        tx = Transaction(f"t{i}", parents, [np.zeros(1)], i % 10, i // 10)
        tangle.add(tx)
        ids.append(tx.tx_id)
    accuracies = {tx_id: float(rng.random()) for tx_id in ids}
    selector = AccuracyTipSelector(accuracies.__getitem__, alpha=10.0)

    def walk():
        return selector.select_tips(tangle, 2, rng)

    tips = benchmark(walk)
    assert len(tips) == 2
    assert all(tangle.is_tip(t) for t in tips)
