"""Figure 9: FedAvg vs Specializing DAG per-client accuracy distributions."""

from benchmarks_shared import run_once

from repro.experiments import fig9


def test_fig9(benchmark, scale):
    result = run_once(benchmark, fig9.run, scale, seed=0)
    datasets = result["datasets"]
    assert set(datasets) == {"fmnist-clustered", "poets", "cifar100"}
    for name, data in datasets.items():
        assert data["fedavg"], name
        assert data["dag"], name
    # Headline claim: on the fully clustered dataset the DAG's local models
    # beat FedAvg's single global model late in training.
    fm = datasets["fmnist-clustered"]
    assert fm["dag"][-1]["mean"] > fm["fedavg"][-1]["mean"]
