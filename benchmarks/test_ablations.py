"""Ablation benches for the design choices called out in DESIGN.md."""

from benchmarks_shared import run_once

from repro.experiments import ablations


def test_ablation_tip_selection(benchmark, scale):
    result = run_once(benchmark, ablations.run_tip_selection, scale, seed=0)
    variants = result["variants"]
    # The accuracy walk is what creates specialization: strictly purer
    # approvals than uniform-random tip selection.
    assert variants["accuracy"]["pureness"] > variants["random"]["pureness"]
    # All selectors still learn the (easy) task.
    for name, variant in variants.items():
        assert variant["final_accuracy"] > 0.4, name


def test_ablation_publish_gate(benchmark, scale):
    result = run_once(benchmark, ablations.run_publish_gate, scale, seed=0)
    variants = result["variants"]
    # The ungated variant publishes at least as many transactions.
    assert variants["ungated"]["transactions"] >= variants["gated"]["transactions"]
    assert variants["gated"]["final_accuracy"] > 0.4


def test_ablation_num_tips(benchmark, scale):
    result = run_once(benchmark, ablations.run_num_tips, scale, seed=0)
    variants = result["variants"]
    for k, variant in variants.items():
        assert variant["final_accuracy"] > 0.35, f"num_tips={k}"
    # k=2 (the paper's choice) must not lose to k=1 chains on accuracy by a
    # large margin — averaging two parents is the mixing mechanism.
    assert variants["2"]["final_accuracy"] >= variants["1"]["final_accuracy"] - 0.2


def test_ablation_walk_depth(benchmark, scale):
    result = run_once(benchmark, ablations.run_walk_depth, scale, seed=0)
    variants = result["variants"]
    for name, variant in variants.items():
        assert variant["final_accuracy"] > 0.35, name
