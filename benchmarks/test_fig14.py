"""Figure 14: distribution of poisoned clients over inferred clusters."""

from benchmarks_shared import run_once

from repro.experiments import fig12_13_14
from benchmarks_shared import scenario_subset


def test_fig14(benchmark, scale):
    result = run_once(
        benchmark,
        fig12_13_14.run,
        scale,
        seed=2,
        scenarios=scenario_subset("p0.3"),
    )
    scenario = result["scenarios"]["p0.3"]
    distribution = scenario["cluster_distribution"]
    total_poisoned = sum(row["poisoned"] for row in distribution)
    total = sum(row["poisoned"] + row["benign"] for row in distribution)
    assert total_poisoned == len(scenario["poisoned_clients"])
    assert total == total_poisoned + sum(row["benign"] for row in distribution)
    # Shape: poisoned clients are not spread perfectly evenly — some
    # cluster concentrates them (containment).  We check that at least one
    # cluster holds a disproportionate share of the poisoned clients.
    if total_poisoned:
        overall_rate = total_poisoned / total
        max_rate = max(
            row["poisoned"] / (row["poisoned"] + row["benign"])
            for row in distribution
        )
        assert max_rate >= overall_rate
