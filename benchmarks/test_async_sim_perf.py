"""Event-driven simulator benchmarks: quantum-batched supersteps at scale.

The engine's scaling claim: batching every cycle that completes within a
scheduling quantum into one fused superstep (shared walk snapshots, one
lockstep training pass) turns a 1000-client asynchronous run from
thousands of tiny numpy calls into a short sequence of wide batches.
The scheduling stream is consumed in pop order either way, so the two
modes process near-identical schedules (batch-frozen tip views can flip
an occasional publish gate, which shifts later propagation draws); the
comparison is speed for speed over the same horizon and client count,
with cycle counts asserted within a few percent.

Enforced floors, recorded to ``BENCH_async.json`` for CI:

- **100-client batching**: the same 6-time-unit scenario must run
  >= 1.5x faster at quantum 0.5 than event-at-a-time (measured ~4x
  locally; the floor leaves noisy-CI headroom).
- **1000-client batching**: >= 2x on a 3-time-unit horizon (measured
  ~10x locally — wider batches amortize better).

Also recorded (no floor): the full 1000-client scenario — stragglers,
Poisson churn, quantum batching — with its events/sec and wall clock,
the headline scalability trajectory numbers.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data import make_fedprox_synthetic
from repro.fl import DagConfig, TrainingConfig
from repro.nn import zoo
from repro.sim import EventDrivenTangleLearning, SimConfig, random_churn

BATCHING_FLOOR_100 = 1.5
BATCHING_FLOOR_1000 = 2.0

_RESULTS: dict = {}


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _build_engine(num_clients, *, quantum, horizon, churned=False, seed=0):
    dataset = make_fedprox_synthetic(
        num_clients=num_clients, mean_samples=10, seed=1
    )
    features = dataset.clients[0].x_train.shape[1]
    churn = (
        random_churn(
            range(num_clients),
            mean_uptime=12.0,
            mean_downtime=3.0,
            horizon=horizon,
            rng=np.random.default_rng(2),
        )
        if churned
        else ()
    )
    return EventDrivenTangleLearning(
        dataset,
        lambda rng: zoo.build_logistic_regression(
            rng, in_features=features, num_classes=10
        ),
        TrainingConfig(
            local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.05
        ),
        DagConfig(selector="weighted", depth_range=(2, 5), training_plane=True),
        sim_config=SimConfig(
            quantum=quantum,
            straggler_fraction=0.1 if churned else 0.0,
            straggler_slowdown=4.0,
            churn=churn,
        ),
        seed=seed,
    )


def _batching_speedup(num_clients, *, horizon, repeats):
    """Wall-clock ratio of event-at-a-time to quantum-batched on the
    same scenario, after asserting both processed the same schedule."""

    def run(quantum):
        engine = _build_engine(num_clients, quantum=quantum, horizon=horizon)
        engine.run_until(horizon)
        return engine

    sequential_time, sequential = _best_of(lambda: run(0.0), repeats)
    batched_time, batched = _best_of(lambda: run(0.5), repeats)
    # Batching changes tip visibility, not the latency laws: both modes
    # must have processed essentially the same amount of work.
    assert abs(sequential.completed_cycles - batched.completed_cycles) <= max(
        3, sequential.completed_cycles // 20
    )
    return sequential_time, batched_time, sequential.completed_cycles


def test_hundred_client_batching_speedup():
    sequential_time, batched_time, cycles = _batching_speedup(
        100, horizon=6.0, repeats=3
    )
    speedup = sequential_time / batched_time
    _RESULTS["batching_100_clients"] = {
        "workload": f"100 clients to t=6.0 ({cycles} cycles), weighted "
        "selector, logistic-60-10, quantum 0.5 vs event-at-a-time",
        "cycles": cycles,
        "sequential_seconds": sequential_time,
        "batched_seconds": batched_time,
        "speedup": speedup,
        "floor": BATCHING_FLOOR_100,
    }
    assert speedup >= BATCHING_FLOOR_100, (
        f"100-client quantum batching only {speedup:.2f}x over "
        f"event-at-a-time (floor {BATCHING_FLOOR_100}x)"
    )


def test_thousand_client_batching_speedup():
    sequential_time, batched_time, cycles = _batching_speedup(
        1000, horizon=3.0, repeats=1
    )
    speedup = sequential_time / batched_time
    _RESULTS["batching_1000_clients"] = {
        "workload": f"1000 clients to t=3.0 ({cycles} cycles), weighted "
        "selector, logistic-60-10, quantum 0.5 vs event-at-a-time",
        "cycles": cycles,
        "sequential_seconds": sequential_time,
        "batched_seconds": batched_time,
        "speedup": speedup,
        "floor": BATCHING_FLOOR_1000,
    }
    assert speedup >= BATCHING_FLOOR_1000, (
        f"1000-client quantum batching only {speedup:.2f}x over "
        f"event-at-a-time (floor {BATCHING_FLOOR_1000}x)"
    )


def test_thousand_client_full_scenario_recorded():
    """The headline run: 1000 clients with 10% stragglers (4x slower)
    and Poisson churn, quantum-batched.  No floor — absolute throughput
    is machine-dependent — but the run must complete the horizon and
    its events/sec lands in the trajectory file."""
    engine = _build_engine(1000, quantum=0.5, horizon=6.0, churned=True)
    started = time.perf_counter()
    engine.run_until(6.0)
    wall_clock = time.perf_counter() - started
    events = len(engine.events)
    assert engine.completed_cycles >= 1000
    assert len(engine.tangle) > 500
    assert any(e.kind in ("join", "leave") for e in engine.events)
    _RESULTS["full_scenario_1000_clients"] = {
        "workload": "1000 clients to t=6.0, 10% stragglers at 4x, "
        "Poisson churn (uptime 12, downtime 3), quantum 0.5",
        "events": events,
        "cycles": engine.completed_cycles,
        "transactions": len(engine.tangle) - 1,
        "wall_clock_seconds": wall_clock,
        "events_per_second": events / wall_clock,
        "note": "no floor: absolute throughput is machine-dependent",
    }


def test_zzz_emit_bench_async_json():
    """Write the trajectory file CI uploads (runs after the measurements;
    the zzz prefix keeps pytest's in-file ordering explicit)."""
    assert "batching_100_clients" in _RESULTS
    out = Path(
        os.environ.get(
            "BENCH_ASYNC_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_async.json",
        )
    )
    out.write_text(json.dumps(_RESULTS, indent=2) + "\n")
    assert out.exists()
