"""Figure 5: choosing alpha via modularity / partitions / misclassification."""

from benchmarks_shared import run_once

from repro.experiments import fig5


def test_fig5(benchmark, scale):
    result = run_once(benchmark, fig5.run, scale, seed=0)
    alphas = result["alphas"]
    mid = alphas["10.0"]["final"]
    low = alphas["1.0"]["final"]
    high = alphas["100.0"]["final"]
    # alpha=10: the paper's sweet spot — near-truth partition count and
    # (virtually) no misclassified clients.
    assert mid["misclassification"] <= 0.15
    assert 2 <= mid["num_partitions"] <= 4
    # alpha=1: too random — worst misclassification of the three.
    assert low["misclassification"] >= mid["misclassification"]
    # alpha in {10, 100} keeps modularity clearly above the alpha=1 level.
    assert mid["modularity"] > low["modularity"]
    assert high["modularity"] > low["modularity"]
