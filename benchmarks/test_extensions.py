"""Benches for the beyond-the-paper extensions."""

from benchmarks_shared import run_once

from repro.experiments import extensions


def test_personalization(benchmark, scale):
    result = run_once(benchmark, extensions.run_personalization, scale, seed=0)
    variants = result["variants"]
    # Personal heads must not lose badly to full sharing on mixed data —
    # at most scales they win (each head adapts to the client's blend).
    assert variants["personal-head"]["final_accuracy"] >= (
        variants["shared"]["final_accuracy"] - 0.1
    )
    for variant in variants.values():
        assert variant["final_accuracy"] > 0.25


def test_random_weight_attack(benchmark, scale):
    result = run_once(
        benchmark, extensions.run_random_weight_attack, scale, seed=0
    )
    variants = result["variants"]
    assert variants["clean"]["malicious_transactions"] == 0
    assert variants["attacked-accuracy"]["malicious_transactions"] > 0
    # The accuracy walk absorbs random-weight attackers at least as well
    # as the uniform-random baseline (Section 4.4's argument).
    assert variants["attacked-accuracy"]["final_accuracy"] >= (
        variants["attacked-random"]["final_accuracy"] - 0.05
    )


def test_visibility_delay(benchmark, scale):
    result = run_once(benchmark, extensions.run_visibility_delay, scale, seed=0)
    variants = result["variants"]
    # Stale views degrade gracefully: even delay=3 keeps learning and
    # specialization above the random base of 1/3.
    assert variants["3"]["final_accuracy"] > 0.35
    assert variants["3"]["pureness"] > 1 / 3
    # No-delay is the best or near-best configuration.
    best = max(v["final_accuracy"] for v in variants.values())
    assert variants["0"]["final_accuracy"] >= best - 0.05
