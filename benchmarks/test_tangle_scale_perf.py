"""Million-transaction trajectory: O(delta) growth, bounded residency.

PR 10 makes tangle growth cost proportional to the publish-epoch delta
instead of to history: ``snapshot_for`` *extends* the cached CSR
snapshot with the new transactions (appending rows, patching candidate
matrices) rather than rebuilding from scratch, and ``Tangle.compact``
truncates confirmed history so resident arena bytes stay bounded.
This file grows one tangle 100x (10^3 -> 10^5 transactions) and pins
the scaling story to ``BENCH_tangle_scale.json`` for CI:

- **Flat selection latency**: accuracy-mode ``select_tips`` p50 at
  10^5 transactions must stay within 1.5x of its 10^3-transaction
  value — the walk touches a depth-bounded neighborhood plus O(1)
  snapshot-cache work, never the whole history.
- **Extend beats rebuild**: applying a publish-epoch delta to the
  cached snapshot must be >= 5x cheaper than a cold rebuild at 10^5
  transactions — and **bit-identical** to it (CSR arrays, candidate
  matrices, tip ordering; cumulative weights are asserted at the 10^3
  checkpoint where the cold bitset comparator is affordable).
- **Compaction bounds residency**: compacting to the newest 10% must
  leave < 50% (here ~10%) of the uncompacted resident arena bytes,
  with the tangle still serving selections afterwards.

Timings are medians (p50) or best-of-N so a noisy CI neighbor cannot
flake the comparison.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import AccuracyTipSelector
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.walk_engine import TangleSnapshot, clear_snapshot_cache, snapshot_for

SMALL = 1_000
LARGE = 100_000
DELTA = 200  # one publish epoch's worth of growth at the large scale
WINDOW = 64  # parents attach among the newest WINDOW transactions
COUNT = 8  # particles per selection
SELECTIONS = 21  # per p50 sample
P50_RATIO_FLOOR = round(1 / 1.5, 6)  # p50_small/p50_large >= 1/1.5
EXTEND_FLOOR = 5.0
COMPACT_FLOOR = 2.0  # resident_before/resident_after >= 2 (< 50% kept)
DIM = 8

_RESULTS: dict = {}
_STATE: dict = {}

STRUCTURAL = (
    "parent_indptr",
    "parent_indices",
    "approver_indptr",
    "approver_indices",
    "tip_nodes",
    "sink_nodes",
)
PLANES = ("parents_padded", "approvers_padded", "longest_past_path")


def _grow(tangle, recent, rng, n):
    """Append ``n`` transactions, each approving two of the newest
    ``WINDOW`` — the recency bias every live tangle has, which keeps
    the tip set bounded while depth keeps growing."""
    for _ in range(n):
        parents = tuple(
            dict.fromkeys(
                recent[int(rng.integers(0, len(recent)))] for _ in range(2)
            )
        )
        tx = Transaction(
            tangle.next_tx_id(int(rng.integers(0, 16))),
            parents,
            [rng.normal(size=DIM)],
            0,
            len(tangle) // 32,
        )
        tangle.add(tx)
        recent.append(tx.tx_id)
        del recent[:-WINDOW]


def _selector(cache):
    def batch_scores(tx_ids):
        # Deterministic-per-id synthetic accuracy: stable under caching,
        # zero model-evaluation cost, so timings isolate walk machinery.
        return np.array([(hash(t) % 997) / 997.0 for t in tx_ids])

    return AccuracyTipSelector(
        batch_accuracy_fn=batch_scores,
        alpha=5.0,
        depth_range=(15, 25),
        engine=True,
        score_cache_fn=lambda: cache,
        cache_epoch_fn=lambda: 0,
    )


def _p50_select(tangle, selector, seed):
    rng = np.random.default_rng(seed)
    for _ in range(3):  # warm: snapshot cached, planes materialized
        selector.select_tips(tangle, COUNT, rng)
    times = []
    for _ in range(SELECTIONS):
        start = time.perf_counter()
        selector.select_tips(tangle, COUNT, rng)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# -------------------------------------------------- flat select latency
def test_select_tips_p50_stays_flat_100x():
    clear_snapshot_cache()
    rng = np.random.default_rng(3)
    tangle = Tangle([np.zeros(DIM)])
    recent = [GENESIS_ID]
    cache: dict = {}
    selector = _selector(cache)

    _grow(tangle, recent, rng, SMALL)
    p50_small = _p50_select(tangle, selector, seed=11)

    _grow(tangle, recent, rng, LARGE - len(tangle) + 1)
    assert len(tangle) == LARGE + 1
    p50_large = _p50_select(tangle, selector, seed=13)

    ratio = p50_small / p50_large
    _RESULTS["select_tips_p50"] = {
        "small_transactions": SMALL,
        "large_transactions": LARGE,
        "p50_small_s": p50_small,
        "p50_large_s": p50_large,
        "speedup": ratio,  # >= 1/1.5 means large stays within 1.5x small
        "floor": P50_RATIO_FLOOR,
    }
    _STATE["tangle"] = tangle
    _STATE["recent"] = recent
    _STATE["rng"] = rng
    assert ratio >= P50_RATIO_FLOOR, (
        f"select_tips p50 degraded 100x in: {p50_small * 1e3:.3f}ms @ "
        f"{SMALL} -> {p50_large * 1e3:.3f}ms @ {LARGE}"
    )


# ---------------------------------------------- extend vs cold rebuild
def test_snapshot_extend_beats_cold_rebuild_at_scale():
    tangle, recent, rng = _STATE["tangle"], _STATE["recent"], _STATE["rng"]
    clear_snapshot_cache()
    base = snapshot_for(tangle)
    for name in PLANES:  # the maintained state extension must patch
        getattr(base, name)()
    _grow(tangle, recent, rng, DELTA)

    def extend():
        return base.extend(tangle)

    def rebuild():
        snapshot = TangleSnapshot.build(tangle)
        for name in PLANES:
            getattr(snapshot, name)()
        return snapshot

    extend_s, extended = _best_of(extend, repeats=5)
    rebuild_s, cold = _best_of(rebuild, repeats=3)

    # Bit-identity at full scale: the extended snapshot IS the rebuild.
    assert extended.ids == cold.ids
    for name in STRUCTURAL:
        np.testing.assert_array_equal(
            getattr(extended, name), getattr(cold, name), err_msg=name
        )
    for name in PLANES:
        np.testing.assert_array_equal(
            getattr(extended, name)(), getattr(cold, name)(), err_msg=name
        )

    speedup = rebuild_s / extend_s
    _RESULTS["snapshot_extend"] = {
        "transactions": len(tangle),
        "delta": DELTA,
        "extend_s": extend_s,
        "rebuild_s": rebuild_s,
        "speedup": speedup,
        "floor": EXTEND_FLOOR,
    }
    assert speedup >= EXTEND_FLOOR, (
        f"extend {extend_s * 1e3:.2f}ms vs rebuild {rebuild_s * 1e3:.2f}ms "
        f"= {speedup:.1f}x < {EXTEND_FLOOR}x"
    )


def test_extend_weights_bit_identical_at_checkpoint():
    """Cumulative weights: the incremental bitset extension equals the
    cold bitset pass — asserted at the 10^3 checkpoint, where the cold
    O(N^2/64) comparator is affordable."""
    clear_snapshot_cache()
    rng = np.random.default_rng(5)
    tangle = Tangle([np.zeros(DIM)])
    recent = [GENESIS_ID]
    _grow(tangle, recent, rng, SMALL)
    base = snapshot_for(tangle)
    base._weight_authority = None  # force + materialize the bitset path
    base.cumulative_weights()
    _grow(tangle, recent, rng, DELTA)
    extended = base.extend(tangle)
    cold = TangleSnapshot.build(tangle)
    cold._weight_authority = None
    np.testing.assert_array_equal(
        extended.cumulative_weights(), cold.cumulative_weights()
    )
    _RESULTS["weight_bit_identity"] = {
        "transactions": len(tangle),
        "delta": DELTA,
        "asserted": True,
    }


# ------------------------------------------------- compaction residency
def test_compaction_bounds_resident_arena_bytes():
    tangle, rng = _STATE["tangle"], _STATE["rng"]
    cache: dict = {}
    compact_s, report = _best_of(
        lambda: tangle.compact(keep_last=LARGE // 10), repeats=1
    )
    assert report.dropped > 0
    ratio = report.resident_before / report.resident_after
    # The compacted tangle still serves selections.
    selector = _selector(cache)
    tips = selector.select_tips(tangle, COUNT, np.random.default_rng(17))
    assert len(tips) == COUNT and all(t in tangle for t in tips)
    _RESULTS["arena_compaction"] = {
        "kept_transactions": report.kept,
        "dropped_transactions": report.dropped,
        "resident_before_bytes": report.resident_before,
        "resident_after_bytes": report.resident_after,
        "compact_s": compact_s,
        "speedup": ratio,  # >= 2 means < 50% of bytes stay resident
        "floor": COMPACT_FLOOR,
    }
    assert ratio >= COMPACT_FLOOR, (
        f"compaction kept {report.resident_after}/{report.resident_before} "
        f"bytes resident ({100 / ratio:.0f}%), floor is < 50%"
    )


# ------------------------------------------------------------- emission
def test_zzz_emit_bench_tangle_scale_json():
    out = Path(
        os.environ.get(
            "BENCH_TANGLE_SCALE_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_tangle_scale.json",
        )
    )
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
    assert out.exists()
