"""Figures 10 & 11: FedAvg vs DAG vs FedProx on synthetic(0.5, 0.5)."""

import numpy as np
from benchmarks_shared import run_once

from repro.experiments import fig10_11


def late(series, k=5):
    return float(np.mean(series[-k:]))


def test_fig10_11(benchmark, scale):
    result = run_once(benchmark, fig10_11.run, scale, seed=0)
    # Fig 10 shape: the DAG eventually outperforms FedAvg on accuracy.
    assert late(result["dag"]["accuracy"]) > late(result["fedavg"]["accuracy"])
    # Fig 11 shape: ... and on loss.
    assert late(result["dag"]["loss"]) < late(result["fedavg"]["loss"])
    # All three approaches actually learn.
    for algo in ("fedavg", "fedprox", "dag"):
        assert late(result[algo]["accuracy"]) > 0.3, algo
