"""Figure 12: flipped predictions under label-flip poisoning."""

import numpy as np
from benchmarks_shared import run_once

from repro.experiments import fig12_13_14


def test_fig12(benchmark, scale):
    result = run_once(benchmark, fig12_13_14.run, scale, seed=0)
    scenarios = result["scenarios"]

    def late(label):
        return float(np.nanmean(scenarios[label]["flipped_rate"][-3:]))

    # p=0.2 with the accuracy selector stays near the clean baseline.
    assert late("p0.2") <= late("p0.0") + 0.15
    # p=0.3 is noticeable but bounded (paper: below 30 %).
    assert late("p0.3") <= 0.45
    # Headline: the random selector at p=0.2 suffers more flipped
    # predictions than the accuracy selector at p=0.3.
    assert late("p0.2-random") > late("p0.2")
