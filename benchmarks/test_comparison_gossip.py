"""Bench: gossip learning vs the specializing DAG on clustered data."""

from benchmarks_shared import run_once

from repro.experiments import comparison_gossip


def test_comparison_gossip(benchmark, scale):
    result = run_once(benchmark, comparison_gossip.run, scale, seed=0)
    # On non-IID (clustered) data the DAG's accuracy-biased partner
    # selection beats gossip's uniform peer sampling (Hegedűs et al.'s
    # observation, reproduced with the DAG as the decentralized winner).
    assert result["dag"]["final_accuracy"] > result["gossip"]["final_accuracy"]
    # Both decentralized approaches do learn.
    assert result["gossip"]["final_accuracy"] > 0.3
