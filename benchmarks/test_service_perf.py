"""Service-layer benchmarks: coalescing throughput and chaos-mode tails.

Two scenarios, both through the real service stack:

1. ``coalescing`` — 32 concurrent users in a closed loop against the
   same ``TipCoalescer``, once with batching disabled (``max_batch=1``,
   one ladder walk per request) and once enabled (``max_batch=64``).
   The machine is single-core: the speedup is amortization — one
   ``lockstep_walks`` superstep loop serving the whole batch instead of
   one loop per request.  Floor: coalesced throughput >= 1.5x.

2. ``chaos`` — a full ``TangleGateway`` under ``ServiceChaos`` (drops,
   jitter, payload corruption, injected coalescer crashes) plus a
   flaky scoring plane.  Every response must stay inside the closed
   ok/shed/rejected taxonomy, degradation must actually fire, and the
   p99 tips latency must stay under the configured deadline budget.
   Floor: budget / p99 >= 1.0 ("deadline_headroom").

Run:
    PYTHONPATH=src python -m pytest benchmarks/test_service_perf.py -q
Emits BENCH_service.json at the repo root (override: BENCH_SERVICE_OUT).
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.walk_engine import clear_snapshot_cache
from repro.service import (
    GatewayConfig,
    ServiceChaos,
    TangleGateway,
    TipCoalescer,
    TransportDropped,
)
from repro.service.degradation import DegradationLadder
from repro.sim.faults import FaultModel

_RESULTS: dict = {}

USERS = 32
PER_USER = 8
COALESCING_FLOOR = 1.5
CHAOS_BUDGET = 0.5
HEADROOM_FLOOR = 1.0


def _grow_tangle(n=300, seed=2, width=64):
    rng = np.random.default_rng(seed)
    tangle = Tangle([np.zeros(width)])
    ids = [GENESIS_ID]
    for i in range(n):
        parents = tuple(
            dict.fromkeys(
                ids[int(rng.integers(0, len(ids)))] for _ in range(2)
            )
        )
        tangle.add(
            Transaction(f"t{i}", parents, [np.zeros(width)], i % 16, i // 16)
        )
        ids.append(f"t{i}")
    return tangle


def _percentiles(latencies):
    arr = np.sort(np.asarray(latencies))
    return {
        "p50_ms": round(float(arr[arr.size // 2]) * 1000, 3),
        "p99_ms": round(float(arr[int(arr.size * 0.99)]) * 1000, 3),
    }


# ------------------------------------------------------------- coalescing
def _closed_loop(tangle, max_batch):
    """32 users x 8 requests through one coalescer; returns wall + tails."""
    clear_snapshot_cache()
    latencies = []
    lock = threading.Lock()
    with TipCoalescer(
        tangle,
        ladder=DegradationLadder(),
        max_batch=max_batch,
        max_pending=4096,
        seed=0,
    ) as coalescer:
        barrier = threading.Barrier(USERS)

        def user():
            mine = []
            barrier.wait()
            for _ in range(PER_USER):
                start = time.perf_counter()
                outcome = coalescer.submit(2)
                mine.append(time.perf_counter() - start)
                assert outcome.ok
            with lock:
                latencies.extend(mine)

        threads = [threading.Thread(target=user) for _ in range(USERS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        stats = dict(coalescer.stats)
    return wall, latencies, stats


def test_coalescing_throughput_floor():
    tangle = _grow_tangle()
    total = USERS * PER_USER

    # Warm-up pass so thread spawn + snapshot build costs are paid.
    _closed_loop(tangle, max_batch=64)

    wall_single, lat_single, stats_single = _closed_loop(tangle, max_batch=1)
    wall_batched, lat_batched, stats_batched = _closed_loop(
        tangle, max_batch=64
    )
    speedup = wall_single / wall_batched

    _RESULTS["coalescing"] = {
        "users": USERS,
        "requests": total,
        "per_request": {
            "wall_seconds": round(wall_single, 4),
            "rps": round(total / wall_single, 1),
            "batches": stats_single["batches"],
            **_percentiles(lat_single),
        },
        "coalesced": {
            "wall_seconds": round(wall_batched, 4),
            "rps": round(total / wall_batched, 1),
            "batches": stats_batched["batches"],
            "max_batch_size": stats_batched["max_batch_size"],
            **_percentiles(lat_batched),
        },
        "speedup": round(speedup, 2),
        "floor": COALESCING_FLOOR,
    }
    assert stats_batched["coalesced"] > 0
    assert stats_batched["batches"] < stats_single["batches"]
    assert speedup >= COALESCING_FLOOR, (
        f"coalescing speedup {speedup:.2f}x below floor "
        f"{COALESCING_FLOOR}x at {USERS} users"
    )


# ------------------------------------------------------------------ chaos
def _flaky_provider_factory(fail_every=3):
    """Scoring plane that fails deterministically every Nth call."""
    calls = [0]
    call_lock = threading.Lock()

    def provider(score_key):
        def batch(tx_ids):
            with call_lock:
                calls[0] += 1
                failing = calls[0] % fail_every == 0
            if failing:
                raise RuntimeError("scoring plane flaked")
            time.sleep(0.003)
            return np.random.default_rng(0).random(len(tx_ids))

        return batch

    return provider


def test_chaos_load_p99_stays_under_budget():
    tangle = _grow_tangle()
    clear_snapshot_cache()
    faults = FaultModel(
        drop_rate=0.08,
        jitter=0.002,
        corruption_rate=0.3,
        corruption_mode="nan",
        crash_rate=0.25,
        always_on=True,
    )
    chaos = ServiceChaos(faults, seed=7)
    config = GatewayConfig(
        deadline_budget=CHAOS_BUDGET,
        admission_capacity=16,
        max_batch=16,
        breaker_failure_threshold=3,
        breaker_reset_timeout=0.2,
        seed=7,
    )
    latencies = []
    outcomes: dict[str, int] = {}
    drops = [0]
    lock = threading.Lock()
    payload_rng = np.random.default_rng(1)
    payloads = [
        payload_rng.normal(size=tangle.spec.total) for _ in range(8)
    ]

    with TangleGateway(
        tangle,
        config=config,
        score_provider=_flaky_provider_factory(),
        chaos=chaos,
    ) as gateway:

        def user(uid):
            mine = []
            local: dict[str, int] = {}
            local_drops = 0
            for _ in range(PER_USER):
                start = time.perf_counter()
                try:
                    response = gateway.tips(2, score_key=uid)
                    key = response.status + (
                        "_degraded" if response.degraded else ""
                    )
                except TransportDropped:
                    # Transport event: the connection died without a
                    # response.  Not part of the response taxonomy.
                    local_drops += 1
                    continue
                mine.append(time.perf_counter() - start)
                local[key] = local.get(key, 0) + 1
                try:
                    published = gateway.publish(
                        payloads[uid % len(payloads)],
                        tangle.tips()[:2],
                        issuer=uid,
                    )
                    local[published.status] = (
                        local.get(published.status, 0) + 1
                    )
                except TransportDropped:
                    local_drops += 1
            with lock:
                latencies.extend(mine)
                drops[0] += local_drops
                for key, value in local.items():
                    outcomes[key] = outcomes.get(key, 0) + value

        threads = [
            threading.Thread(target=user, args=(uid,))
            for uid in range(USERS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start

        # The crash draw happens once per coalescer batch, so an
        # unlucky schedule can finish the load with no crash landed.
        # Keep poking (off the clock) until the restart path has
        # demonstrably run; at crash_rate=0.25 per batch this is
        # virtually certain well inside the bound.
        for _ in range(400):
            if gateway.coalescer.stats["restarts"] > 0:
                break
            try:
                gateway.tips(1)
            except TransportDropped:
                pass

        counts = dict(gateway.counts)
        coalescer_stats = dict(gateway.coalescer.stats)
        ladder_stats = dict(gateway.ladder.stats)

    tails = _percentiles(latencies)
    headroom = CHAOS_BUDGET * 1000 / tails["p99_ms"]
    _RESULTS["chaos"] = {
        "users": USERS,
        "budget_ms": CHAOS_BUDGET * 1000,
        "wall_seconds": round(wall, 4),
        "rps": round(len(latencies) / wall, 1),
        "outcomes": outcomes,
        "transport_drops": drops[0],
        "counts": counts,
        "restarts": coalescer_stats["restarts"],
        "degraded": counts["degraded"],
        "quarantined": counts["quarantined"],
        "ladder": ladder_stats,
        "chaos_injected": dict(chaos.stats),
        **tails,
        "deadline_headroom": {
            "speedup": round(headroom, 2),
            "floor": HEADROOM_FLOOR,
        },
    }

    # The closed taxonomy: nothing but ok / shed / rejected, ever.
    statuses = {key.removesuffix("_degraded") for key in outcomes}
    assert statuses <= {"ok", "shed", "rejected"}, outcomes
    assert outcomes.get("ok", 0) > 0  # the service kept serving
    assert counts["shed"] > 0  # backpressure fired
    assert counts["degraded"] > 0  # the ladder actually degraded
    assert counts["quarantined"] > 0  # corrupt payloads were caught
    assert coalescer_stats["restarts"] > 0  # it crashed and recovered
    assert headroom >= HEADROOM_FLOOR, (
        f"chaos p99 {tails['p99_ms']:.1f}ms exceeds the "
        f"{CHAOS_BUDGET * 1000:.0f}ms deadline budget"
    )


# ------------------------------------------------------------------ emit
def test_zzz_emit_bench_service_json():
    if not _RESULTS:
        pytest.skip("no benchmark results collected")
    out = os.environ.get(
        "BENCH_SERVICE_OUT",
        str(Path(__file__).resolve().parent.parent / "BENCH_service.json"),
    )
    payload = {"benchmark": "service", "results": _RESULTS}
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
