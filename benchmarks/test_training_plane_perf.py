"""Training-plane benchmarks: lockstep local SGD across a round's clients.

The last unvectorized hot path of a round: K clients each running local
SGD as an independent Python loop of tiny numpy calls.  The lockstep
plane (``repro.nn.training_plane``) stacks the K models into one
``(K, P)`` weight matrix and advances every client's batch in one fused
forward/backward/update superstep.

Enforced floor, recorded to ``BENCH_training.json`` for CI:

- **Lockstep local training**: a round's worth of local SGD — 10
  clients x the paper's fmnist schedule (10 batches of 10) — on the
  simulation-profile MLP (10x10 inputs, 16 hidden units) must be
  >= 2x faster fused than the sequential per-client loop, with
  **bit-identical** float64 trained weights and mean losses (the fused
  kernels perform the same per-model numpy products).

Also recorded (no floor): the same comparison at the round level — full
``TangleLearning`` rounds with ``training_plane`` on vs off, asserted
bit-identical down to post-round tangle weights (the acceptance oracle),
with walks/evaluations diluting the measured win honestly — and the conv
fallback, where the plane routes through the per-model loop (parity is
the claim).

Timings are best-of-N so a noisy-neighbor stall on a shared CI runner
cannot flake the comparison.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data import make_fmnist_clustered
from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.nn import SGD, zoo
from repro.nn.model import plan_local_batches
from repro.nn.training_plane import LockstepTrainer, TrainJob

TRAINING_FLOOR = 2.0
CLIENTS = 10
BATCHES = 10
BATCH_SIZE = 10

_RESULTS: dict = {}


def _best_of(fn, repeats=5):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _make_jobs(model, *, clients=CLIENTS, n=100, feature_shape=(100,), classes=10):
    rng = np.random.default_rng(1)
    start = model.get_flat()
    jobs = []
    for client in range(clients):
        x = rng.normal(size=(n,) + feature_shape)
        y = rng.integers(0, classes, size=n)
        batches = plan_local_batches(
            n,
            np.random.default_rng(1000 + client),
            epochs=1,
            batch_size=BATCH_SIZE,
            max_batches=BATCHES,
        )
        jobs.append(TrainJob(x=x, y=y, batches=batches, start_flat=start.copy()))
    return jobs


def _measure(model_builder, *, feature_shape=(100,), classes=10, repeats=5):
    """Timed sequential per-client loop vs one lockstep pass over the
    same jobs; returns (loop_time, fused_time) after asserting
    bit-identical float64 weights and losses."""
    sequential_model = model_builder()
    fused_model = model_builder()
    jobs = _make_jobs(sequential_model, feature_shape=feature_shape, classes=classes)

    def per_client_loop():
        out = []
        for job in jobs:
            sequential_model.load_flat(job.start_flat)
            optimizer = SGD(0.05)
            losses = [
                sequential_model.train_batch(job.x[idx], job.y[idx], optimizer)
                for idx in job.batches
            ]
            out.append((sequential_model.get_flat(), float(np.mean(losses))))
        return out

    def lockstep():
        return LockstepTrainer(lr=0.05).train(fused_model, jobs)

    loop_time, loop_out = _best_of(per_client_loop, repeats)
    fused_time, fused_out = _best_of(lockstep, repeats)
    for (row_a, loss_a), (row_b, loss_b) in zip(loop_out, fused_out):
        np.testing.assert_array_equal(row_a, row_b)
        assert row_a.dtype == row_b.dtype == np.float64
        assert loss_a == loss_b
    return loop_time, fused_time


def test_lockstep_training_speedup_and_equivalence():
    """10 clients x 10 batches of 10 on the simulation-profile MLP
    (10x10 inputs, 16 hidden units — the regime every test-suite round
    trains in): per-client loop vs fused lockstep supersteps."""
    builder = lambda: zoo.build_mlp(
        np.random.default_rng(0), in_features=100, hidden=(16,), num_classes=10
    )
    assert builder().supports_fused_train
    loop_time, fused_time = _measure(builder)
    speedup = loop_time / fused_time
    _RESULTS["lockstep_local_training"] = {
        "workload": f"{CLIENTS} clients x {BATCHES} batches of {BATCH_SIZE}, "
        f"mlp-100-16-10 ({builder().flat_spec.total} params), "
        "paper fmnist schedule",
        "clients": CLIENTS,
        "batches": BATCHES,
        "batch_size": BATCH_SIZE,
        "per_client_ms": loop_time * 1e3,
        "lockstep_ms": fused_time * 1e3,
        "speedup": speedup,
        "floor": TRAINING_FLOOR,
        "bit_identical_float64": True,
    }
    assert speedup >= TRAINING_FLOOR, (
        f"lockstep local training only {speedup:.2f}x over the "
        f"per-client loop (floor {TRAINING_FLOOR}x)"
    )


def test_round_level_training_plane_recorded():
    """Full rounds with ``training_plane`` on vs off: walks and
    evaluations dilute the training win, so no floor — but post-round
    weights must be bit-identical (the acceptance oracle), which is
    asserted over every transaction of both tangles."""
    data = make_fmnist_clustered(
        num_clients=10,
        samples_per_client=100,
        image_size=10,
        clusters=((0, 1), (7, 8)),
        seed=7,
    )
    builder = lambda rng: zoo.build_mlp(
        rng, in_features=100, hidden=(16,), num_classes=10
    )
    config = TrainingConfig(
        local_epochs=1, local_batches=10, batch_size=10, learning_rate=0.05
    )
    rounds = 6

    def run(plane):
        sim = TangleLearning(
            data,
            builder,
            config,
            DagConfig(alpha=10.0, depth_range=(2, 5), training_plane=plane),
            clients_per_round=10,
            seed=0,
        )
        try:
            sim.run(rounds)
        finally:
            sim.close()
        return sim

    baseline_time, baseline = _best_of(lambda: run(False), repeats=3)
    plane_time, plane = _best_of(lambda: run(True), repeats=3)
    assert len(baseline.tangle) == len(plane.tangle)
    for t1, t2 in zip(baseline.tangle.transactions(), plane.tangle.transactions()):
        assert t1.tx_id == t2.tx_id
        for w1, w2 in zip(t1.model_weights, t2.model_weights):
            np.testing.assert_array_equal(w1, w2)
    for ra, rb in zip(baseline.history, plane.history):
        assert ra.client_loss == rb.client_loss
        assert ra.published == rb.published
    _RESULTS["round_level"] = {
        "workload": f"{rounds} rounds x 10 clients, 10 batches of 10, "
        "mlp-100-16-10, accuracy walks included",
        "per_client_seconds": baseline_time,
        "training_plane_seconds": plane_time,
        "speedup": baseline_time / plane_time,
        "post_round_weights_bit_identical_float64": True,
        "note": "no floor: walks and evaluations dominate the remainder",
    }


def test_conv_fallback_parity_recorded():
    """Conv models have no fused training kernels: the plane's entry
    point falls back to the per-model loop.  Parity (not speed) is the
    claim — recorded so the trajectory documents the fused/fallback
    split."""
    builder = lambda: zoo.build_fmnist_cnn(
        np.random.default_rng(0), image_size=10, size="small"
    )
    assert not builder().supports_fused_train
    loop_time, fused_time = _measure(
        builder, feature_shape=(1, 10, 10), classes=10, repeats=2
    )
    _RESULTS["conv_fallback"] = {
        "workload": f"{CLIENTS} clients x {BATCHES} batches of {BATCH_SIZE}, "
        "fmnist-cnn-small (conv: per-model fallback)",
        "per_client_ms": loop_time * 1e3,
        "via_plane_ms": fused_time * 1e3,
        "ratio": loop_time / fused_time,
        "bit_identical_float64": True,
        "note": "no floor: conv layers have no fused kernel, parity is the claim",
    }


def test_zzz_emit_bench_training_json():
    """Write the trajectory file CI uploads (runs after the measurements;
    the zzz prefix keeps pytest's in-file ordering explicit)."""
    assert "lockstep_local_training" in _RESULTS
    out = Path(
        os.environ.get(
            "BENCH_TRAINING_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_training.json",
        )
    )
    out.write_text(json.dumps(_RESULTS, indent=2) + "\n")
    assert out.exists()
