"""Legacy setup shim.

The execution environment ships setuptools < 70 without the ``wheel``
package, so PEP 660 editable installs fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` via the fallback) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
