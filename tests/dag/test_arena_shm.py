"""Shared-memory arena backing: handles, growth, attachment, lifecycle."""

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.dag.arena import HANDLE_NBYTES, WeightArena
from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.nn.serialization import FlatSpec
from repro.utils import shm as shm_registry

SHAPES = ((3, 2), (2,))


@pytest.fixture
def spec():
    return FlatSpec(SHAPES)


def weight_list(rng):
    return [rng.normal(size=s) for s in SHAPES]


def segment_exists(name: str) -> bool:
    return Path("/dev/shm", name).exists()


# ------------------------------------------------------------ lifecycle
def test_to_shared_is_idempotent_and_bit_exact(spec, rng):
    with WeightArena(spec) as arena:
        flats = [spec.flatten(weight_list(rng)) for _ in range(3)]
        for f in flats:
            arena.intern(f)
        generation = arena.generation
        assert arena.to_shared() is arena
        assert arena.is_shared and not arena.is_attached
        assert arena.generation == generation + 1  # views must rebuild
        assert arena.to_shared() is arena  # second call: no-op
        assert arena.generation == generation + 1
        for i, f in enumerate(flats):
            np.testing.assert_array_equal(arena.row(i), f)
        arena.intern(flats[0])  # owners still append after migration
        assert len(arena) == 4


def test_close_unlinks_and_reverts_to_heap(spec, rng):
    arena = WeightArena(spec, shared=True)
    flat = spec.flatten(weight_list(rng))
    arena.intern(flat)
    name = arena.segment_name
    assert segment_exists(name)
    arena.close()
    assert not segment_exists(name)
    assert not arena.is_shared and arena.segment_name is None
    # still fully usable — and re-shareable under a fresh name
    np.testing.assert_array_equal(arena.row(0), flat)
    arena.intern(flat)
    arena.to_shared()
    assert arena.segment_name != name
    arena.close()
    arena.close()  # idempotent


def test_shared_growth_republishes_segment(spec, rng):
    with WeightArena(spec, initial_capacity=2, shared=True) as arena:
        first_name = arena.segment_name
        uid = arena.uid
        flats = [spec.flatten(weight_list(rng)) for _ in range(5)]
        for f in flats:
            arena.intern(f)
        assert arena.capacity >= 5
        assert arena.segment_name != first_name  # grown into a new segment
        assert arena.uid == uid  # same identity across generations
        assert not segment_exists(first_name)  # old name unlinked eagerly
        assert segment_exists(arena.segment_name)
        for i, f in enumerate(flats):
            np.testing.assert_array_equal(arena.row(i), f)


# ------------------------------------------------------------- pickling
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_shared_pickle_is_attach_by_name_handle(spec, rng, dtype):
    with WeightArena(spec, dtype=dtype, shared=True) as arena:
        flats = [spec.flatten(weight_list(rng)) for _ in range(3)]
        for f in flats:
            arena.intern(f)
        payload = pickle.dumps(arena)
        # a handle, not a slab: a few hundred bytes regardless of rows
        assert len(payload) < 4 * HANDLE_NBYTES
        restored = pickle.loads(payload)
        assert restored.is_attached and restored.is_shared
        assert restored.dtype == np.dtype(dtype)
        assert len(restored) == 3
        for i, f in enumerate(flats):
            np.testing.assert_array_equal(restored.row(i), f.astype(dtype))
        # same bytes, not a copy: attachments view the owner's memory
        assert restored.segment_name == arena.segment_name
        with pytest.raises(RuntimeError, match="read-only attached"):
            restored.intern(flats[0])


def test_heap_pickle_form_unchanged_by_shm_plane(spec, rng):
    arena = WeightArena(spec)
    arena.intern(spec.flatten(weight_list(rng)))
    restored = pickle.loads(pickle.dumps(arena))
    assert not restored.is_shared and not restored.is_attached
    np.testing.assert_array_equal(restored.row(0), arena.row(0))


def test_stale_generation_reattaches_after_growth(spec, rng):
    with WeightArena(spec, initial_capacity=2, shared=True) as arena:
        flats = [spec.flatten(weight_list(rng)) for _ in range(2)]
        for f in flats:
            arena.intern(f)
        worker_side = pickle.loads(pickle.dumps(arena))  # round 1 attach
        old_name = worker_side.segment_name

        grown = [spec.flatten(weight_list(rng)) for _ in range(4)]
        for f in grown:
            arena.intern(f)  # forces growth: new segment, old unlinked
        assert arena.segment_name != old_name

        # A holder of the superseded mapping keeps reading valid memory
        # (POSIX: unlink removes the name, not live mappings).
        for i, f in enumerate(flats):
            np.testing.assert_array_equal(worker_side.row(i), f)

        # The next round's handle names the new segment; attach_cached
        # swaps the mapping for the same uid.
        worker_side2 = pickle.loads(pickle.dumps(arena))
        assert worker_side2.segment_name == arena.segment_name
        assert worker_side2.generation == arena.generation
        assert len(worker_side2) == 6
        for i, f in enumerate(flats + grown):
            np.testing.assert_array_equal(worker_side2.row(i), f)


# ------------------------------------------------------- cross-process
def _read_rows(handle_bytes):
    """Worker body: attach by handle and report what it sees."""
    arena = pickle.loads(handle_bytes)
    return len(arena), [np.array(arena.row(i)) for i in range(len(arena))]


@pytest.fixture
def fork_pool():
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        pytest.skip("platform without fork")
    with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
        yield pool


def test_rows_visible_across_processes_after_intern(spec, rng, fork_pool):
    with WeightArena(spec, initial_capacity=8, shared=True) as arena:
        flats = [spec.flatten(weight_list(rng)) for _ in range(2)]
        for f in flats:
            arena.intern(f)
        count, rows = fork_pool.submit(_read_rows, pickle.dumps(arena)).result()
        assert count == 2
        for got, want in zip(rows, flats):
            np.testing.assert_array_equal(got, want)

        # rows interned between rounds become visible through the *same*
        # segment — the persistent worker re-reads, nothing re-ships
        late = spec.flatten(weight_list(rng))
        arena.intern(late)  # capacity 8: no growth, same segment
        count, rows = fork_pool.submit(_read_rows, pickle.dumps(arena)).result()
        assert count == 3
        np.testing.assert_array_equal(rows[2], late)


def _tangle_row(payload):
    tangle = pickle.loads(payload)
    return np.array(tangle.flat_weights("t0"))


def test_shared_tangle_ships_handle_to_workers(rng, fork_pool):
    with Tangle(weight_list(rng)) as tangle:
        tangle.add(Transaction("t0", (GENESIS_ID,), weight_list(rng), 0, 0))
        tangle.share_memory()
        assert tangle.arena.is_shared
        payload = pickle.dumps(tangle)
        got = fork_pool.submit(_tangle_row, payload).result()
        np.testing.assert_array_equal(got, tangle.flat_weights("t0"))


def test_attachments_never_unlink_owner_segments(spec, rng):
    with WeightArena(spec, shared=True) as arena:
        arena.intern(spec.flatten(weight_list(rng)))
        attached = pickle.loads(pickle.dumps(arena))
        attached.close()  # attached side: must be a no-op
        assert attached.is_attached and attached.is_shared
        assert segment_exists(arena.segment_name)


def test_registry_release_all_reaps_owned_segments(spec, rng):
    arena = WeightArena(spec, shared=True)  # deliberately never closed
    name = arena.segment_name
    assert name in shm_registry.owned_segment_names()
    shm_registry.release_all()  # the atexit safety net
    assert not segment_exists(name)
    assert name not in shm_registry.owned_segment_names()
