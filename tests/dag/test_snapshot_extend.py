"""Incremental snapshot extension: O(delta) growth, bit-identical.

``snapshot_for`` extends a cached snapshot with the publish-epoch delta
instead of rebuilding from scratch — but the extended snapshot must be
*indistinguishable* from a cold rebuild: same CSR arrays, same padded
candidate matrices, same cumulative weights, same tip ordering, so walk
distributions and Gumbel streams are unchanged.  These tests pin that
equivalence across every view kind, plus the cache-eviction contracts:
dead anchors are reaped and a post-compaction fingerprint never
resurrects a stale snapshot (the epoch term in the fingerprint).
"""

import gc

import numpy as np
import pytest

from repro.dag import walk_engine
from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.view import TangleView
from repro.dag.walk_engine import (
    TangleSnapshot,
    batched_walk_starts,
    clear_snapshot_cache,
    lockstep_walks,
    snapshot_for,
)
from repro.fl.async_learning import TimedTangleView


def weights():
    return [np.zeros(1)]


def grow(tangle, ids, n, *, seed, round_of=None, prefix="t", start=None):
    rng = np.random.default_rng(seed)
    if start is None:
        start = len(tangle) - 1
    for i in range(start, start + n):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        round_index = i // 10 if round_of is None else round_of(i)
        tangle.add(
            Transaction(f"{prefix}{i}", parents, weights(), i % 5, round_index)
        )
        ids.append(f"{prefix}{i}")


@pytest.fixture(autouse=True)
def _fresh_snapshot_cache():
    clear_snapshot_cache()
    yield
    clear_snapshot_cache()


PLANES = ("cumulative_weights", "parents_padded", "approvers_padded", "longest_past_path")
ARRAYS = (
    "parent_indptr",
    "parent_indices",
    "approver_indptr",
    "approver_indices",
    "tip_nodes",
    "sink_nodes",
)


def assert_snapshot_equal(extended, cold):
    assert extended.ids == cold.ids
    assert extended.index == cold.index
    assert extended.max_approvers == cold.max_approvers
    for name in ARRAYS:
        np.testing.assert_array_equal(
            getattr(extended, name), getattr(cold, name), err_msg=name
        )
    for name in PLANES:
        np.testing.assert_array_equal(
            getattr(extended, name)(), getattr(cold, name)(), err_msg=name
        )


# ------------------------------------------------------------- bit identity
def test_extend_matches_cold_rebuild_on_whole_tangle():
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 60, seed=1)
    base = snapshot_for(tangle)
    for name in PLANES:  # materialize so extension must patch, not defer
        getattr(base, name)()
    grow(tangle, ids, 35, seed=2)
    extended = snapshot_for(tangle)
    assert extended is not base
    assert extended._source_len == len(tangle)  # extended, not rebuilt
    assert_snapshot_equal(extended, TangleSnapshot.build(tangle))


def test_extend_defers_unmaterialized_planes():
    """Planes the base never computed stay lazy through extension and
    come out equal when finally demanded."""
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 40, seed=3)
    snapshot_for(tangle)
    grow(tangle, ids, 20, seed=4)
    extended = snapshot_for(tangle)
    assert extended._parents_padded is None
    assert extended._approvers_padded is None
    assert extended._longest_past_path is None
    assert_snapshot_equal(extended, TangleSnapshot.build(tangle))


def test_extend_bitset_weights_match_authority():
    """The incremental bitset pass must agree with both the cold bitset
    pass and the tangle's own weight index."""
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 50, seed=5)
    base = snapshot_for(tangle)
    base._weight_authority = None
    base.cumulative_weights()  # force the bitset path to materialize
    grow(tangle, ids, 30, seed=6)
    extended = snapshot_for(tangle)
    expected = [tangle.cumulative_weight(tx_id) for tx_id in extended.ids]
    np.testing.assert_array_equal(extended.cumulative_weights(), expected)


def test_extend_repeated_stages_stay_identical():
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 20, seed=7)
    snapshot = snapshot_for(tangle)
    for name in PLANES:
        getattr(snapshot, name)()
    for stage in range(4):
        grow(tangle, ids, 15, seed=8 + stage)
        snapshot = snapshot_for(tangle)
    assert snapshot._source_len == len(tangle)
    assert_snapshot_equal(snapshot, TangleSnapshot.build(tangle))


def test_extend_matches_cold_rebuild_on_view():
    """A round-bound view hides the delta's too-new rounds; the hidden
    count must advance so later fingerprints stay prefix-compatible."""
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 40, seed=9)  # rounds 0..3
    view = TangleView(tangle, max_round=5)
    base = snapshot_for(view)
    for name in PLANES:
        getattr(base, name)()
    grow(tangle, ids, 30, seed=10)  # rounds 4..6: round 6 is hidden
    extended = snapshot_for(TangleView(tangle, max_round=5))
    assert extended is not base
    assert extended._source_len == len(tangle)
    assert extended._hidden > 0
    assert_snapshot_equal(
        extended, TangleSnapshot.build(TangleView(tangle, max_round=5))
    )


def test_extend_across_increasing_view_bounds():
    """A snapshot that hides nothing may serve a *wider* bound later —
    the delta filter just admits more rounds."""
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 30, seed=11)  # rounds 0..2
    base = snapshot_for(TangleView(tangle, max_round=2))
    assert base._hidden == 0
    grow(tangle, ids, 30, seed=12)  # rounds 3..5
    extended = snapshot_for(TangleView(tangle, max_round=5))
    assert extended._source_len == len(tangle)
    assert_snapshot_equal(
        extended, TangleSnapshot.build(TangleView(tangle, max_round=5))
    )


def test_extend_matches_cold_rebuild_on_timed_view():
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 40, seed=13)
    visible_from = {tx_id: float(i) for i, tx_id in enumerate(ids[1:])}
    published_at = dict(visible_from)

    def timed(now):
        return TimedTangleView(
            tangle, visible_from, now, observer=0, published_at=published_at
        )

    base = snapshot_for(timed(100.0))
    for name in PLANES:
        getattr(base, name)()
    grow(tangle, ids, 25, seed=14)
    for i, tx_id in enumerate(ids[41:], start=40):
        visible_from[tx_id] = float(i)
        published_at[tx_id] = float(i)
    extended = snapshot_for(timed(150.0))
    assert extended is not base
    assert extended._source_len == len(tangle)
    assert_snapshot_equal(extended, TangleSnapshot.build(timed(150.0)))


def test_extend_empty_delta_returns_same_snapshot():
    """Growth entirely invisible to the view advances the cached
    snapshot's provenance in place — same object, no rebuild."""
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 30, seed=15)  # rounds 0..2
    view = TangleView(tangle, max_round=2)
    base = snapshot_for(view)
    grow(tangle, ids, 10, seed=16, round_of=lambda i: 9)  # all hidden
    again = snapshot_for(TangleView(tangle, max_round=2))
    assert again is base
    assert base._source_len == len(tangle)


def test_extended_snapshot_walks_identically():
    """Same Gumbel stream + same arrays => the same tips, particle for
    particle — the walk-level statement of bit identity."""
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 50, seed=17)
    base = snapshot_for(tangle)
    base.cumulative_weights()
    grow(tangle, ids, 30, seed=18)
    extended = snapshot_for(tangle)
    cold = TangleSnapshot.build(tangle)
    for snap in (extended, cold):  # identical RNG draws on both
        rng = np.random.default_rng(99)
        starts = batched_walk_starts(snap, 16, rng)
        finals = lockstep_walks(
            snap,
            starts,
            None,
            score_memo=snap.cumulative_weights_float(),
            alpha=0.8,
            rng=rng,
        )
        tips = [snap.ids[node] for node in finals]
        if snap is extended:
            extended_tips = tips
    assert extended_tips == tips


# --------------------------------------------------------- cache eviction
def test_snapshot_cache_reaps_dead_anchors():
    """Dead tangles' entries leave the fingerprint cache on the next
    store — the weakref bound, pinned."""
    for seed in range(3):
        tangle = Tangle(weights())
        ids = [GENESIS_ID]
        grow(tangle, ids, 10, seed=seed)
        snapshot_for(tangle)
        del tangle
    gc.collect()
    survivor = Tangle(weights())
    ids = [GENESIS_ID]
    grow(survivor, ids, 10, seed=42)
    snapshot_for(survivor)  # the store sweeps dead entries
    anchors = [ref() for ref, _ in walk_engine._SNAPSHOT_CACHE.values()]
    assert anchors == [survivor]


def test_compaction_never_resurrects_stale_snapshot():
    """After a compaction that lands the tangle back on a previously
    cached length, the fingerprint (which carries the compaction epoch)
    must miss — the old snapshot describes transactions that no longer
    exist."""
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 21, seed=19)
    stale = snapshot_for(tangle)  # len 22
    grow(tangle, ids, 10, seed=20)
    tangle.compact(keep_last=21)  # back to len 22, same id(), new epoch
    assert len(tangle) == len(stale)
    fresh = snapshot_for(tangle)
    assert fresh is not stale
    assert fresh.ids == [GENESIS_ID] + ids[-21:]
    # And the stale snapshot can't serve as an extension base either.
    kept = [GENESIS_ID] + ids[-21:]
    grow(tangle, kept, 5, seed=21, start=31)
    grown = snapshot_for(tangle)
    assert grown._epoch == tangle.compaction_epoch
    assert_snapshot_equal(grown, TangleSnapshot.build(tangle))


def test_cache_hit_after_extension_is_exact():
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    grow(tangle, ids, 20, seed=22)
    snapshot_for(tangle)
    grow(tangle, ids, 10, seed=23)
    extended = snapshot_for(tangle)
    assert snapshot_for(tangle) is extended  # exact fingerprint hit
