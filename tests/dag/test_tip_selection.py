"""Tip selectors: normalizations, walk weights, selection behaviour."""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import (
    AccuracyTipSelector,
    RandomTipSelector,
    WeightedTipSelector,
    accuracy_walk_weights,
    normalize_dynamic,
    normalize_standard,
)
from repro.dag.transaction import GENESIS_ID, Transaction


def weights():
    return [np.zeros(1)]


def fork_tangle():
    """genesis <- a, genesis <- b: two tips."""
    t = Tangle(weights())
    t.add(Transaction("a", (GENESIS_ID,), weights(), 0, 0))
    t.add(Transaction("b", (GENESIS_ID,), weights(), 1, 0))
    return t


# ----------------------------------------------------------- normalization
def test_standard_normalization_max_is_zero():
    accs = np.array([0.2, 0.5, 0.9])
    normalized = normalize_standard(accs)
    assert normalized.max() == 0.0
    np.testing.assert_allclose(normalized, [-0.7, -0.4, 0.0])


def test_dynamic_normalization_spread_is_one():
    accs = np.array([0.2, 0.5, 0.9])
    normalized = normalize_dynamic(accs)
    assert normalized.max() == 0.0
    assert normalized.min() == -1.0


def test_dynamic_normalization_scale_free():
    """Scaling accuracy differences must not change dynamic weights."""
    small = np.array([0.50, 0.51, 0.52])
    large = np.array([0.1, 0.5, 0.9])
    np.testing.assert_allclose(
        normalize_dynamic(small), normalize_dynamic(np.array([0.1, 0.5, 0.9]) )
    , atol=1e-12)
    np.testing.assert_allclose(normalize_dynamic(small), normalize_dynamic(large))


def test_dynamic_normalization_zero_spread():
    accs = np.array([0.4, 0.4])
    np.testing.assert_allclose(normalize_dynamic(accs), [0.0, 0.0])


# ------------------------------------------------------------ walk weights
def test_weights_sum_to_one(rng):
    probs = accuracy_walk_weights(rng.random(5), alpha=10.0)
    assert probs.sum() == pytest.approx(1.0)


def test_alpha_zero_is_uniform():
    probs = accuracy_walk_weights(np.array([0.1, 0.9]), alpha=0.0)
    np.testing.assert_allclose(probs, [0.5, 0.5])


def test_higher_alpha_more_deterministic():
    accs = np.array([0.5, 0.6])
    low = accuracy_walk_weights(accs, alpha=1.0)
    high = accuracy_walk_weights(accs, alpha=100.0)
    assert high[1] > low[1]
    assert high[1] > 0.99


def test_best_candidate_always_most_likely(rng):
    accs = rng.random(6)
    probs = accuracy_walk_weights(accs, alpha=5.0)
    assert probs.argmax() == accs.argmax()


def test_dynamic_beats_standard_for_tiny_gaps():
    """With tiny accuracy gaps, dynamic normalization keeps discrimination."""
    accs = np.array([0.500, 0.505])
    standard = accuracy_walk_weights(accs, alpha=1.0, normalization="standard")
    dynamic = accuracy_walk_weights(accs, alpha=1.0, normalization="dynamic")
    assert dynamic[1] > standard[1]


def test_walk_weights_validation(rng):
    with pytest.raises(ValueError, match="unknown normalization"):
        accuracy_walk_weights(np.array([0.5]), alpha=1.0, normalization="nope")
    with pytest.raises(ValueError, match="alpha"):
        accuracy_walk_weights(np.array([0.5]), alpha=-1.0)
    with pytest.raises(ValueError, match="non-empty"):
        accuracy_walk_weights(np.array([]), alpha=1.0)


# --------------------------------------------------------------- selectors
def test_random_selector_returns_distinct_when_possible(rng):
    tangle = fork_tangle()
    tips = RandomTipSelector().select_tips(tangle, 2, rng)
    assert set(tips) == {"a", "b"}


def test_random_selector_repeats_when_single_tip(rng):
    tangle = Tangle(weights())
    tips = RandomTipSelector().select_tips(tangle, 2, rng)
    assert tips == [GENESIS_ID, GENESIS_ID]


def test_accuracy_selector_prefers_high_accuracy_tip(rng):
    tangle = fork_tangle()
    accuracy = {"a": 0.9, "b": 0.1, GENESIS_ID: 0.0}
    selector = AccuracyTipSelector(
        lambda tx: accuracy[tx], alpha=100.0, depth_range=(0, 0)
    )
    # depth (0,0) starts at a tip; force start at genesis via many walks
    selector = AccuracyTipSelector(
        lambda tx: accuracy[tx], alpha=100.0, depth_range=(5, 10)
    )
    picks = [selector.select_tips(tangle, 1, rng)[0] for _ in range(30)]
    assert picks.count("a") > 27


def test_accuracy_selector_alpha_zero_roughly_uniform(rng):
    tangle = fork_tangle()
    selector = AccuracyTipSelector(lambda tx: 0.5, alpha=0.0, depth_range=(5, 10))
    picks = [selector.select_tips(tangle, 1, rng)[0] for _ in range(60)]
    assert 15 < picks.count("a") < 45


def test_accuracy_selector_counts_evaluations(rng):
    tangle = fork_tangle()
    counted = []
    selector = AccuracyTipSelector(
        lambda tx: 0.5,
        alpha=1.0,
        depth_range=(5, 10),
        evaluation_counter=counted.append,
    )
    selector.select_tips(tangle, 1, rng)
    assert sum(counted) == 2  # one step from genesis with two candidates


def test_accuracy_selector_validation():
    with pytest.raises(ValueError):
        AccuracyTipSelector(lambda tx: 0.5, alpha=-1.0)
    with pytest.raises(ValueError):
        AccuracyTipSelector(lambda tx: 0.5, normalization="nope")


def test_weighted_selector_prefers_heavy_subtangle(rng):
    """b carries a chain behind it -> cumulative weight pulls walks to it."""
    tangle = fork_tangle()
    prev = "b"
    for i in range(4):
        tx = Transaction(f"b{i}", (prev,), weights(), 1, i + 1)
        tangle.add(tx)
        prev = tx.tx_id
    selector = WeightedTipSelector(alpha=5.0, depth_range=(10, 12))
    picks = [selector.select_tips(tangle, 1, rng)[0] for _ in range(20)]
    assert picks.count("b3") > picks.count("a")


def test_weighted_selector_validation():
    with pytest.raises(ValueError):
        WeightedTipSelector(alpha=-0.1)
