"""Deadline propagation into the lockstep walk engine.

The service layer hands walks a budget object; the engine checks it at
superstep boundaries.  These tests pin the three contract points: an
expired budget aborts with :class:`WalkDeadlineExceeded` (from the
starts block, the superstep loop, and the tail finisher), a generous
budget changes *nothing* (bit-identical finals and rng stream), and the
check itself never consumes randomness.
"""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.walk_engine import (
    TangleSnapshot,
    WalkDeadlineExceeded,
    batched_walk_starts,
    lockstep_walks,
)


def _weights():
    return [np.zeros(1)]


def _grow(n=60, seed=4):
    rng = np.random.default_rng(seed)
    tangle = Tangle(_weights())
    ids = [GENESIS_ID]
    for i in range(n):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        tangle.add(Transaction(f"t{i}", parents, _weights(), i % 10, i // 10))
        ids.append(f"t{i}")
    return tangle


class _Budget:
    """Duck-typed deadline: expires after ``checks`` polls."""

    def __init__(self, checks):
        self.checks = checks
        self.polled = 0

    @property
    def expired(self):
        self.polled += 1
        return self.polled > self.checks


class _Never:
    expired = False


def _score(nodes):
    return np.linspace(0.0, 1.0, nodes.size)


def test_expired_deadline_aborts_walk_starts():
    snapshot = TangleSnapshot.build(_grow())
    with pytest.raises(WalkDeadlineExceeded, match="before walk starts"):
        batched_walk_starts(
            snapshot, 5, np.random.default_rng(0), deadline=_Budget(0)
        )


def test_deadline_mid_flight_aborts_superstep_loop():
    snapshot = TangleSnapshot.build(_grow())
    rng = np.random.default_rng(3)
    starts = batched_walk_starts(snapshot, 50, rng)
    with pytest.raises(WalkDeadlineExceeded, match="in flight"):
        lockstep_walks(
            snapshot,
            starts,
            _score,
            alpha=1.0,
            rng=rng,
            deadline=_Budget(1),  # survives one superstep, dies on the next
        )


def test_generous_deadline_is_bit_identical_to_none():
    snapshot = TangleSnapshot.build(_grow())

    def run(deadline):
        rng = np.random.default_rng(11)
        starts = batched_walk_starts(snapshot, 40, rng, deadline=deadline)
        finals = lockstep_walks(
            snapshot, starts, _score, alpha=2.0, rng=rng, deadline=deadline
        )
        return finals, rng.bit_generator.state

    bare_finals, bare_state = run(None)
    timed_finals, timed_state = run(_Never())
    np.testing.assert_array_equal(bare_finals, timed_finals)
    assert bare_state == timed_state  # the check draws nothing


def test_memo_scores_survive_an_aborted_walk():
    snapshot = TangleSnapshot.build(_grow())
    memo = np.full(len(snapshot), np.nan)
    rng = np.random.default_rng(7)
    starts = batched_walk_starts(snapshot, 50, rng)
    with pytest.raises(WalkDeadlineExceeded):
        lockstep_walks(
            snapshot,
            starts,
            _score,
            alpha=1.0,
            rng=rng,
            score_memo=memo,
            deadline=_Budget(1),
        )
    scored = ~np.isnan(memo)
    assert scored.any()  # the abort kept the work already paid for
    # ...and a rerun with the warm memo needs no new scoring calls for
    # those nodes: feed a poisoned score_fn limited to unscored nodes.
    calls = []

    def strict_score(nodes):
        calls.append(nodes)
        assert not np.isin(nodes, np.flatnonzero(scored)).any()
        return _score(nodes)

    lockstep_walks(
        snapshot,
        starts,
        strict_score,
        alpha=1.0,
        rng=np.random.default_rng(8),
        score_memo=memo,
    )
