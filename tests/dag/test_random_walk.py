"""Walk-start sampling and the generic random walk."""

import numpy as np
import pytest

from repro.dag.random_walk import random_walk, sample_walk_start
from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction


def weights():
    return [np.zeros(1)]


def chain_tangle(length=30):
    """A linear chain: genesis <- t0 <- t1 <- ... (single tip)."""
    t = Tangle(weights())
    prev = GENESIS_ID
    for i in range(length):
        tx = Transaction(f"t{i}", (prev,), weights(), 0, i)
        t.add(tx)
        prev = tx.tx_id
    return t


def test_walk_start_depth_window(rng):
    tangle = chain_tangle(40)
    start = sample_walk_start(tangle, rng, depth_range=(15, 25))
    # on a chain, depth below the single tip t39 is the index difference
    index = int(start[1:]) if start != GENESIS_ID else -1
    depth = 39 - index
    assert 15 <= depth <= 25


def test_walk_start_clamps_at_genesis(rng):
    tangle = chain_tangle(5)
    start = sample_walk_start(tangle, rng, depth_range=(15, 25))
    assert start == GENESIS_ID


def test_walk_start_zero_depth_is_tip(rng):
    tangle = chain_tangle(10)
    assert sample_walk_start(tangle, rng, depth_range=(0, 0)) == "t9"


def test_walk_start_validation(rng):
    tangle = chain_tangle(3)
    with pytest.raises(ValueError):
        sample_walk_start(tangle, rng, depth_range=(5, 2))
    with pytest.raises(ValueError):
        sample_walk_start(tangle, rng, depth_range=(-1, 2))


def test_random_walk_reaches_tip(rng):
    tangle = chain_tangle(20)

    def first(_node, approvers, _rng):
        return approvers[0]

    assert random_walk(tangle, GENESIS_ID, first, rng) == "t19"


def test_random_walk_from_tip_returns_it(rng):
    tangle = chain_tangle(5)
    assert random_walk(tangle, "t4", lambda *_: None, rng) == "t4"


def test_random_walk_unknown_start_falls_back_to_genesis(rng):
    tangle = chain_tangle(5)

    def first(_node, approvers, _rng):
        return approvers[0]

    assert random_walk(tangle, "missing", first, rng) == "t4"


def test_step_callback_sees_every_decision(rng):
    tangle = chain_tangle(10)
    visited = []

    def first(_node, approvers, _rng):
        return approvers[0]

    random_walk(
        tangle,
        GENESIS_ID,
        first,
        rng,
        step_callback=lambda node, approvers: visited.append(node),
    )
    assert len(visited) == 10  # genesis + t0..t8 each have one approver
