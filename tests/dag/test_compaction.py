"""Tangle compaction: truncating confirmed history in place.

``Tangle.compact`` keeps an insertion-order suffix plus genesis — a set
closed under approval, so the kept sub-DAG's structure and cumulative
weights are exactly what they were before the cut.  These tests pin the
re-rooting rules (parents below the cut collapse onto genesis), the
arena rebuild (rows freed or spilled, shared backing preserved), the
epoch/counter bookkeeping that keeps caches and checkpoints honest,
and the checkpoint round-trip through ``save_tangle``/``load_tangle``.
"""

import numpy as np
import pytest

from repro.dag.persistence import load_tangle, save_tangle
from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction


def build_tangle(n=30, seed=0, dim=4):
    rng = np.random.default_rng(seed)
    tangle = Tangle([np.zeros(dim)])
    ids = [GENESIS_ID]
    for i in range(n):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        tx = Transaction(
            tangle.next_tx_id(i % 4),
            parents,
            [rng.normal(size=dim)],
            i % 4,
            i // 10,
        )
        tangle.add(tx)
        ids.append(tx.tx_id)
    return tangle, ids


# ------------------------------------------------------------- the cut
def test_keep_last_keeps_suffix_plus_genesis():
    tangle, ids = build_tangle(30)
    report = tangle.compact(keep_last=10)
    assert report.dropped == 20 and report.kept == 11
    assert report.dropped_ids == tuple(ids[1:21])
    assert [tx.tx_id for tx in tangle.transactions()] == [GENESIS_ID] + ids[21:]
    for tx_id in ids[1:21]:
        assert tx_id not in tangle


def test_min_round_cuts_below_the_round():
    tangle, _ = build_tangle(30)  # rounds 0, 1, 2 (10 txs each)
    report = tangle.compact(min_round=2)
    assert report.dropped == 20
    assert all(
        tx.is_genesis or tx.round_index >= 2 for tx in tangle.transactions()
    )


def test_orphaned_parents_collapse_onto_genesis():
    tangle, ids = build_tangle(30)
    tangle.compact(keep_last=10)
    kept = set(tx.tx_id for tx in tangle.transactions())
    for tx in tangle.transactions():
        if tx.is_genesis:
            continue
        assert all(p in kept for p in tx.parents)
        assert len(set(tx.parents)) == len(tx.parents)  # dedup preserved
    # The oldest kept transaction necessarily re-parents onto genesis.
    oldest = tangle.transactions()[1]
    assert GENESIS_ID in oldest.parents


def test_kept_weights_and_tips_are_unchanged():
    """Approvers are always newer than what they approve, so a kept
    transaction's future cone — hence its cumulative weight — is intact;
    the tip set just loses the tips that fell below the cut."""
    tangle, ids = build_tangle(40)
    tips_before = tangle.tips()
    weights_before = {t: tangle.cumulative_weight(t) for t in ids[21:]}
    tangle.compact(keep_last=20)
    kept = set(ids[21:])
    assert tangle.tips() == [t for t in tips_before if t in kept]
    for tx_id, weight in weights_before.items():
        assert tangle.cumulative_weight(tx_id) == weight


def test_kept_model_weights_survive_arena_rebuild():
    tangle, ids = build_tangle(30)
    expected = {t: tangle.flat_weights(t).copy() for t in ids[21:]}
    tangle.compact(keep_last=10)
    for tx_id, flat in expected.items():
        np.testing.assert_array_equal(tangle.flat_weights(tx_id), flat)


def test_resident_arena_bytes_shrink():
    tangle, _ = build_tangle(40)
    report = tangle.compact(keep_last=10)
    assert report.resident_after < report.resident_before
    assert tangle.arena.resident_nbytes == report.resident_after


# -------------------------------------------------------- bookkeeping
def test_epoch_bumps_only_when_something_drops():
    tangle, _ = build_tangle(10)
    noop = tangle.compact(keep_last=50)
    assert noop.dropped == 0 and tangle.compaction_epoch == 0
    real = tangle.compact(keep_last=3)
    assert real.epoch == 1 and tangle.compaction_epoch == 1


def test_publish_counter_never_rewinds():
    """Ids burned below the cut stay burned: the next published id must
    not collide with a truncated one."""
    tangle, ids = build_tangle(20)
    tangle.compact(keep_last=5)
    fresh_id = tangle.next_tx_id(0)
    assert fresh_id not in ids
    tangle.add(
        Transaction(fresh_id, (tangle.tips()[0],), [np.zeros(4)], 0, 99)
    )


def test_exactly_one_cut_argument_required():
    tangle, _ = build_tangle(5)
    with pytest.raises(ValueError):
        tangle.compact()
    with pytest.raises(ValueError):
        tangle.compact(keep_last=2, min_round=1)
    with pytest.raises(ValueError):
        tangle.compact(keep_last=-1)


def test_compaction_preserves_shared_arena():
    tangle, _ = build_tangle(20)
    tangle.share_memory()
    try:
        assert tangle.arena.is_shared
        tangle.compact(keep_last=5)
        assert tangle.arena.is_shared
        assert len(tangle) == 6
    finally:
        tangle.close()


def test_spill_archives_dropped_rows(tmp_path):
    tangle, ids = build_tangle(20)
    dropped_weights = {t: tangle.flat_weights(t).copy() for t in ids[1:16]}
    spill_path = tmp_path / "dropped.bin"
    report = tangle.compact(keep_last=5, spill_path=spill_path)
    assert spill_path.exists()
    assert report.spill.is_spilled
    assert report.spill.resident_nbytes == 0
    for tx_id, row in report.spill_rows.items():
        np.testing.assert_array_equal(
            np.asarray(report.spill.row(row), dtype=np.float64),
            dropped_weights[tx_id],
        )
    report.spill.close()  # restores heap backing and deletes the file
    assert not spill_path.exists()


# ---------------------------------------------------------- checkpoint
def test_checkpoint_roundtrip_after_compaction(tmp_path):
    tangle, ids = build_tangle(25)
    tangle.compact(keep_last=8)
    path = save_tangle(tangle, tmp_path / "checkpoint")
    loaded = load_tangle(path)
    assert [tx.tx_id for tx in loaded.transactions()] == [
        tx.tx_id for tx in tangle.transactions()
    ]
    assert loaded.compaction_epoch == tangle.compaction_epoch == 1
    # Burned ids stay burned across the round-trip.
    fresh_id = loaded.next_tx_id(0)
    assert fresh_id not in ids
    loaded.add(
        Transaction(fresh_id, (loaded.tips()[0],), [np.zeros(4)], 0, 99)
    )
    # And the reloaded DAG walks: weights match the live tangle.
    for tx in tangle.transactions():
        np.testing.assert_allclose(
            loaded.flat_weights(tx.tx_id), tangle.flat_weights(tx.tx_id)
        )


def test_legacy_checkpoint_recovers_counter(tmp_path):
    """Files written before the counter field load with the counter
    recovered from the ids present — no collisions on resume."""
    import json
    import zipfile

    tangle, ids = build_tangle(10)
    path = save_tangle(tangle, tmp_path / "old")
    # Strip the new fields, simulating a pre-compaction-era file.
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files}
    meta = json.loads(bytes(arrays["__tangle_meta__"].tobytes()).decode())
    meta[0].pop("counter"), meta[0].pop("compaction_epoch")
    arrays["__tangle_meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    loaded = load_tangle(path)
    assert loaded.compaction_epoch == 0
    assert loaded.next_tx_id(0) not in ids
