"""Randomized verification of the incremental cumulative-weight index.

The index invariant: after any interleaving of ``add()`` calls and
queries, ``cumulative_weight(tx)`` equals the from-scratch future-cone
recount ``recount_cumulative_weight(tx)`` for every transaction.
"""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.view import TangleView


def random_tangle_ids(tangle, rng, count, *, start_index=0, max_parents=3):
    """Grow ``tangle`` by ``count`` random transactions; returns new ids."""
    ids = [tx.tx_id for tx in tangle.transactions()]
    new_ids = []
    for i in range(start_index, start_index + count):
        num_parents = int(rng.integers(1, max_parents + 1))
        parents = tuple(
            dict.fromkeys(
                ids[int(rng.integers(0, len(ids)))] for _ in range(num_parents)
            )
        )
        tx = Transaction(f"w{i}", parents, [np.zeros(1)], i % 7, i // 5)
        tangle.add(tx)
        ids.append(tx.tx_id)
        new_ids.append(tx.tx_id)
    return new_ids


def assert_index_matches_recount(tangle):
    for tx in tangle.transactions():
        assert tangle.cumulative_weight(tx.tx_id) == tangle.recount_cumulative_weight(
            tx.tx_id
        ), f"index diverged at {tx.tx_id}"


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_incremental_index_matches_recount_under_interleaving(seed):
    rng = np.random.default_rng(seed)
    tangle = Tangle([np.zeros(1)])
    grown = 0
    for _burst in range(6):
        burst = int(rng.integers(1, 20))
        random_tangle_ids(tangle, rng, burst, start_index=grown)
        grown += burst
        # interleaved queries: a random sample plus genesis every burst
        ids = [tx.tx_id for tx in tangle.transactions()]
        for tx_id in rng.choice(ids, size=min(10, len(ids)), replace=False):
            assert tangle.cumulative_weight(
                str(tx_id)
            ) == tangle.recount_cumulative_weight(str(tx_id))
        assert tangle.cumulative_weight(GENESIS_ID) == len(tangle)
    assert_index_matches_recount(tangle)


def test_genesis_weight_counts_everything():
    rng = np.random.default_rng(9)
    tangle = Tangle([np.zeros(1)])
    random_tangle_ids(tangle, rng, 40)
    # everything approves genesis transitively
    assert tangle.cumulative_weight(GENESIS_ID) == 41


def test_tip_weight_is_one():
    tangle = Tangle([np.zeros(1)])
    tangle.add(Transaction("a", (GENESIS_ID,), [np.zeros(1)], 0, 0))
    tangle.add(Transaction("b", ("a",), [np.zeros(1)], 0, 1))
    assert tangle.cumulative_weight("b") == 1
    assert tangle.cumulative_weight("a") == 2
    assert tangle.cumulative_weight(GENESIS_ID) == 3


def test_diamond_counts_shared_future_once():
    tangle = Tangle([np.zeros(1)])
    tangle.add(Transaction("a", (GENESIS_ID,), [np.zeros(1)], 0, 0))
    tangle.add(Transaction("b", (GENESIS_ID,), [np.zeros(1)], 1, 0))
    tangle.add(Transaction("c", ("a", "b"), [np.zeros(1)], 2, 1))
    # c approves both a and b; each of a, b has future cone {c}
    assert tangle.cumulative_weight("a") == 2
    assert tangle.cumulative_weight("b") == 2
    assert tangle.cumulative_weight(GENESIS_ID) == 4


def test_dirty_lazy_rebuild():
    rng = np.random.default_rng(5)
    tangle = Tangle([np.zeros(1)])
    random_tangle_ids(tangle, rng, 15)
    tangle.invalidate_weight_index()
    # adds while dirty skip per-add propagation; the next query rebuilds
    random_tangle_ids(tangle, rng, 15, start_index=15)
    assert_index_matches_recount(tangle)


def test_unknown_id_raises():
    tangle = Tangle([np.zeros(1)])
    with pytest.raises(KeyError):
        tangle.cumulative_weight("nope")


def test_full_visibility_view_delegates_to_index():
    rng = np.random.default_rng(11)
    tangle = Tangle([np.zeros(1)])
    random_tangle_ids(tangle, rng, 30)
    view = TangleView(tangle, tangle.last_round_index)
    for tx in tangle.transactions():
        assert view.cumulative_weight(tx.tx_id) == tangle.cumulative_weight(tx.tx_id)


def test_truncated_view_counts_only_visible():
    tangle = Tangle([np.zeros(1)])
    tangle.add(Transaction("a", (GENESIS_ID,), [np.zeros(1)], 0, 0))
    tangle.add(Transaction("b", ("a",), [np.zeros(1)], 0, 1))
    tangle.add(Transaction("c", ("b",), [np.zeros(1)], 0, 2))
    view = TangleView(tangle, 1)  # c (round 2) hidden
    assert view.cumulative_weight("a") == 2
    assert tangle.cumulative_weight("a") == 3
