"""Weight arena: interning, views, growth, pickling, tangle integration."""

import pickle

import numpy as np
import pytest

from repro.dag.arena import WeightArena
from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.nn.serialization import FlatSpec

SHAPES = ((3, 2), (2,))


@pytest.fixture
def spec():
    return FlatSpec(SHAPES)


def weight_list(rng):
    return [rng.normal(size=s) for s in SHAPES]


# ---------------------------------------------------------------- arena
def test_intern_and_row_roundtrip(spec, rng):
    arena = WeightArena(spec)
    flat = spec.flatten(weight_list(rng))
    row = arena.intern(flat)
    np.testing.assert_array_equal(arena.row(row), flat)
    assert len(arena) == 1


def test_rows_are_read_only_views(spec, rng):
    arena = WeightArena(spec)
    arena.intern(spec.flatten(weight_list(rng)))
    row = arena.row(0)
    assert not row.flags.writeable
    with pytest.raises(ValueError):
        row[0] = 1.0


def test_growth_preserves_existing_rows(spec, rng):
    arena = WeightArena(spec, initial_capacity=2)
    flats = [spec.flatten(weight_list(rng)) for _ in range(9)]
    for f in flats:
        arena.intern(f)
    assert arena.capacity >= 9
    for i, f in enumerate(flats):
        np.testing.assert_array_equal(arena.row(i), f)


def test_contiguous_rows_slice_is_zero_copy(spec, rng):
    arena = WeightArena(spec)
    for _ in range(6):
        arena.intern(spec.flatten(weight_list(rng)))
    block = arena.rows(range(2, 5))
    assert block.shape == (3, spec.total)
    assert np.shares_memory(block, arena.row(2))
    gathered = arena.rows([0, 4, 2])  # arbitrary order pays one gather
    np.testing.assert_array_equal(gathered[1], arena.row(4))


def test_row_bounds_checked(spec):
    arena = WeightArena(spec)
    with pytest.raises(IndexError):
        arena.row(0)
    with pytest.raises(IndexError):
        arena.rows([0])


def test_float32_storage_rounds(spec, rng):
    arena = WeightArena(spec, dtype=np.float32)
    flat = spec.flatten(weight_list(rng))
    arena.intern(flat)
    assert arena.row(0).dtype == np.float32
    np.testing.assert_array_equal(arena.row(0), flat.astype(np.float32))
    with pytest.raises(ValueError, match="float64 or float32"):
        WeightArena(spec, dtype=np.int32)


def test_pickle_ships_only_live_rows(spec, rng):
    arena = WeightArena(spec, initial_capacity=64)
    arena.intern(spec.flatten(weight_list(rng)))
    payload = pickle.dumps(arena)
    # 1 live row of float64s (plus pickle framing), not 64 rows of
    # capacity headroom
    assert len(payload) < 64 * spec.total * 8 // 2
    restored = pickle.loads(payload)
    assert len(restored) == 1
    np.testing.assert_array_equal(restored.row(0), arena.row(0))
    restored.intern(spec.flatten(weight_list(rng)))  # still appendable


# ----------------------------------------------------- tangle integration
def test_tangle_interns_transactions(rng):
    genesis = weight_list(rng)
    tangle = Tangle(genesis)
    assert tangle.genesis.arena_bound
    payload = weight_list(rng)
    tangle.add(Transaction("t1", (GENESIS_ID,), payload, 0, 0))
    tx = tangle.get("t1")
    assert tx.arena_bound
    assert len(tangle.arena) == 2
    # compatibility view: same values, zero-copy views into the arena row
    for stored, original in zip(tx.model_weights, payload):
        np.testing.assert_array_equal(stored, original)
        assert np.shares_memory(stored, tangle.arena.row(1))
    # interning copied: mutating the caller's arrays cannot reach the DAG
    payload[0][:] = 123.0
    assert not np.allclose(tx.model_weights[0], 123.0)


def test_cached_views_refresh_after_slab_growth(rng):
    """Growth reallocates the slab; cached compatibility views must
    rebuild against the new buffer instead of pinning the old one."""
    genesis = weight_list(rng)
    tangle = Tangle(genesis)
    before = tangle.genesis.model_weights
    assert np.shares_memory(before[0], tangle.arena._slab)
    generation = tangle.arena.generation
    while tangle.arena.generation == generation:  # force at least one growth
        tangle.add(
            Transaction(f"g{len(tangle)}", (GENESIS_ID,), weight_list(rng), 0, 0)
        )
    after = tangle.genesis.model_weights
    assert np.shares_memory(after[0], tangle.arena._slab)
    for a, g in zip(after, genesis):
        np.testing.assert_array_equal(a, g)


def test_tangle_flat_weights_accessor(rng):
    tangle = Tangle(weight_list(rng))
    flat = tangle.flat_weights(GENESIS_ID)
    np.testing.assert_array_equal(flat, tangle.spec.flatten(tangle.genesis.model_weights))
    with pytest.raises(KeyError):
        tangle.flat_weights("nope")


def test_foreign_shapes_fall_back_to_private_storage(rng):
    tangle = Tangle(weight_list(rng))
    foreign = [rng.normal(size=(5,))]  # not the genesis architecture
    tangle.add(Transaction("alien", (GENESIS_ID,), foreign, 0, 0))
    tx = tangle.get("alien")
    assert not tx.arena_bound
    np.testing.assert_array_equal(tx.model_weights[0], foreign[0])
    assert len(tangle.arena) == 1  # only genesis interned


def test_transaction_from_flat(rng):
    tangle = Tangle(weight_list(rng))
    flat = tangle.spec.flatten(weight_list(rng))
    tx = Transaction.from_flat("f1", (GENESIS_ID,), flat, tangle.spec, 3, 0)
    # readable before interning, and after
    np.testing.assert_array_equal(tx.model_weights[1], flat[6:])
    tangle.add(tx)
    assert tx.arena_bound
    np.testing.assert_array_equal(tangle.flat_weights("f1"), flat)
    with pytest.raises(ValueError, match="vector"):
        Transaction.from_flat("f2", (), flat[:-1], tangle.spec, 0, 0)


def test_persistence_preserves_store_dtype(rng, tmp_path):
    from repro.dag.persistence import load_tangle, save_tangle

    tangle = Tangle(weight_list(rng), store_dtype=np.float32)
    tangle.add(Transaction("t0", (GENESIS_ID,), weight_list(rng), 0, 0))
    restored = load_tangle(save_tangle(tangle, tmp_path / "t32"))
    assert restored.arena.dtype == np.float32
    for a, b in zip(restored.get("t0").model_weights, tangle.get("t0").model_weights):
        np.testing.assert_array_equal(a, b)
    # float64 (default) round-trips as float64
    tangle64 = Tangle(weight_list(rng))
    assert load_tangle(save_tangle(tangle64, tmp_path / "t64")).arena.dtype == np.float64


def test_float32_tangle_stores_rounded_models(rng):
    genesis = weight_list(rng)
    tangle = Tangle(genesis, store_dtype=np.float32)
    assert tangle.arena.dtype == np.float32
    stored = tangle.genesis.model_weights
    for s, g in zip(stored, genesis):
        assert s.dtype == np.float32
        np.testing.assert_array_equal(s, g.astype(np.float32))


def test_pickled_tangle_roundtrips_and_rebuilds_views(rng):
    tangle = Tangle(weight_list(rng))
    for i in range(4):
        tangle.add(Transaction(f"t{i}", (GENESIS_ID,), weight_list(rng), i, 0))
    _ = tangle.get("t2").model_weights  # populate a lazy view cache
    restored = pickle.loads(pickle.dumps(tangle))
    assert len(restored) == len(tangle)
    for tx_id in ["genesis", "t0", "t3"]:
        for a, b in zip(
            restored.get(tx_id).model_weights, tangle.get(tx_id).model_weights
        ):
            np.testing.assert_array_equal(a, b)
    assert restored.get("t1").arena_bound
