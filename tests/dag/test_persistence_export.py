"""Tangle persistence and export."""

import numpy as np
import pytest

from repro.dag import (
    Tangle,
    Transaction,
    load_tangle,
    save_tangle,
    tangle_statistics,
    to_dot,
    to_networkx,
)
from repro.dag.transaction import GENESIS_ID


@pytest.fixture
def tangle(rng):
    t = Tangle([rng.normal(size=(3, 2)), rng.normal(size=2)])
    t.add(
        Transaction(
            "a", (GENESIS_ID,), [rng.normal(size=(3, 2)), rng.normal(size=2)], 0, 0,
            tags={"poisoned": True},
        )
    )
    t.add(
        Transaction(
            "b", (GENESIS_ID, "a"), [rng.normal(size=(3, 2)), rng.normal(size=2)], 1, 1
        )
    )
    return t


def test_save_load_roundtrip(tangle, tmp_path):
    path = save_tangle(tangle, tmp_path / "t.npz")
    loaded = load_tangle(path)
    assert len(loaded) == len(tangle)
    for original in tangle.transactions():
        restored = loaded.get(original.tx_id)
        assert restored.parents == original.parents
        assert restored.issuer == original.issuer
        assert restored.round_index == original.round_index
        assert restored.tags == original.tags
        for a, b in zip(restored.model_weights, original.model_weights):
            np.testing.assert_array_equal(a, b)


def test_save_appends_npz_suffix(tangle, tmp_path):
    path = save_tangle(tangle, tmp_path / "mytangle")
    assert path.suffix == ".npz"
    assert path.exists()


def test_load_rejects_foreign_npz(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, x=np.zeros(3))
    with pytest.raises(ValueError, match="not a saved tangle"):
        load_tangle(path)


def test_loaded_tangle_usable(tangle, tmp_path, rng):
    loaded = load_tangle(save_tangle(tangle, tmp_path / "t"))
    assert loaded.tips() == ["b"]
    loaded.add(
        Transaction("c", ("b",), loaded.get("b").model_weights, 2, 2)
    )
    assert loaded.tips() == ["c"]


def test_to_networkx(tangle):
    graph = to_networkx(tangle)
    assert graph.number_of_nodes() == 3
    assert graph.has_edge("b", "a")
    assert graph.has_edge("a", GENESIS_ID)
    assert graph.nodes["a"]["poisoned"] is True
    assert graph.nodes["b"]["is_tip"] is True


def test_to_networkx_is_dag(tangle):
    import networkx as nx

    assert nx.is_directed_acyclic_graph(to_networkx(tangle))


def test_to_dot_renders_all_nodes_and_edges(tangle):
    dot = to_dot(tangle, cluster_labels={0: 0, 1: 1})
    assert dot.startswith("digraph tangle {")
    assert '"a"' in dot and '"b"' in dot
    assert '"b" -> "a";' in dot
    assert "lightblue" in dot and "lightcoral" in dot  # cluster colors


def test_statistics(tangle):
    stats = tangle_statistics(tangle)
    assert stats["transactions"] == 2
    assert stats["tips"] == 1
    assert stats["rounds"] == 2
    assert stats["max_width"] == 1
    assert stats["distinct_issuers"] == 2
    assert stats["max_approvers"] == 2  # genesis has two approvers

# --------------------------------------------- corrupt checkpoint guard
def tamper(path, tmp_path, drop=None, **overrides):
    """Rewrite the saved npz with members replaced (or removed)."""
    with np.load(path, allow_pickle=False) as data:
        members = {name: data[name] for name in data.files}
    if drop is not None:
        members.pop(drop)
    members.update(overrides)
    out = tmp_path / "tampered.npz"
    np.savez_compressed(out, **members)
    return out


def test_load_rejects_non_finite_rows(tangle, tmp_path):
    from repro.dag import CorruptTangleError

    path = save_tangle(tangle, tmp_path / "t.npz")
    with np.load(path, allow_pickle=False) as data:
        bad = np.array(data["a/flat"], copy=True)
    bad[2] = np.nan
    tampered = tamper(path, tmp_path, **{"a/flat": bad})
    with pytest.raises(CorruptTangleError, match="'a'.*non-finite"):
        load_tangle(tampered)


def test_load_rejects_truncated_rows(tangle, tmp_path):
    from repro.dag import CorruptTangleError

    path = save_tangle(tangle, tmp_path / "t.npz")
    with np.load(path, allow_pickle=False) as data:
        short = np.array(data["b/flat"], copy=True)[:-2]
    tampered = tamper(path, tmp_path, **{"b/flat": short})
    with pytest.raises(CorruptTangleError, match="'b'.*shape"):
        load_tangle(tampered)


def test_load_rejects_wrong_dtype(tangle, tmp_path):
    from repro.dag import CorruptTangleError

    path = save_tangle(tangle, tmp_path / "t.npz")
    with np.load(path, allow_pickle=False) as data:
        ints = np.array(data["a/flat"], copy=True).astype(np.int64)
    tampered = tamper(path, tmp_path, **{"a/flat": ints})
    with pytest.raises(CorruptTangleError, match="'a'.*dtype"):
        load_tangle(tampered)


def test_load_rejects_missing_member(tangle, tmp_path):
    from repro.dag import CorruptTangleError

    path = save_tangle(tangle, tmp_path / "t.npz")
    tampered = tamper(path, tmp_path, drop="a/flat")
    with pytest.raises(CorruptTangleError, match="'a'.*missing"):
        load_tangle(tampered)


def test_corrupt_tangle_error_is_a_value_error(tangle, tmp_path):
    """Pre-existing callers catch ValueError; the subclass keeps them."""
    from repro.dag import CorruptTangleError

    assert issubclass(CorruptTangleError, ValueError)
    path = tmp_path / "other.npz"
    np.savez(path, x=np.zeros(3))
    with pytest.raises(CorruptTangleError):
        load_tangle(path)


def test_load_names_file_when_cut_mid_array(tangle, tmp_path):
    """A file torn at any byte offset is one CorruptTangleError naming
    the file — never a raw zipfile/EOF/numpy error from deep inside."""
    import re

    from repro.dag import CorruptTangleError

    path = save_tangle(tangle, tmp_path / "t.npz")
    raw = path.read_bytes()
    # Cut points spanning the zip structure: inside the first member's
    # compressed stream, mid-archive, and through the central directory.
    for fraction in (0.2, 0.5, 0.75, 0.97):
        torn = tmp_path / f"torn-{int(fraction * 100)}.npz"
        torn.write_bytes(raw[: int(len(raw) * fraction)])
        with pytest.raises(CorruptTangleError, match=re.escape(torn.name)):
            load_tangle(torn)


def test_load_torn_file_chains_the_underlying_error(tangle, tmp_path):
    from repro.dag import CorruptTangleError

    path = save_tangle(tangle, tmp_path / "t.npz")
    raw = path.read_bytes()
    torn = tmp_path / "torn.npz"
    torn.write_bytes(raw[: len(raw) // 2])
    try:
        load_tangle(torn)
    except CorruptTangleError as exc:
        assert exc.__cause__ is not None  # the raw error stays debuggable
    else:  # pragma: no cover
        pytest.fail("torn file loaded")


def test_load_missing_file_stays_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_tangle(tmp_path / "never-written.npz")
