"""Tangle: structure, tips, cones, weights."""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction


def weights():
    return [np.zeros(2)]


def tx(tx_id, parents, issuer=0, round_index=0):
    return Transaction(tx_id, tuple(parents), weights(), issuer, round_index)


@pytest.fixture
def tangle():
    """genesis <- a <- b, genesis <- c; d approves (b, c)."""
    t = Tangle(weights())
    t.add(tx("a", [GENESIS_ID]))
    t.add(tx("b", ["a"]))
    t.add(tx("c", [GENESIS_ID], issuer=1))
    t.add(tx("d", ["b", "c"], issuer=2))
    return t


def test_new_tangle_has_genesis_tip():
    t = Tangle(weights())
    assert t.tips() == [GENESIS_ID]
    assert len(t) == 1
    assert t.genesis.is_genesis


def test_tips_update_on_add(tangle):
    assert tangle.tips() == ["d"]


def test_contains_and_get(tangle):
    assert "a" in tangle
    assert tangle.get("a").tx_id == "a"
    with pytest.raises(KeyError):
        tangle.get("missing")


def test_add_rejects_unknown_parent():
    t = Tangle(weights())
    with pytest.raises(ValueError, match="unknown parent"):
        t.add(tx("x", ["nope"]))


def test_add_rejects_duplicate_id(tangle):
    with pytest.raises(ValueError, match="duplicate"):
        tangle.add(tx("a", [GENESIS_ID]))


def test_add_rejects_second_genesis():
    t = Tangle(weights())
    with pytest.raises(ValueError, match="genesis"):
        t.add(Transaction("g2", (), weights(), 0, 0))


def test_approvers_direction(tangle):
    assert set(tangle.approvers(GENESIS_ID)) == {"a", "c"}
    assert tangle.approvers("b") == ["d"]
    assert tangle.approvers("d") == []


def test_future_cone(tangle):
    assert tangle.future_cone(GENESIS_ID) == {"a", "b", "c", "d"}
    assert tangle.future_cone("a") == {"b", "d"}
    assert tangle.future_cone("d") == set()


def test_past_cone(tangle):
    assert tangle.past_cone("d") == {"b", "c", "a", GENESIS_ID}
    assert tangle.past_cone("a") == {GENESIS_ID}
    assert tangle.past_cone(GENESIS_ID) == set()


def test_cumulative_weight(tangle):
    assert tangle.cumulative_weight("d") == 1
    assert tangle.cumulative_weight("b") == 2
    assert tangle.cumulative_weight("a") == 3
    assert tangle.cumulative_weight(GENESIS_ID) == 5


def test_depth_from_tips(tangle):
    assert tangle.depth_from_tips("d") == 0
    assert tangle.depth_from_tips("b") == 1
    assert tangle.depth_from_tips(GENESIS_ID) == 2  # via c -> d


def test_transactions_in_topological_order(tangle):
    order = [t.tx_id for t in tangle.transactions()]
    assert order.index(GENESIS_ID) < order.index("a") < order.index("b")
    assert order.index("b") < order.index("d")


def test_approval_edges_exclude_genesis(tangle):
    edges = {(a.tx_id, b.tx_id) for a, b in tangle.approval_edges()}
    assert edges == {("b", "a"), ("d", "b"), ("d", "c")}


def test_next_tx_id_unique(tangle):
    ids = {tangle.next_tx_id(0) for _ in range(50)}
    assert len(ids) == 50


def test_acyclicity_by_construction(tangle):
    """No transaction can appear in its own past cone."""
    for transaction in tangle.transactions():
        assert transaction.tx_id not in tangle.past_cone(transaction.tx_id)
