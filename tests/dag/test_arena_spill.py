"""WeightArena spill backing: the archive tier of the storage ladder.

``to_spilled`` moves an arena's rows into a memory-mapped file — the
cold end of heap -> shm -> mmap.  A spilled arena is a frozen archive:
zero resident bytes, read-only (``intern`` refuses), picklable as a
tiny attach-by-path handle, and restorable to heap backing (deleting
the file) via ``close``.  These tests pin that lifecycle plus the
unnamed-spill hygiene (temp files tracked and reaped).
"""

import os
import pickle

import numpy as np
import pytest

from repro.dag import arena as arena_mod
from repro.dag.arena import WeightArena
from repro.nn.serialization import FlatSpec


@pytest.fixture
def arena():
    spec = FlatSpec(((3, 2), (2,)))
    a = WeightArena(spec, dtype=np.float64)
    rng = np.random.default_rng(0)
    for _ in range(5):
        a.intern(rng.normal(size=spec.total))
    return a


def test_to_spilled_moves_rows_to_disk(arena, tmp_path):
    rows_before = [np.array(arena.row(i)) for i in range(5)]
    path = tmp_path / "arena.bin"
    result = arena.to_spilled(path)
    assert result is arena  # fluent, like to_shared
    assert arena.is_spilled and arena.spill_path == path
    assert arena.resident_nbytes == 0
    assert path.stat().st_size > 0
    for i, expected in enumerate(rows_before):
        np.testing.assert_array_equal(arena.row(i), expected)


def test_to_spilled_is_idempotent(arena, tmp_path):
    arena.to_spilled(tmp_path / "a.bin")
    arena.to_spilled(tmp_path / "b.bin")  # no-op: already spilled
    assert arena.spill_path == tmp_path / "a.bin"
    assert not (tmp_path / "b.bin").exists()
    arena.close()


def test_spilled_arena_refuses_intern(arena, tmp_path):
    arena.to_spilled(tmp_path / "arena.bin")
    with pytest.raises(RuntimeError, match="archival"):
        arena.intern(np.zeros(arena.spec.total))
    arena.close()


def test_close_restores_heap_and_deletes_file(arena, tmp_path):
    rows_before = [np.array(arena.row(i)) for i in range(5)]
    path = tmp_path / "arena.bin"
    arena.to_spilled(path)
    arena.close()
    assert not path.exists()
    assert not arena.is_spilled
    assert arena.resident_nbytes > 0
    for i, expected in enumerate(rows_before):
        np.testing.assert_array_equal(arena.row(i), expected)
    # Heap backing is live again: appends work.
    arena.intern(np.zeros(arena.spec.total))


def test_pickle_ships_a_handle_not_the_slab(arena, tmp_path):
    arena.to_spilled(tmp_path / "arena.bin")
    blob = pickle.dumps(arena)
    assert len(blob) < 1024  # a path, not megabytes of rows
    clone = pickle.loads(blob)
    assert clone.is_spilled and clone.resident_nbytes == 0
    for i in range(5):
        np.testing.assert_array_equal(clone.row(i), arena.row(i))
    # The attached clone is read-only and must NOT delete the owner's
    # file on close.
    with pytest.raises(RuntimeError):
        clone.intern(np.zeros(arena.spec.total))
    clone.close()
    assert (tmp_path / "arena.bin").exists()
    arena.close()


def test_unnamed_spill_uses_tracked_temp_file(arena):
    arena.to_spilled()
    path = arena.spill_path
    assert path is not None and path.exists()
    assert path in arena_mod._TEMP_SPILLS
    arena.close()
    assert not os.path.exists(path)
    assert path not in arena_mod._TEMP_SPILLS


def test_spill_after_shared_releases_the_segment(arena, tmp_path):
    arena.to_shared()
    assert arena.is_shared
    arena.to_spilled(tmp_path / "arena.bin")
    assert not arena.is_shared and arena.is_spilled
    arena.close()


def test_attached_arena_cannot_spill(arena, tmp_path):
    """Only the owner picks the backing: a shm-attached clone may not
    migrate the segment out from under the owner.  (A clone of an
    already-spilled arena is simply a no-op — idempotence wins.)"""
    arena.to_shared()
    try:
        clone = pickle.loads(pickle.dumps(arena))
        with pytest.raises(RuntimeError):
            clone.to_spilled(tmp_path / "other.bin")
        clone.close()
    finally:
        arena.close()
    assert not (tmp_path / "other.bin").exists()
