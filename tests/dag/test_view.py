"""TangleView: round-bounded visibility."""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.view import TangleView


def w():
    return [np.zeros(1)]


@pytest.fixture
def tangle():
    t = Tangle(w())
    t.add(Transaction("r0a", (GENESIS_ID,), w(), 0, 0))
    t.add(Transaction("r0b", (GENESIS_ID,), w(), 1, 0))
    t.add(Transaction("r1", ("r0a", "r0b"), w(), 2, 1))
    t.add(Transaction("r2", ("r1",), w(), 0, 2))
    return t


def test_view_hides_future_rounds(tangle):
    view = TangleView(tangle, 0)
    assert "r0a" in view
    assert "r1" not in view
    assert len(view) == 3  # genesis + two round-0 txs


def test_view_tips_are_unapproved_within_view(tangle):
    assert TangleView(tangle, 0).tips() == ["r0a", "r0b"]
    assert TangleView(tangle, 1).tips() == ["r1"]
    assert TangleView(tangle, 2).tips() == ["r2"]


def test_view_get_raises_for_hidden(tangle):
    view = TangleView(tangle, 0)
    with pytest.raises(KeyError, match="not visible"):
        view.get("r1")


def test_view_approvers_filtered(tangle):
    assert TangleView(tangle, 0).approvers("r0a") == []
    assert TangleView(tangle, 1).approvers("r0a") == ["r1"]


def test_genesis_always_visible(tangle):
    view = TangleView(tangle, -5)
    assert GENESIS_ID in view
    assert view.tips() == [GENESIS_ID]


def test_view_cumulative_weight(tangle):
    assert TangleView(tangle, 2).cumulative_weight("r0a") == 3  # self + r1 + r2
    assert TangleView(tangle, 1).cumulative_weight("r0a") == 2
    assert TangleView(tangle, 0).cumulative_weight("r0a") == 1


def test_view_is_tip(tangle):
    view = TangleView(tangle, 0)
    assert view.is_tip("r0a")
    assert not view.is_tip(GENESIS_ID)
    assert not view.is_tip("r1")  # hidden


def test_view_approval_edges(tangle):
    edges = {
        (a.tx_id, b.tx_id) for a, b in TangleView(tangle, 1).approval_edges()
    }
    assert edges == {("r1", "r0a"), ("r1", "r0b")}


def test_view_works_with_selectors(tangle, rng):
    from repro.dag.tip_selection import RandomTipSelector

    view = TangleView(tangle, 0)
    tips = RandomTipSelector().select_tips(view, 2, rng)
    assert set(tips) <= {"r0a", "r0b"}


def _naive_tips(view):
    """The historical quadratic formulation: per-transaction ``approvers``
    calls, each re-validating visibility through the view's ``get``."""
    return sorted(
        tx.tx_id for tx in view.transactions() if not view.approvers(tx.tx_id)
    )


def test_one_pass_tips_equal_naive_on_random_dags(rng):
    """The single filtered pass must agree with the naive per-transaction
    formulation on every visibility bound of randomized DAGs."""
    for trial in range(5):
        dag_rng = np.random.default_rng(100 + trial)
        tangle = Tangle(w())
        ids = [GENESIS_ID]
        for i in range(40):
            k = int(dag_rng.integers(1, 3))
            parents = tuple(
                dict.fromkeys(
                    ids[int(dag_rng.integers(0, len(ids)))] for _ in range(k)
                )
            )
            round_index = i // 5
            tangle.add(Transaction(f"t{i}", parents, w(), i % 4, round_index))
            ids.append(f"t{i}")
        for max_round in range(-1, 9):
            view = TangleView(tangle, max_round)
            assert view.tips() == _naive_tips(view)


def test_one_pass_tips_equal_naive_on_timed_views(rng):
    """Same pin for the async simulator's delay-bounded view, with and
    without an observer exemption."""
    from repro.fl.async_learning import TimedTangleView

    dag_rng = np.random.default_rng(7)
    tangle = Tangle(w())
    ids = [GENESIS_ID]
    visible_from = {GENESIS_ID: 0.0}
    published_at = {GENESIS_ID: 0.0}
    for i in range(30):
        parents = tuple(
            dict.fromkeys(
                ids[int(dag_rng.integers(0, len(ids)))] for _ in range(2)
            )
        )
        tangle.add(Transaction(f"t{i}", parents, w(), i % 3, i))
        ids.append(f"t{i}")
        published_at[f"t{i}"] = float(i)
        visible_from[f"t{i}"] = float(i) + float(dag_rng.exponential(4.0))
    for now in [0.0, 5.0, 13.5, 40.0, 1e9]:
        for observer in [None, 0, 1]:
            view = TimedTangleView(
                tangle,
                visible_from,
                now,
                observer=observer,
                published_at=published_at,
            )
            assert view.tips() == _naive_tips(view)
