"""TangleView: round-bounded visibility."""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.view import TangleView


def w():
    return [np.zeros(1)]


@pytest.fixture
def tangle():
    t = Tangle(w())
    t.add(Transaction("r0a", (GENESIS_ID,), w(), 0, 0))
    t.add(Transaction("r0b", (GENESIS_ID,), w(), 1, 0))
    t.add(Transaction("r1", ("r0a", "r0b"), w(), 2, 1))
    t.add(Transaction("r2", ("r1",), w(), 0, 2))
    return t


def test_view_hides_future_rounds(tangle):
    view = TangleView(tangle, 0)
    assert "r0a" in view
    assert "r1" not in view
    assert len(view) == 3  # genesis + two round-0 txs


def test_view_tips_are_unapproved_within_view(tangle):
    assert TangleView(tangle, 0).tips() == ["r0a", "r0b"]
    assert TangleView(tangle, 1).tips() == ["r1"]
    assert TangleView(tangle, 2).tips() == ["r2"]


def test_view_get_raises_for_hidden(tangle):
    view = TangleView(tangle, 0)
    with pytest.raises(KeyError, match="not visible"):
        view.get("r1")


def test_view_approvers_filtered(tangle):
    assert TangleView(tangle, 0).approvers("r0a") == []
    assert TangleView(tangle, 1).approvers("r0a") == ["r1"]


def test_genesis_always_visible(tangle):
    view = TangleView(tangle, -5)
    assert GENESIS_ID in view
    assert view.tips() == [GENESIS_ID]


def test_view_cumulative_weight(tangle):
    assert TangleView(tangle, 2).cumulative_weight("r0a") == 3  # self + r1 + r2
    assert TangleView(tangle, 1).cumulative_weight("r0a") == 2
    assert TangleView(tangle, 0).cumulative_weight("r0a") == 1


def test_view_is_tip(tangle):
    view = TangleView(tangle, 0)
    assert view.is_tip("r0a")
    assert not view.is_tip(GENESIS_ID)
    assert not view.is_tip("r1")  # hidden


def test_view_approval_edges(tangle):
    edges = {
        (a.tx_id, b.tx_id) for a, b in TangleView(tangle, 1).approval_edges()
    }
    assert edges == {("r1", "r0a"), ("r1", "r0b")}


def test_view_works_with_selectors(tangle, rng):
    from repro.dag.tip_selection import RandomTipSelector

    view = TangleView(tangle, 0)
    tips = RandomTipSelector().select_tips(view, 2, rng)
    assert set(tips) <= {"r0a", "r0b"}
