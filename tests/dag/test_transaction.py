"""Transaction invariants."""

import numpy as np
import pytest

from repro.dag.transaction import GENESIS_ID, Transaction


def make_tx(tx_id="t1", parents=("genesis",)):
    return Transaction(
        tx_id=tx_id,
        parents=tuple(parents),
        model_weights=[np.zeros(3)],
        issuer=0,
        round_index=0,
    )


def test_genesis_detection():
    genesis = Transaction(GENESIS_ID, (), [np.zeros(2)], -1, -1)
    assert genesis.is_genesis
    assert not make_tx().is_genesis


def test_rejects_duplicate_parents():
    with pytest.raises(ValueError, match="duplicate parents"):
        make_tx(parents=("a", "a"))


def test_rejects_self_approval():
    with pytest.raises(ValueError, match="approve itself"):
        make_tx(tx_id="x", parents=("x",))


def test_tags_default_empty():
    assert make_tx().tags == {}


def test_tags_are_instance_local():
    a = make_tx("a")
    b = make_tx("b")
    a.tags["poisoned"] = True
    assert b.tags == {}


# ------------------------------------------------ payload admission check
def test_payload_error_accepts_sound_vector():
    from repro.dag.transaction import payload_error
    from repro.nn.serialization import FlatSpec

    spec = FlatSpec(((2, 2), (3,)))
    assert payload_error(np.zeros(7), spec) is None


def test_payload_error_flags_shape_mismatch():
    from repro.dag.transaction import payload_error
    from repro.nn.serialization import FlatSpec

    spec = FlatSpec(((2, 2), (3,)))
    assert "shape" in payload_error(np.zeros(6), spec)
    assert "shape" in payload_error(np.zeros((7, 1)), spec)


def test_payload_error_flags_non_finite_values():
    from repro.dag.transaction import payload_error
    from repro.nn.serialization import FlatSpec

    spec = FlatSpec(((2, 2), (3,)))
    flat = np.zeros(7)
    flat[1] = np.nan
    flat[4] = np.inf
    message = payload_error(flat, spec)
    assert "2 non-finite values" in message
